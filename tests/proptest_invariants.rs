//! Property-based tests of the pipeline's core invariants, driven by
//! randomly generated miniature datasets rather than the calibrated
//! synthetic generator.

use moby_expansion::cluster::hac::{cluster_diameter, hac_clusters};
use moby_expansion::cluster::linkage::Linkage;
use moby_expansion::community::{louvain, modularity, LouvainConfig, Partition};
use moby_expansion::core::candidate::build_candidate_network;
use moby_expansion::core::selection::select_stations;
use moby_expansion::core::ExpansionConfig;
use moby_expansion::data::schema::{CleanDataset, Location, Rental, Station};
use moby_expansion::data::timeparse::Timestamp;
use moby_expansion::geo::{destination_point, haversine_m, GeoPoint};
use moby_expansion::graph::WeightedGraph;
use proptest::prelude::*;

/// A point somewhere in central Dublin.
fn dublin_point() -> impl Strategy<Value = GeoPoint> {
    (53.30f64..53.40, -6.35f64..-6.15)
        .prop_map(|(lat, lon)| GeoPoint::new(lat, lon).expect("in range"))
}

/// A miniature clean dataset: a handful of stations, locations scattered
/// around them, and random trips between locations.
fn mini_dataset() -> impl Strategy<Value = CleanDataset> {
    (
        prop::collection::vec(dublin_point(), 3..8),
        prop::collection::vec((0.0f64..360.0, 30.0f64..1_500.0), 10..60),
        prop::collection::vec((0usize..1000, 0usize..1000, 0u32..24, 0i64..600), 20..150),
    )
        .prop_map(|(station_points, location_offsets, trips)| {
            let stations: Vec<Station> = station_points
                .iter()
                .enumerate()
                .map(|(i, &p)| Station {
                    id: i as u64 + 1,
                    name: format!("S{i}"),
                    position: p,
                })
                .collect();
            // Station locations first (ids 1000+i), then dockless ones.
            let mut locations: Vec<Location> = stations
                .iter()
                .map(|s| Location {
                    id: 1000 + s.id,
                    position: s.position,
                    station_id: Some(s.id),
                })
                .collect();
            for (i, &(bearing, dist)) in location_offsets.iter().enumerate() {
                let anchor = station_points[i % station_points.len()];
                locations.push(Location {
                    id: 2000 + i as u64,
                    position: destination_point(anchor, bearing, dist),
                    station_id: None,
                });
            }
            let base = Timestamp::from_ymd_hms(2021, 5, 3, 0, 0, 0).expect("valid");
            let rentals: Vec<Rental> = trips
                .iter()
                .enumerate()
                .map(|(i, &(a, b, hour, day_offset))| {
                    let origin = locations[a % locations.len()].id;
                    let dest = locations[b % locations.len()].id;
                    let start = Timestamp(
                        base.unix_seconds() + (day_offset % 120) * 86_400 + i64::from(hour) * 3600,
                    );
                    Rental {
                        id: i as u64 + 1,
                        bike_id: (i % 20) as u32 + 1,
                        start_time: start,
                        end_time: start.plus_seconds(1200),
                        rental_location_id: origin,
                        return_location_id: dest,
                    }
                })
                .collect();
            CleanDataset {
                stations,
                locations,
                rentals,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn complete_linkage_clusters_never_exceed_the_boundary(
        points in prop::collection::vec(dublin_point(), 2..80),
        threshold in 40.0f64..400.0,
    ) {
        let clusters = hac_clusters(&points, Linkage::Complete, threshold);
        // Partition property: every point in exactly one cluster.
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, points.len());
        // Rule 1 property: the diameter bound holds for every cluster.
        for c in &clusters {
            prop_assert!(cluster_diameter(&points, c) <= threshold + 1e-6);
        }
    }

    #[test]
    fn louvain_never_scores_below_the_trivial_partition(
        edges in prop::collection::vec((0u64..25, 0u64..25, 1u32..20), 5..120),
    ) {
        let mut g = WeightedGraph::new_undirected();
        for &(a, b, w) in &edges {
            g.add_edge(a, b, f64::from(w));
        }
        let p = louvain(&g, &LouvainConfig::default());
        // Every node assigned, labels canonical.
        prop_assert_eq!(p.len(), g.node_count());
        let q = modularity(&g, &p);
        let q_trivial = modularity(&g, &g.node_ids().iter().map(|&n| (n, 0usize)).collect::<Partition>());
        prop_assert!(q >= q_trivial - 1e-9, "louvain {q} < trivial {q_trivial}");
        prop_assert!((-1.0..=1.0).contains(&q));
    }

    #[test]
    fn candidate_network_and_selection_respect_invariants(dataset in mini_dataset()) {
        let config = ExpansionConfig::default();
        let network = build_candidate_network(&dataset, &config).expect("network builds");
        // Every cleaned location is mapped.
        for loc in &dataset.locations {
            prop_assert!(network.location_to_node.contains_key(&loc.id));
        }
        // Trip conservation into the candidate graph.
        prop_assert_eq!(network.summary.trips, dataset.rentals.len());

        let selection = select_stations(&network, &config).expect("selection runs");
        // Selected + rejected = all candidates.
        prop_assert_eq!(
            selection.selected.len() + selection.rejected.len(),
            network.candidate_ids().len()
        );
        // Rule 4: every selected station is farther than 250 m from every
        // fixed station; selected stations are mutually separated too.
        for s in &selection.selected {
            for station in &dataset.stations {
                prop_assert!(haversine_m(s.position, station.position) > config.secondary_distance_m);
            }
            prop_assert!(s.degree >= selection.degree_threshold);
        }
        for (i, a) in selection.selected.iter().enumerate() {
            for b in &selection.selected[i + 1..] {
                prop_assert!(haversine_m(a.position, b.position) > config.secondary_distance_m);
            }
        }
    }
}
