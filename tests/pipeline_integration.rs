//! End-to-end integration tests spanning every crate in the workspace:
//! synthetic data -> CSV round trip -> cleaning -> candidate graph ->
//! selection -> reassignment -> temporal graphs -> community detection ->
//! reports.

use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::report;
use moby_expansion::core::validate::{gbasic_is_consistent, validate_default};
use moby_expansion::core::ExpansionConfig;
use moby_expansion::data::clean::clean_dataset;
use moby_expansion::data::csvio;
use moby_expansion::data::schema::RawDataset;
use moby_expansion::data::synth::{generate, SynthConfig};
use moby_expansion::geo::haversine_m;
use std::collections::HashSet;

fn small_raw() -> RawDataset {
    generate(&SynthConfig::small_test())
}

#[test]
fn csv_round_trip_preserves_the_dataset() {
    let raw = small_raw();
    let stations_csv = csvio::write_stations(&raw.stations);
    let locations_csv = csvio::write_locations(&raw.locations);
    let rentals_csv = csvio::write_rentals(&raw.rentals);

    let reparsed = RawDataset {
        stations: csvio::read_stations(&stations_csv).expect("stations parse"),
        locations: csvio::read_locations(&locations_csv).expect("locations parse"),
        rentals: csvio::read_rentals(&rentals_csv).expect("rentals parse"),
    };
    assert_eq!(reparsed.stations.len(), raw.stations.len());
    assert_eq!(reparsed.locations.len(), raw.locations.len());
    assert_eq!(reparsed.rentals, raw.rentals);

    // The cleaned dataset derived from the round-tripped CSV matches the one
    // derived from the in-memory dataset.
    let a = clean_dataset(&raw);
    let b = clean_dataset(&reparsed);
    assert_eq!(a.report.rentals_after, b.report.rentals_after);
    assert_eq!(a.report.locations_after, b.report.locations_after);
}

#[test]
fn full_pipeline_reproduces_paper_shape_on_small_data() {
    let raw = small_raw();
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    // Table I shape: cleaning removes some rows but not most of them.
    assert!(outcome.overview.rentals.1 < outcome.overview.rentals.0);
    assert!(outcome.overview.rentals.1 as f64 > outcome.overview.rentals.0 as f64 * 0.9);

    // Table II shape: candidate nodes vastly outnumber fixed stations and
    // directed edges exceed undirected edges.
    let s = &outcome.candidate.summary;
    assert!(s.nodes > outcome.dataset.stations.len() * 2);
    assert!(s.directed_edges >= s.undirected_edges);

    // Table III shape: new stations exist but carry a minority of trips.
    let t = &outcome.selected.table;
    assert!(t.selected.stations > 0);
    assert!(t.pre_existing.trips_from > t.selected.trips_from);
    assert_eq!(
        t.pre_existing.trips_from + t.selected.trips_from,
        t.total_trips
    );

    // Tables IV–VI shape: multiple communities, positive modularity, and a
    // majority of trips self-contained at the basic granularity.
    assert!(outcome.communities.basic.community_count() >= 2);
    assert!(outcome.communities.basic.modularity > 0.0);
    assert!(outcome.communities.basic.table.self_contained_share() > 0.5);
    assert!(outcome.communities.hour.modularity > outcome.communities.basic.modularity);

    // Validation layer agrees.
    assert!(gbasic_is_consistent(&outcome));
    assert!(validate_default(&outcome).passes());
}

#[test]
fn selected_stations_respect_spatial_rules_end_to_end() {
    let raw = small_raw();
    let cfg = PipelineConfig::default();
    let outcome = ExpansionPipeline::new(cfg.clone())
        .run(&raw)
        .expect("pipeline runs");
    let fixed_positions: Vec<_> = outcome
        .selected
        .stations
        .iter()
        .filter(|s| s.is_fixed)
        .map(|s| s.position)
        .collect();
    for new_station in outcome.selected.stations.iter().filter(|s| !s.is_fixed) {
        for fp in &fixed_positions {
            assert!(
                haversine_m(new_station.position, *fp) > cfg.expansion.secondary_distance_m,
                "new station {} violates the secondary distance",
                new_station.id
            );
        }
    }
}

#[test]
fn every_trip_endpoint_maps_to_a_station_of_the_final_network() {
    let raw = small_raw();
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");
    let station_ids: HashSet<u64> = outcome.selected.stations.iter().map(|s| s.id).collect();
    for (src, dst, w) in outcome.selected.directed.edges() {
        assert!(station_ids.contains(&src));
        assert!(station_ids.contains(&dst));
        assert!(w > 0.0);
    }
}

#[test]
fn reports_render_for_a_real_outcome() {
    let raw = small_raw();
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    let t1 = report::render_table1(&outcome.overview);
    let t2 = report::render_table2(&outcome.candidate.summary);
    let t3 = report::render_table3(&outcome.selected.table);
    let t4 = report::render_community_table("GBasic", &outcome.communities.basic.table);
    for text in [&t1, &t2, &t3, &t4] {
        assert!(text.lines().count() >= 3, "report too short: {text}");
    }

    // Figure exports.
    let positions = outcome.selected.positions();
    let names = outcome
        .selected
        .stations
        .iter()
        .map(|s| (s.id, s.name.clone()))
        .collect();
    let fixed = outcome.selected.fixed_ids();
    let threshold = report::edge_weight_percentile(&outcome.selected.undirected, 99.0);
    let geojson = report::network_geojson(
        &outcome.selected.undirected,
        &positions,
        &names,
        &|id| fixed.contains(&id),
        Some(&outcome.communities.basic.station_partition),
        threshold,
    );
    assert!(geojson.contains("FeatureCollection"));
    assert!(geojson.contains("\"community\":"));

    let daily = report::daily_profile(
        &outcome.selected.store,
        &outcome.communities.day.station_partition,
    );
    assert_eq!(daily.len(), outcome.communities.day.community_count());
    let hourly = report::hourly_profile(
        &outcome.selected.store,
        &outcome.communities.hour.station_partition,
    );
    assert!(!hourly.is_empty());
}

#[test]
fn stricter_thresholds_select_fewer_stations() {
    let raw = small_raw();
    let mut strict_cfg = PipelineConfig::default();
    strict_cfg.expansion = ExpansionConfig {
        secondary_distance_m: 500.0,
        ..ExpansionConfig::default()
    };
    let default_outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("default run");
    let strict_outcome = ExpansionPipeline::new(strict_cfg)
        .run(&raw)
        .expect("strict run");
    assert!(strict_outcome.new_station_count() <= default_outcome.new_station_count());
}

#[test]
fn facade_reexports_are_usable() {
    // Spot-check that the facade exposes each substrate.
    let p = moby_expansion::geo::GeoPoint::new(53.35, -6.26).unwrap();
    assert!(moby_expansion::geo::BoundingBox::dublin().contains(p));
    let mut g = moby_expansion::graph::WeightedGraph::new_undirected();
    g.add_edge(1, 2, 1.0);
    assert_eq!(g.node_count(), 2);
    assert!(!moby_expansion::VERSION.is_empty());
}
