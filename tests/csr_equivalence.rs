//! Acceptance checks for the frozen-CSR refactors: on the synthetic
//! Dublin dataset, the frozen-CSR community path must reproduce the legacy
//! `WeightedGraph` (hash-map) path — Louvain partitions exactly,
//! modularity within float-accumulation tolerance — at every temporal
//! granularity; the parallel execution layer must reproduce the serial
//! CSR results bit-for-bit at every tested thread count; and the columnar
//! sort-merge construction path (PR 3) must produce graphs — and
//! therefore partitions — **bitwise identical** to the pre-refactor
//! store-projection pipeline.

use moby_expansion::community::{
    louvain_csr, louvain_hashmap, modularity_csr, modularity_csr_threads, modularity_hashmap,
    LouvainConfig,
};
use moby_expansion::core::candidate::TRIP_LABEL;
use moby_expansion::core::detect::{detect_communities, DetectConfig};
use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::temporal::{
    build_all_from_trips, build_temporal_graph, TemporalGranularity,
};
use moby_expansion::data::synth::{generate, SynthConfig};
use moby_expansion::graph::aggregate;
use moby_expansion::graph::metrics::{pagerank_csr, PageRankConfig};

#[test]
fn csr_louvain_matches_hashmap_louvain_on_synthetic_dataset() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    let cfg = LouvainConfig::default();
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let builder = temporal.builder.as_ref().expect("legacy path");

        let p_csr = louvain_csr(&temporal.csr, &cfg);
        let p_hash = louvain_hashmap(builder, &cfg);
        assert_eq!(
            p_csr,
            p_hash,
            "Louvain partitions diverged on {}",
            granularity.graph_name()
        );

        let q_csr = modularity_csr(&temporal.csr, &p_csr);
        let q_hash = modularity_hashmap(builder, &p_hash);
        assert!(
            (q_csr - q_hash).abs() < 1e-9,
            "{}: csr Q {q_csr} vs hashmap Q {q_hash}",
            granularity.graph_name()
        );
    }
}

#[test]
fn parallel_execution_matches_serial_on_synthetic_dataset() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let name = granularity.graph_name();

        let serial_louvain = louvain_csr(
            &temporal.csr,
            &LouvainConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        let serial_q = modularity_csr_threads(&temporal.csr, &serial_louvain, Some(1));
        for t in [2usize, 4] {
            let parallel_louvain = louvain_csr(
                &temporal.csr,
                &LouvainConfig {
                    threads: Some(t),
                    ..Default::default()
                },
            );
            assert_eq!(
                serial_louvain, parallel_louvain,
                "{name}: Louvain diverged at {t} threads"
            );
            let parallel_q = modularity_csr_threads(&temporal.csr, &parallel_louvain, Some(t));
            assert_eq!(
                serial_q.to_bits(),
                parallel_q.to_bits(),
                "{name}: modularity diverged at {t} threads ({serial_q} vs {parallel_q})"
            );
        }
    }

    // PageRank over the directed trip graph, the paper's station-prominence
    // descriptor. The pipeline's directed graph is already frozen.
    let directed = &outcome.selected.directed;
    let serial_pr = pagerank_csr(
        directed,
        &PageRankConfig {
            threads: Some(1),
            ..Default::default()
        },
    );
    for t in [2usize, 4] {
        let parallel_pr = pagerank_csr(
            directed,
            &PageRankConfig {
                threads: Some(t),
                ..Default::default()
            },
        );
        assert_eq!(parallel_pr.len(), serial_pr.len());
        for (id, r) in &serial_pr {
            assert_eq!(
                parallel_pr[id].to_bits(),
                r.to_bits(),
                "PageRank of station {id} diverged at {t} threads"
            );
        }
    }
}

/// PR 3 acceptance: the columnar sort-merge construction — trip table →
/// edge lists for all three granularities → `CsrBuilder` — must produce
/// graphs identical to the pre-refactor store-projection path (hash-map
/// builders + freeze), and identical detections on top of them.
#[test]
fn columnar_construction_matches_legacy_store_projection() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");
    let selected = &outcome.selected;

    // The frozen directed/undirected trip graphs the pipeline built
    // columnar must equal the legacy projections of the property store.
    let legacy_directed = aggregate::project_directed(&selected.store, TRIP_LABEL).freeze();
    let legacy_undirected = aggregate::project_undirected(&selected.store, TRIP_LABEL).freeze();
    assert_eq!(selected.directed, legacy_directed, "directed trip graph");
    assert_eq!(
        selected.undirected, legacy_undirected,
        "undirected trip graph"
    );

    // Each granularity's frozen graph — and the detection on it — must be
    // bitwise identical between the two construction paths.
    let old_ids = selected.fixed_ids();
    let columnar = build_all_from_trips(&selected.trips, Some(&selected.undirected), None);
    let stored = [
        &outcome.communities.basic,
        &outcome.communities.day,
        &outcome.communities.hour,
    ];
    for (temporal, stored_detection) in columnar.iter().zip(stored) {
        let granularity = temporal.granularity;
        let legacy = build_temporal_graph(&selected.store, granularity);
        assert_eq!(
            temporal.csr, legacy.csr,
            "{granularity:?}: columnar CSR diverged from store projection"
        );
        assert_eq!(temporal.layer_map, legacy.layer_map, "{granularity:?} map");

        let legacy_detection = detect_communities(
            &legacy,
            &legacy_directed,
            &old_ids,
            &DetectConfig::default(),
        );
        assert_eq!(
            stored_detection.station_partition, legacy_detection.station_partition,
            "{granularity:?}: partitions diverged between construction paths"
        );
        assert_eq!(
            stored_detection.modularity.to_bits(),
            legacy_detection.modularity.to_bits(),
            "{granularity:?}: modularity diverged between construction paths"
        );
    }
}

#[test]
fn frozen_graph_agrees_with_trip_table_on_the_selected_network() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");
    let selected = &outcome.selected;

    // The trip table conserves every rental and the frozen graphs carry
    // exactly its weight.
    assert_eq!(selected.trips.len(), outcome.dataset.rentals.len());
    let total: f64 = selected.trips.weights().iter().sum();
    assert_eq!(selected.directed.total_weight(), total);
    assert_eq!(selected.undirected.total_weight(), total);
    assert_eq!(
        selected.directed.node_count(),
        selected.trips.station_count()
    );
    // Every trip endpoint is a station of the frozen graphs.
    for (src, dst, w) in selected.trips.station_edges() {
        assert!(selected.directed.contains(src));
        assert!(selected.directed.contains(dst));
        assert!(w > 0.0);
    }
}
