//! Acceptance check for the freeze-to-CSR refactor: on the synthetic
//! Dublin dataset, the frozen-CSR community path must reproduce the legacy
//! `WeightedGraph` (hash-map) path — Louvain partitions exactly,
//! modularity within float-accumulation tolerance — at every temporal
//! granularity. The parallel execution layer must additionally reproduce
//! the serial CSR results bit-for-bit at every tested thread count.

use moby_expansion::community::{
    louvain_csr, louvain_hashmap, modularity_csr, modularity_csr_threads, modularity_hashmap,
    LouvainConfig,
};
use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_expansion::data::synth::{generate, SynthConfig};
use moby_expansion::graph::metrics::{pagerank_csr, PageRankConfig};

#[test]
fn csr_louvain_matches_hashmap_louvain_on_synthetic_dataset() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    let cfg = LouvainConfig::default();
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);

        let p_csr = louvain_csr(&temporal.csr, &cfg);
        let p_hash = louvain_hashmap(&temporal.graph, &cfg);
        assert_eq!(
            p_csr,
            p_hash,
            "Louvain partitions diverged on {}",
            granularity.graph_name()
        );

        let q_csr = modularity_csr(&temporal.csr, &p_csr);
        let q_hash = modularity_hashmap(&temporal.graph, &p_hash);
        assert!(
            (q_csr - q_hash).abs() < 1e-9,
            "{}: csr Q {q_csr} vs hashmap Q {q_hash}",
            granularity.graph_name()
        );
    }
}

#[test]
fn parallel_execution_matches_serial_on_synthetic_dataset() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let name = granularity.graph_name();

        let serial_louvain = louvain_csr(
            &temporal.csr,
            &LouvainConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        let serial_q = modularity_csr_threads(&temporal.csr, &serial_louvain, Some(1));
        for t in [2usize, 4] {
            let parallel_louvain = louvain_csr(
                &temporal.csr,
                &LouvainConfig {
                    threads: Some(t),
                    ..Default::default()
                },
            );
            assert_eq!(
                serial_louvain, parallel_louvain,
                "{name}: Louvain diverged at {t} threads"
            );
            let parallel_q = modularity_csr_threads(&temporal.csr, &parallel_louvain, Some(t));
            assert_eq!(
                serial_q.to_bits(),
                parallel_q.to_bits(),
                "{name}: modularity diverged at {t} threads ({serial_q} vs {parallel_q})"
            );
        }
    }

    // PageRank over the directed trip graph, the paper's station-prominence
    // descriptor.
    let directed = outcome.selected.directed.freeze();
    let serial_pr = pagerank_csr(
        &directed,
        &PageRankConfig {
            threads: Some(1),
            ..Default::default()
        },
    );
    for t in [2usize, 4] {
        let parallel_pr = pagerank_csr(
            &directed,
            &PageRankConfig {
                threads: Some(t),
                ..Default::default()
            },
        );
        assert_eq!(parallel_pr.len(), serial_pr.len());
        for (id, r) in &serial_pr {
            assert_eq!(
                parallel_pr[id].to_bits(),
                r.to_bits(),
                "PageRank of station {id} diverged at {t} threads"
            );
        }
    }
}

#[test]
fn frozen_graph_agrees_with_builder_on_the_selected_network() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    for g in [&outcome.selected.undirected, &outcome.selected.directed] {
        let c = g.freeze();
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert!((c.total_weight() - g.total_weight()).abs() < 1e-9);
        for (u, &id) in g.node_ids().iter().enumerate() {
            assert_eq!(c.degree(u), g.degree(u), "degree of station {id}");
            assert!((c.strength(u) - g.strength(u)).abs() < 1e-9);
        }
    }
}
