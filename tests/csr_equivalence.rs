//! Acceptance check for the freeze-to-CSR refactor: on the synthetic
//! Dublin dataset, the frozen-CSR community path must reproduce the legacy
//! `WeightedGraph` (hash-map) path — Louvain partitions exactly,
//! modularity within float-accumulation tolerance — at every temporal
//! granularity.

use moby_expansion::community::{
    louvain_csr, louvain_hashmap, modularity_csr, modularity_hashmap, LouvainConfig,
};
use moby_expansion::core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_expansion::core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_expansion::data::synth::{generate, SynthConfig};

#[test]
fn csr_louvain_matches_hashmap_louvain_on_synthetic_dataset() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    let cfg = LouvainConfig::default();
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);

        let p_csr = louvain_csr(&temporal.csr, &cfg);
        let p_hash = louvain_hashmap(&temporal.graph, &cfg);
        assert_eq!(
            p_csr,
            p_hash,
            "Louvain partitions diverged on {}",
            granularity.graph_name()
        );

        let q_csr = modularity_csr(&temporal.csr, &p_csr);
        let q_hash = modularity_hashmap(&temporal.graph, &p_hash);
        assert!(
            (q_csr - q_hash).abs() < 1e-9,
            "{}: csr Q {q_csr} vs hashmap Q {q_hash}",
            granularity.graph_name()
        );
    }
}

#[test]
fn frozen_graph_agrees_with_builder_on_the_selected_network() {
    let raw = generate(&SynthConfig::small_test());
    let outcome = ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs");

    for g in [&outcome.selected.undirected, &outcome.selected.directed] {
        let c = g.freeze();
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert!((c.total_weight() - g.total_weight()).abs() < 1e-9);
        for (u, &id) in g.node_ids().iter().enumerate() {
            assert_eq!(c.degree(u), g.degree(u), "degree of station {id}");
            assert!((c.strength(u) - g.strength(u)).abs() < 1e-9);
        }
    }
}
