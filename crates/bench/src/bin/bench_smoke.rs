//! CI benchmark smoke run: serial-vs-parallel timings with a JSON artifact.
//!
//! Runs the expansion pipeline on the synthetic Dublin dataset, then:
//!
//! * times the hot CSR sweeps (Louvain and PageRank) at 1 worker thread
//!   and at the parallel thread count, *verifying the results are
//!   bit-identical* (the scheduler's determinism contract — any
//!   divergence panics, failing CI);
//! * times **graph construction** both ways — the legacy hash-map
//!   builder-freeze path against the columnar sort-merge build, at 1 and
//!   N threads — verifying the two paths produce identical frozen graphs;
//! * times **incremental ingestion** — applying a small trip batch as a
//!   `CsrDelta` against rebuilding the graphs from the concatenated
//!   table, *verifying the delta output is bit-identical to the rebuild*
//!   (the PR 4 equivalence contract — any divergence panics, failing CI);
//! * times the **windowed lifecycle** — `advance_window` (evict + ingest)
//!   and `apply_window_all` against one-shot rebuilds over the surviving
//!   rows, *verifying the windowed state is bit-identical to the rebuild*
//!   (the PR 7 equivalence contract), plus seeded vs cold Louvain on the
//!   post-window `GHour` graph (seeded modularity must not fall below
//!   cold — any loss panics, failing CI);
//! * times the **hot sweep kernels** (PR 8) — one PageRank pull
//!   iteration and one Louvain first-pass neighbour accumulation —
//!   scalar vs batched loop shapes and natural vs degree-permuted
//!   layouts, reporting per-iteration ns/edge for every variant and
//!   *verifying the layout/batching contracts bit-for-bit* (permuted
//!   sweeps must match natural sweeps exactly; the batched Louvain
//!   tally must match the scalar tally exactly; the batched pull fold
//!   must stay within reassociation tolerance of the scalar fold);
//! * at `--scale large`, runs the **city tier**: streams ≥1 M synthetic
//!   trips over ≥10 k stations through the streaming cleaner, then builds
//!   the station and temporal graphs **sharded and unsharded**, verifying
//!   the two are bit-identical and reporting wall time per stage plus
//!   peak RSS (the pipeline sections drop to `medium` — the expansion
//!   algorithms are sized for the paper's data, not city scale); the
//!   sweep kernels then also run on the city station graph;
//! * times the **serving layer** (PR 9) — a mixed query stream
//!   (station lookup, k-nearest, community, PageRank, degree summaries)
//!   through the fixed-size `QueryPool` while a background
//!   `SnapshotWriter` continuously ingests and advances the window,
//!   reporting sustained QPS and p50/p99 latency, *verifying the served
//!   snapshot is bit-identical to an offline rebuild* over the writer's
//!   final trip table (any divergence panics, failing CI);
//! * verifies the **out-of-core construction contract** (PR 10) at every
//!   scale — a forced-spill build (budget 0) of all three temporal
//!   graphs against the in-memory build, bit-for-bit — and at `--scale
//!   large` additionally runs the **spill tier**: the city pipeline
//!   (generate → clean → temporal builds) once fully in memory and once
//!   through the spooled + spilled out-of-core path, each in its *own
//!   child process* so the per-mode peak RSS is honest (`VmHWM` is a
//!   process-lifetime high-water mark — measuring both modes in one
//!   process would report the in-memory peak for both), panicking unless
//!   the two builds' graph fingerprints agree;
//!
//! and writes the timings to a `BENCH_*.json` file
//! (`moby-bench-smoke/v8`: every section row carries the `scale` it ran
//! at and the process peak RSS when it finished) that the `bench-smoke`
//! CI job uploads as a workflow artifact and gates with `bench_check`.
//! This is where the repo's perf trajectory accumulates from PR 2 onward.
//!
//! ```text
//! cargo run --release -p moby-bench --bin bench_smoke -- \
//!     [--scale small|medium|paper|large] [--threads N] [--shards S] \
//!     [--out BENCH_latest.json]
//! ```
//!
//! `--scale` defaults to the `MOBY_BENCH_SCALE` environment variable and
//! then to `medium`; the large tier's trip count scales with
//! `MOBY_CITY_TRIPS` (up to 10 M).

use moby_bench::{city_config, peak_rss_kb, run_pipeline, Scale};
use moby_community::{louvain_csr, louvain_seeded, modularity_csr_threads, LouvainConfig};
use moby_core::candidate::TRIP_LABEL;
use moby_core::temporal::{
    apply_batch_all, apply_window_all, build_all_from_spool, build_all_from_trips,
    build_all_from_trips_sharded, build_all_from_trips_spilled, build_temporal_graph,
    TemporalGranularity, TemporalGraph,
};
use moby_data::clean::{clean_trip_stream, clean_trip_stream_spooled};
use moby_data::synth::city_trip_stream;
use moby_data::trips::WindowStart;
use moby_data::trips::{TripBatch, TripTable};
use moby_graph::metrics::{pagerank_csr, PageRankConfig};
use moby_graph::{
    aggregate, build_dense_csr, build_dense_csr_sharded, par, props, CsrDelta, CsrGraph,
    GraphStore, PropValue,
};
use moby_server::{QueryPool, Request, ServeConfig, SnapshotWriter, WriteOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per measurement; the minimum is reported.
const REPS: usize = 3;

/// Rep count for the sub-millisecond sweep kernels (see [`time_min_rr`]).
const SWEEP_REPS: usize = 50;

struct SmokeResult {
    name: String,
    nodes: usize,
    edges: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

impl SmokeResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let [best] = time_min_rr(REPS, |_| f());
    best
}

/// [`time_min`] over a family of variants, round-robin interleaved: each
/// rep times every variant once, back to back, and per-variant minima are
/// taken across reps. The sweep kernels run for fractions of a
/// millisecond, so a load spike on a shared host would corrupt a whole
/// per-variant timing block — interleaving makes every variant sample the
/// same load profile, so the *ratios* between them stay meaningful even
/// when absolute wall times wobble.
fn time_min_rr<const K: usize, F: FnMut(usize)>(reps: usize, mut f: F) -> [f64; K] {
    let mut best = [f64::INFINITY; K];
    for _ in 0..reps {
        for (k, slot) in best.iter_mut().enumerate() {
            let start = Instant::now();
            f(k);
            *slot = slot.min(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    best
}

/// Construction timings for one graph: the legacy hash-map builder-freeze
/// path against the columnar sort-merge build.
struct ConstructionResult {
    name: String,
    nodes: usize,
    edges: usize,
    hashmap_ms: f64,
    sortmerge_1t_ms: f64,
    sortmerge_nt_ms: f64,
}

impl ConstructionResult {
    fn speedup_vs_hashmap(&self) -> f64 {
        if self.sortmerge_1t_ms > 0.0 {
            self.hashmap_ms / self.sortmerge_1t_ms
        } else {
            0.0
        }
    }
}

/// Time the construction of all three temporal graphs: legacy store
/// projection (per-granularity hash-map builders + freeze) vs one
/// columnar pass over the trip table + sort-merge builds. Panics if the
/// two paths — or any two thread counts — disagree on a single bit of the
/// frozen graphs.
fn smoke_temporal_construction(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> ConstructionResult {
    let store = &outcome.selected.store;
    let trips = &outcome.selected.trips;

    let legacy: Vec<_> = TemporalGranularity::ALL
        .iter()
        .map(|&g| build_temporal_graph(store, g))
        .collect();
    let serial = build_all_from_trips(trips, None, Some(1));
    let parallel = build_all_from_trips(trips, None, Some(threads));
    for ((l, s), p) in legacy.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            l.csr, s.csr,
            "{:?}: columnar construction diverged from the builder-freeze path",
            l.granularity
        );
        assert_eq!(
            s.csr, p.csr,
            "{:?}: parallel construction diverged from serial — determinism contract broken",
            s.granularity
        );
    }

    let hashmap_ms = time_min(|| {
        for &g in &TemporalGranularity::ALL {
            std::hint::black_box(build_temporal_graph(store, g));
        }
    });
    let sortmerge_1t_ms = time_min(|| {
        std::hint::black_box(build_all_from_trips(trips, None, Some(1)));
    });
    let sortmerge_nt_ms = time_min(|| {
        std::hint::black_box(build_all_from_trips(trips, None, Some(threads)));
    });
    ConstructionResult {
        name: "construct/temporal_all".into(),
        nodes: serial.iter().map(|t| t.csr.node_count()).sum(),
        edges: serial.iter().map(|t| t.csr.edge_count()).sum(),
        hashmap_ms,
        sortmerge_1t_ms,
        sortmerge_nt_ms,
    }
}

/// Time the directed trip-graph construction both ways (store projection +
/// freeze vs seeded sort-merge build), verifying identity.
fn smoke_directed_construction(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> ConstructionResult {
    let store = &outcome.selected.store;
    let trips = &outcome.selected.trips;
    // The exact build the pipeline performs: dense trip columns over the
    // shared station-intern table, no re-interning.
    let build_sortmerge = |t: usize| {
        build_dense_csr(
            true,
            trips.station_ids().to_vec(),
            trips.src(),
            trips.dst(),
            trips.weights(),
            Some(t),
        )
    };
    let legacy = aggregate::project_directed(store, TRIP_LABEL).freeze();
    assert_eq!(
        legacy,
        build_sortmerge(1),
        "directed trip graph: columnar construction diverged from the builder-freeze path"
    );
    assert_eq!(
        build_sortmerge(1),
        build_sortmerge(threads),
        "directed trip graph: parallel construction diverged from serial"
    );
    let hashmap_ms = time_min(|| {
        std::hint::black_box(aggregate::project_directed(store, TRIP_LABEL).freeze());
    });
    let sortmerge_1t_ms = time_min(|| {
        std::hint::black_box(build_sortmerge(1));
    });
    let sortmerge_nt_ms = time_min(|| {
        std::hint::black_box(build_sortmerge(threads));
    });
    ConstructionResult {
        name: "construct/directed_trips".into(),
        nodes: legacy.node_count(),
        edges: legacy.edge_count(),
        hashmap_ms,
        sortmerge_1t_ms,
        sortmerge_nt_ms,
    }
}

/// Timings for incremental ingestion: applying a small trip batch as a
/// delta against rebuilding from the concatenated table.
struct DeltaResult {
    name: String,
    base_rows: usize,
    batch_rows: usize,
    nodes: usize,
    edges: usize,
    apply_ms: f64,
    rebuild_ms: f64,
}

impl DeltaResult {
    fn speedup_vs_rebuild(&self) -> f64 {
        if self.apply_ms > 0.0 {
            self.rebuild_ms / self.apply_ms
        } else {
            0.0
        }
    }
}

/// Split the pipeline's trip table into a base and a small trailing
/// batch, then time delta-apply against full rebuild for the directed
/// trip graph and for all three temporal graphs — panicking unless every
/// delta output is **bit-identical** to the one-shot rebuild (the PR 4
/// equivalence contract).
fn smoke_delta(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> Vec<DeltaResult> {
    let full = &outcome.selected.trips;
    let m = full.len();
    let batch_rows = (m / 64).max(1).min(m);
    let base_rows = m - batch_rows;
    let mut base = TripTable::new(full.station_ids().to_vec());
    for k in 0..base_rows {
        base.push_keyed(
            full.src()[k],
            full.dst()[k],
            full.day()[k],
            full.hour()[k],
            full.weights()[k],
        );
    }
    let mut batch = TripBatch::new();
    for k in base_rows..m {
        batch.push_keyed(
            full.station_id(full.src()[k]),
            full.station_id(full.dst()[k]),
            full.day()[k],
            full.hour()[k],
            full.weights()[k],
        );
    }

    // The appended table must reproduce the pipeline's table exactly.
    let mut appended = base.clone();
    let append_outcome = appended.append_batch(&batch);
    assert_eq!(
        &appended, full,
        "incremental append diverged from the one-pass trip table"
    );

    // --- Directed trip graph: delta vs rebuild. ---
    let build_directed = |t: &TripTable, threads: usize| {
        build_dense_csr(
            true,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        )
    };
    let base_directed = build_directed(&base, threads);
    let bs = append_outcome.batch_start;
    let apply_directed = || {
        let delta = CsrDelta::from_dense(
            true,
            appended.station_ids().to_vec(),
            append_outcome.old_to_new.clone(),
            &appended.src()[bs..],
            &appended.dst()[bs..],
            &appended.weights()[bs..],
        );
        base_directed.apply_delta(&delta, Some(threads))
    };
    let rebuilt = build_directed(&appended, threads);
    let applied = apply_directed();
    assert_eq!(
        applied, rebuilt,
        "directed trip graph: delta apply diverged from full rebuild"
    );
    assert_eq!(
        applied.total_weight().to_bits(),
        rebuilt.total_weight().to_bits(),
        "directed trip graph: total weight bits diverged"
    );
    let mut results = vec![DeltaResult {
        name: "delta/directed_trips".into(),
        base_rows,
        batch_rows,
        nodes: rebuilt.node_count(),
        edges: rebuilt.edge_count(),
        apply_ms: time_min(|| {
            std::hint::black_box(apply_directed());
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_directed(&appended, threads));
        }),
    }];

    // --- All three temporal graphs: one batch pass vs one-shot build. ---
    // `apply_batch_all` consumes its inputs (layer maps move instead of
    // cloning), so each timed invocation draws a pre-made clone from a
    // pool — the clone cost stays outside the measurement.
    let base_temporals = build_all_from_trips(&base, None, Some(threads));
    let advanced = apply_batch_all(
        base_temporals.clone(),
        &appended,
        &append_outcome,
        None,
        Some(threads),
    );
    let rebuilt_temporals = build_all_from_trips(&appended, None, Some(threads));
    for (got, want) in advanced.iter().zip(&rebuilt_temporals) {
        assert_eq!(
            got.csr, want.csr,
            "{:?}: temporal delta diverged from full rebuild",
            got.granularity
        );
        assert_eq!(
            got.layer_map, want.layer_map,
            "{:?}: temporal layer map diverged",
            got.granularity
        );
    }
    let mut pool: Vec<_> = (0..REPS).map(|_| base_temporals.clone()).collect();
    results.push(DeltaResult {
        name: "delta/temporal_all".into(),
        base_rows,
        batch_rows,
        nodes: rebuilt_temporals.iter().map(|t| t.csr.node_count()).sum(),
        edges: rebuilt_temporals.iter().map(|t| t.csr.edge_count()).sum(),
        apply_ms: time_min(|| {
            let input = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(apply_batch_all(
                input,
                &appended,
                &append_outcome,
                None,
                Some(threads),
            ));
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_all_from_trips(&appended, None, Some(threads)));
        }),
    });
    results
}

/// Timings for one windowed-lifecycle stage: incremental advance against
/// a one-shot rebuild over the surviving rows.
struct WindowResult {
    name: String,
    evicted_rows: usize,
    batch_rows: usize,
    nodes: usize,
    edges: usize,
    apply_ms: f64,
    rebuild_ms: f64,
}

impl WindowResult {
    fn speedup_vs_rebuild(&self) -> f64 {
        if self.apply_ms > 0.0 {
            self.rebuild_ms / self.apply_ms
        } else {
            0.0
        }
    }
}

/// Seeded vs cold Louvain on the post-window `GHour` graph.
struct WindowLouvain {
    nodes: usize,
    edges: usize,
    seeded_ms: f64,
    cold_ms: f64,
    q_seeded: f64,
    q_cold: f64,
}

impl WindowLouvain {
    fn speedup_vs_cold(&self) -> f64 {
        if self.seeded_ms > 0.0 {
            self.cold_ms / self.seeded_ms
        } else {
            0.0
        }
    }
}

/// Run the windowed-lifecycle section: slide the selected network's trip
/// window (evicting the first two weekdays while a small replayed batch
/// rides along), timing `advance_window` and `apply_window_all` against
/// one-shot rebuilds over the surviving table — panicking unless the
/// windowed state is **bit-identical** to the rebuilds (the PR 7
/// equivalence contract) — then seeded vs cold Louvain on the post-window
/// `GHour` graph, panicking if seeding loses modularity to the cold run.
fn smoke_window(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> (Vec<WindowResult>, WindowLouvain) {
    let selected = &outcome.selected;
    let pre_trips = &selected.trips;
    let pre_temporals = build_all_from_trips(pre_trips, None, Some(threads));

    // The window slides by one hour — the live-deployment cadence this
    // path exists for (gentle shifts evict a sliver of the table and
    // keep the previous partition a good seed); the batch replays the
    // table's trailing rows (station set unchanged, like the delta
    // section). Heavier evictions are exercised by the differential
    // proptest suite, not timed here.
    let window = WindowStart::new(0, 1);
    let m = pre_trips.len();
    let batch_rows = (m / 64).max(1).min(m);
    let mut batch = TripBatch::new();
    for k in (m - batch_rows)..m {
        batch.push_keyed(
            pre_trips.station_id(pre_trips.src()[k]),
            pre_trips.station_id(pre_trips.dst()[k]),
            pre_trips.day()[k],
            pre_trips.hour()[k],
            pre_trips.weights()[k],
        );
    }

    let mut net = selected.clone();
    let wo = net
        .advance_window(&batch, window, Some(threads))
        .expect("batch endpoints come from the network itself");
    let evicted_rows = wo.evicted.evicted_rows();
    assert!(evicted_rows > 0, "window section: nothing expired");

    // --- Station graphs: advance_window vs rebuild over survivors. ---
    let rebuild_station = |dir: bool| {
        build_dense_csr(
            dir,
            net.trips.station_ids().to_vec(),
            net.trips.src(),
            net.trips.dst(),
            net.trips.weights(),
            Some(threads),
        )
    };
    for (dir, got) in [(true, &net.directed), (false, &net.undirected)] {
        let want = rebuild_station(dir);
        assert_eq!(
            got, &want,
            "window: advance_window diverged from a rebuild over the surviving rows"
        );
        assert_eq!(
            got.total_weight().to_bits(),
            want.total_weight().to_bits(),
            "window: total weight bits diverged from the rebuild"
        );
    }
    // The rebuild baseline reconstructs every piece of state the advance
    // maintained in place: the surviving trip table, both frozen trip
    // graphs, and the full-fidelity store relationships with their
    // temporal props. (Table III is excluded — the advance pays that
    // extra cost on top.)
    let rebuild_station_state = || {
        let mut t = TripTable::new(net.trips.station_ids().to_vec());
        for k in 0..net.trips.len() {
            t.push_keyed(
                net.trips.src()[k],
                net.trips.dst()[k],
                net.trips.day()[k],
                net.trips.hour()[k],
                net.trips.weights()[k],
            );
        }
        let d = build_dense_csr(
            true,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        );
        let u = build_dense_csr(
            false,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        );
        let mut store = GraphStore::new();
        for &id in t.station_ids() {
            store.add_node(id, "Station", props::<[(&str, PropValue); 0], &str>([]));
        }
        for k in 0..t.len() {
            store
                .add_edge(
                    t.station_id(t.src()[k]),
                    t.station_id(t.dst()[k]),
                    TRIP_LABEL,
                    props([
                        ("day", PropValue::from(i64::from(t.day()[k]))),
                        ("hour", PropValue::from(i64::from(t.hour()[k]))),
                    ]),
                )
                .expect("stations added above");
        }
        (t, d, u, store)
    };
    let mut pool: Vec<_> = (0..REPS).map(|_| selected.clone()).collect();
    let mut results = vec![WindowResult {
        name: "window/advance_window".into(),
        evicted_rows,
        batch_rows,
        nodes: net.directed.node_count(),
        edges: net.directed.edge_count() + net.undirected.edge_count(),
        apply_ms: time_min(|| {
            let mut n = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(n.advance_window(&batch, window, Some(threads)).unwrap());
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(rebuild_station_state());
        }),
    }];

    // --- Temporal graphs: apply_window_all vs rebuild over survivors. ---
    let advanced = apply_window_all(pre_temporals.clone(), &net.trips, &wo, None, Some(threads));
    let rebuilt = build_all_from_trips(&net.trips, None, Some(threads));
    for (got, want) in advanced.iter().zip(&rebuilt) {
        assert_eq!(
            got.csr, want.csr,
            "{:?}: windowed temporal advance diverged from full rebuild",
            got.granularity
        );
        assert_eq!(
            got.layer_map, want.layer_map,
            "{:?}: windowed temporal layer map diverged",
            got.granularity
        );
    }
    let mut pool: Vec<_> = (0..REPS).map(|_| pre_temporals.clone()).collect();
    results.push(WindowResult {
        name: "window/temporal_all".into(),
        evicted_rows,
        batch_rows,
        nodes: rebuilt.iter().map(|t| t.csr.node_count()).sum(),
        edges: rebuilt.iter().map(|t| t.csr.edge_count()).sum(),
        apply_ms: time_min(|| {
            let input = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(apply_window_all(
                input,
                &net.trips,
                &wo,
                None,
                Some(threads),
            ));
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_all_from_trips(&net.trips, None, Some(threads)));
        }),
    });

    // --- Seeded vs cold Louvain on the post-window GHour graph. ---
    let cfg = LouvainConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let pre_ghour = &pre_temporals[2].csr;
    let post_ghour = &rebuilt[2].csr;
    let seed = louvain_csr(pre_ghour, &cfg);
    let seeded = louvain_seeded(post_ghour, &seed, &cfg);
    let cold = louvain_csr(post_ghour, &cfg);
    let q_seeded = modularity_csr_threads(post_ghour, &seeded, Some(threads));
    let q_cold = modularity_csr_threads(post_ghour, &cold, Some(threads));
    // Two gates. Hard: the seeded run must reach the cold run's quality
    // to within 0.1% relative — greedy local moving from different starts
    // can settle in marginally different basins, so exact dominance over
    // cold is not a theorem, but anything beyond basin noise means the
    // seeding collapsed. (The guaranteed floor — seeded Q never below the
    // seed partition's Q on the new graph — is enforced by the
    // `moby-community` and `moby-core` test suites.)
    assert!(
        q_seeded >= q_cold - 1e-3 * q_cold.abs().max(1e-3),
        "window: seeded Louvain collapsed below the cold run \
         ({q_seeded} vs {q_cold})"
    );
    let louvain = WindowLouvain {
        nodes: post_ghour.node_count(),
        edges: post_ghour.edge_count(),
        seeded_ms: time_min(|| {
            std::hint::black_box(louvain_seeded(post_ghour, &seed, &cfg));
        }),
        cold_ms: time_min(|| {
            std::hint::black_box(louvain_csr(post_ghour, &cfg));
        }),
        q_seeded,
        q_cold,
    };

    // --- The end-to-end comparison the window exists for: advancing all
    // state incrementally vs rebuilding everything and re-detecting cold.
    let apply_total = results[0].apply_ms + results[1].apply_ms + louvain.seeded_ms;
    let rebuild_total = results[0].rebuild_ms + results[1].rebuild_ms + louvain.cold_ms;
    results.push(WindowResult {
        name: "window/total".into(),
        evicted_rows,
        batch_rows,
        nodes: net.directed.node_count(),
        edges: net.directed.edge_count(),
        apply_ms: apply_total,
        rebuild_ms: rebuild_total,
    });
    (results, louvain)
}

/// One timed stage of the city-scale (`large`) tier.
struct LargeStage {
    name: String,
    /// Rows flowing through the stage (trips for generation/cleaning,
    /// 0 where the stage consumes an already-built table).
    rows: usize,
    nodes: usize,
    edges: usize,
    wall_ms: f64,
    /// Process peak RSS (kB) sampled when the stage finished; 0 means
    /// "not measured" (non-Linux hosts, or an unparseable `VmHWM` line).
    peak_rss_kb: u64,
    /// Graph heap footprint the stage produced, in bytes (0 for
    /// non-graph stages).
    graph_bytes: usize,
}

/// Run the city tier: stream-generate and clean ≥1 M trips over ≥10 k
/// stations, then build the station graph **unsharded and sharded**
/// (panicking unless the two frozen graphs are bit-identical — the shard
/// independence contract) and the three temporal graphs through the
/// sharded path. Stages run once, not `REPS` times — at 1 M+ rows a
/// single pass is already well above timer noise, and the tier's point
/// is the memory/scale story, not microsecond-stable medians. Also
/// returns the frozen city station graph so the sweep section can run
/// its kernels at city scale.
fn smoke_large(threads: usize, shards: usize) -> (Vec<LargeStage>, CsrGraph) {
    let cfg = city_config();
    let mut stages = Vec::new();

    println!(
        "city tier: {} stations, {} zones, {} trips, {shards} shards ...",
        cfg.stations, cfg.zones, cfg.trips
    );
    let start = Instant::now();
    let stations = cfg.station_ids();
    let (table, report) = clean_trip_stream(stations, cfg.trips as usize, city_trip_stream(&cfg));
    stages.push(LargeStage {
        name: "large/generate_clean".into(),
        rows: report.rows_seen,
        nodes: table.station_ids().len(),
        edges: 0,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        graph_bytes: 0,
    });
    println!(
        "  cleaned {} rows ({} dropped: unknown endpoint) in {:.1?}",
        report.rows_kept,
        report.unknown_endpoint,
        start.elapsed()
    );

    let build_station = |shards: Option<usize>| {
        build_dense_csr_sharded(
            false,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            shards,
            Some(threads),
        )
    };
    let start = Instant::now();
    let unsharded = build_station(Some(1));
    stages.push(LargeStage {
        name: "large/build_unsharded".into(),
        rows: table.len(),
        nodes: unsharded.node_count(),
        edges: unsharded.edge_count(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        graph_bytes: unsharded.heap_bytes(),
    });

    let start = Instant::now();
    let sharded = build_station(Some(shards));
    stages.push(LargeStage {
        name: format!("large/build_sharded_{shards}"),
        rows: table.len(),
        nodes: sharded.node_count(),
        edges: sharded.edge_count(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        graph_bytes: sharded.heap_bytes(),
    });
    assert_eq!(
        sharded, unsharded,
        "city tier: sharded station build diverged from unsharded — \
         shard independence contract broken"
    );
    assert_eq!(
        sharded.total_weight().to_bits(),
        unsharded.total_weight().to_bits(),
        "city tier: total weight bits diverged between shard counts"
    );

    let start = Instant::now();
    let temporals =
        build_all_from_trips_sharded(&table, Some(&sharded), Some(shards), Some(threads));
    stages.push(LargeStage {
        name: "large/temporal_sharded".into(),
        rows: table.len(),
        nodes: temporals.iter().map(|t| t.csr.node_count()).sum(),
        edges: temporals.iter().map(|t| t.csr.edge_count()).sum(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        graph_bytes: temporals.iter().map(|t| t.csr.heap_bytes()).sum(),
    });
    (stages, sharded)
}

/// Default spill budget (MB) for the spill tier when `MOBY_SPILL_BUDGET_MB`
/// is not set: well under the city tier's in-memory scatter footprint, so
/// the out-of-core path genuinely engages.
const SPILL_DEFAULT_BUDGET_MB: u64 = 128;

/// The spill budget (MB) the spill tier reports and the child probes run
/// under.
fn spill_budget_mb() -> u64 {
    std::env::var("MOBY_SPILL_BUDGET_MB")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SPILL_DEFAULT_BUDGET_MB)
}

/// One row of the spill tier: the full city pipeline in one mode
/// (in-memory or spooled + spilled), run in its own child process.
struct SpillStage {
    name: String,
    /// Cleaned trip rows flowing into the builds.
    rows: usize,
    nodes: usize,
    edges: usize,
    wall_ms: f64,
    /// The child process's peak RSS (kB); 0 means "not measured".
    peak_rss_kb: u64,
    /// Budget the mode ran under (0 for the unbudgeted in-memory mode).
    budget_mb: u64,
    /// FNV-1a-64 fingerprint of the three frozen temporal graphs.
    fingerprint: u64,
}

/// FNV-1a-64 over a byte slice, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a-64 fingerprint of the three temporal graphs, covering every
/// bit that the equality contract covers: node ids, offsets, targets,
/// weight bits, total-weight bits and edge counts, in granularity order.
/// Two processes that build bit-identical graphs produce the same value;
/// any single differing bit changes it.
fn fingerprint_temporals(temporals: &[TemporalGraph]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for t in temporals {
        let g = &t.csr;
        for &id in g.node_ids() {
            h = fnv1a(h, &id.to_le_bytes());
        }
        for &o in g.offsets() {
            h = fnv1a(h, &o.to_le_bytes());
        }
        for v in 0..g.node_count() {
            let (targets, weights) = g.row(v);
            for (&t, &w) in targets.iter().zip(weights) {
                h = fnv1a(h, &t.to_le_bytes());
                h = fnv1a(h, &w.to_bits().to_le_bytes());
            }
        }
        h = fnv1a(h, &g.total_weight().to_bits().to_le_bytes());
        h = fnv1a(h, &(g.edge_count() as u64).to_le_bytes());
    }
    h
}

/// Child-process body of the spill tier (`--city-probe inmem|spill`):
/// run the city pipeline end to end in one mode, print a single
/// machine-readable line and exit. Runs in a separate process so that
/// `VmHWM` — a process-lifetime high-water mark — reports *this mode's*
/// peak and nothing else's.
fn run_city_probe(mode: &str, threads: usize, shards: usize) -> ! {
    let cfg = city_config();
    let stations = cfg.station_ids();
    let budget_mb = spill_budget_mb();
    let start = Instant::now();
    let (temporals, rows, budget_mb) = match mode {
        "inmem" => {
            let (table, report) =
                clean_trip_stream(stations, cfg.trips as usize, city_trip_stream(&cfg));
            let t = build_all_from_trips_sharded(&table, None, Some(shards), Some(threads));
            (t, report.rows_kept, 0)
        }
        "spill" => {
            // The out-of-core arm end to end: cleaned rows spool to disk
            // instead of materialising a trip table, and the builds read
            // the spool back shard by shard through the spill path.
            let (spool, report) = clean_trip_stream_spooled(stations, city_trip_stream(&cfg), None)
                .expect("city probe: spooling the cleaned trips failed");
            let t = build_all_from_spool(&spool, Some(shards), Some(threads), None)
                .expect("city probe: spilled build failed");
            (t, report.rows_kept, budget_mb)
        }
        other => {
            eprintln!("unknown city probe mode '{other}'; expected inmem|spill");
            std::process::exit(2);
        }
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "CITY_PROBE mode={mode} rows={rows} nodes={} edges={} wall_ms={wall_ms:.3} \
         peak_rss_kb={} budget_mb={budget_mb} fingerprint={:016x}",
        temporals.iter().map(|t| t.csr.node_count()).sum::<usize>(),
        temporals.iter().map(|t| t.csr.edge_count()).sum::<usize>(),
        peak_rss_kb().unwrap_or(0),
        fingerprint_temporals(&temporals),
    );
    std::process::exit(0)
}

/// Pull one `key=value` field out of a `CITY_PROBE` line.
fn probe_field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .unwrap_or_else(|| panic!("city probe line missing `{key}`: {line}"))
}

/// Run the spill tier: spawn this same binary twice as `--city-probe`
/// children (in-memory, then spooled + spilled), parse their summary
/// lines, and panic unless the two modes' graph fingerprints agree — the
/// spilled-vs-in-memory bit-identity contract, asserted across a process
/// boundary.
fn smoke_spill(threads: usize, shards: usize) -> Vec<SpillStage> {
    let exe = std::env::current_exe().expect("resolving the bench_smoke binary path");
    let mut stages = Vec::new();
    for mode in ["inmem", "spill"] {
        println!("  spawning city {mode} probe ...");
        let out = std::process::Command::new(&exe)
            .args([
                "--city-probe",
                mode,
                "--threads",
                &threads.to_string(),
                "--shards",
                &shards.to_string(),
            ])
            .output()
            .expect("spawning the city probe child process");
        assert!(
            out.status.success(),
            "city {mode} probe failed ({}):\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("CITY_PROBE"))
            .unwrap_or_else(|| panic!("city {mode} probe printed no CITY_PROBE line:\n{stdout}"));
        let field = |key: &str| probe_field(line, key);
        stages.push(SpillStage {
            name: format!(
                "spill/city_build_{}",
                if mode == "spill" { "spilled" } else { mode }
            ),
            rows: field("rows").parse().expect("probe rows"),
            nodes: field("nodes").parse().expect("probe nodes"),
            edges: field("edges").parse().expect("probe edges"),
            wall_ms: field("wall_ms").parse().expect("probe wall_ms"),
            peak_rss_kb: field("peak_rss_kb").parse().expect("probe peak_rss_kb"),
            budget_mb: field("budget_mb").parse().expect("probe budget_mb"),
            fingerprint: u64::from_str_radix(field("fingerprint"), 16).expect("probe fingerprint"),
        });
    }
    assert_eq!(
        stages[0].fingerprint, stages[1].fingerprint,
        "city tier: spilled build fingerprint diverged from in-memory — \
         spilled-vs-in-memory bit-identity contract broken"
    );
    stages
}

/// Assert the spilled-vs-in-memory contract at pipeline scale: a forced
/// spill (budget 0) of all three temporal graphs must be bit-identical
/// to the in-memory build. Cheap enough to run at every scale; the
/// large tier's child probes assert the same contract again at city
/// scale across a process boundary.
fn assert_spill_contract(outcome: &moby_core::pipeline::ExpansionOutcome, threads: usize) {
    let trips = &outcome.selected.trips;
    let spilled = build_all_from_trips_spilled(trips, None, None, Some(threads), Some(0), None)
        .expect("forced-spill build failed");
    let inmem = build_all_from_trips(trips, None, Some(threads));
    for (s, m) in spilled.iter().zip(&inmem) {
        assert_eq!(
            s.csr, m.csr,
            "{:?}: spilled construction diverged from in-memory — \
             spill bit-identity contract broken",
            s.granularity
        );
        assert_eq!(
            s.csr.total_weight().to_bits(),
            m.csr.total_weight().to_bits(),
            "{:?}: total weight bits diverged between spilled and in-memory builds",
            s.granularity
        );
    }
}

/// Per-variant wall times for one hot sweep kernel (PR 8): a single full
/// pass over every row, scalar vs batched loop shape, natural vs
/// degree-permuted layout. The JSON derives per-iteration ns/edge from
/// these. Unlike the serial-vs-parallel columns, the ratios here compare
/// equal-thread single sweeps, so they stay meaningful on a single-core
/// host and are never suppressed.
struct SweepResult {
    name: String,
    scale: String,
    nodes: usize,
    /// Edge slots one sweep traverses (total row storage entries).
    edges: usize,
    scalar_natural_ms: f64,
    batched_natural_ms: f64,
    scalar_permuted_ms: f64,
    batched_permuted_ms: f64,
}

impl SweepResult {
    fn ns_per_edge(&self, ms: f64) -> f64 {
        if self.edges > 0 {
            ms * 1e6 / self.edges as f64
        } else {
            0.0
        }
    }

    fn speedup_batched(&self) -> f64 {
        if self.batched_natural_ms > 0.0 {
            self.scalar_natural_ms / self.batched_natural_ms
        } else {
            0.0
        }
    }

    fn speedup_permuted(&self) -> f64 {
        if self.batched_permuted_ms > 0.0 {
            self.batched_natural_ms / self.batched_permuted_ms
        } else {
            0.0
        }
    }

    /// Best PR 8 variant vs the scalar natural-order loop (the pre-PR 8
    /// shape): which of batching and permutation wins differs per kernel
    /// and per graph (short rows favor the permuted scalar loop, long
    /// rows the lane/gather kernels), so the headline ratio takes the
    /// fastest of the three.
    fn speedup_best(&self) -> f64 {
        let best = self
            .batched_natural_ms
            .min(self.scalar_permuted_ms)
            .min(self.batched_permuted_ms);
        if best > 0.0 {
            self.scalar_natural_ms / best
        } else {
            0.0
        }
    }
}

/// One PageRank pull iteration in the pre-PR 8 loop shape: a serial
/// per-edge accumulation over every in-row.
fn pull_sweep_scalar(g: &CsrGraph, contrib: &[f64], out: &mut [f64]) {
    for v in 0..g.node_count() {
        let (sources, weights) = g.in_row(v);
        let mut acc = 0.0f64;
        for (&s, &w) in sources.iter().zip(weights) {
            acc += w * contrib[s as usize];
        }
        out[v] = acc;
    }
}

/// The same pull iteration through the production 4-lane batched fold
/// (the shape of `row_dot` in `moby-graph`): position-assigned lane sums
/// folded `(l0 + l1) + (l2 + l3)`, so the result is a pure function of
/// row positions — identical bits on the natural and permuted layouts.
fn pull_sweep_batched(g: &CsrGraph, contrib: &[f64], out: &mut [f64]) {
    for v in 0..g.node_count() {
        let (sources, weights) = g.in_row(v);
        let mut lanes = [0.0f64; 4];
        let mut st = sources.chunks_exact(4);
        let mut wt = weights.chunks_exact(4);
        for (t, w) in (&mut st).zip(&mut wt) {
            lanes[0] += w[0] * contrib[t[0] as usize];
            lanes[1] += w[1] * contrib[t[1] as usize];
            lanes[2] += w[2] * contrib[t[2] as usize];
            lanes[3] += w[3] * contrib[t[3] as usize];
        }
        for (i, (&t, &w)) in st.remainder().iter().zip(wt.remainder()).enumerate() {
            lanes[i] += w * contrib[t as usize];
        }
        out[v] = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    }
}

/// Louvain first-pass neighbour accumulation, scalar shape: for every
/// node, scatter neighbour weights into a dense per-label scratch
/// (skipping self-loops), pick the heaviest label (ties to the smallest)
/// and reset. `labels[p]` carries the label of *storage position* `p`,
/// so the same kernel serves both layouts; sums scatter in row position
/// order, which is what keeps the two layouts bit-identical.
fn louvain_pass_scalar(
    g: &CsrGraph,
    labels: &[u32],
    links_to: &mut [f64],
    touched: &mut Vec<u32>,
    out: &mut [f64],
) {
    for v in 0..g.node_count() {
        let (targets, weights) = g.row(v);
        for (&t, &w) in targets.iter().zip(weights) {
            if t != v as u32 {
                let l = labels[t as usize] as usize;
                if links_to[l] == 0.0 {
                    touched.push(l as u32);
                }
                links_to[l] += w;
            }
        }
        // Digest the tally as (max sum, smallest label among exact ties):
        // that pair is unique regardless of iteration order, so the result
        // is layout-independent without sorting `touched`.
        let mut best = 0.0f64;
        let mut best_l = u32::MAX;
        for &l in touched.iter() {
            let sum = links_to[l as usize];
            if sum > best || (sum == best && l < best_l) {
                best = sum;
                best_l = l;
            }
            links_to[l as usize] = 0.0;
        }
        touched.clear();
        out[v] = best;
    }
}

/// The same first-pass accumulation through the production gather-block
/// shape (the `GATHER = 8` scheme of the Louvain move scan): resolve a
/// block of labels branch-free, then scatter the weights in position
/// order — the per-label sums accumulate in exactly the scalar order, so
/// this variant is bit-identical to [`louvain_pass_scalar`].
/// Tally one self-free row slice into the dense `links_to` scratch:
/// gather-blocks of `GATHER` labels, then a positional scatter, so the
/// accumulation order — and therefore every fold bit — matches the scalar
/// per-edge loop exactly.
fn tally_slice(
    labels: &[u32],
    ts: &[u32],
    ws: &[f64],
    links_to: &mut [f64],
    touched: &mut Vec<u32>,
) {
    const GATHER: usize = 8;
    let mut tc = ts.chunks_exact(GATHER);
    let mut wc = ws.chunks_exact(GATHER);
    let mut lbls = [0u32; GATHER];
    for (t, w) in (&mut tc).zip(&mut wc) {
        for (slot, &nbr) in lbls.iter_mut().zip(t) {
            *slot = labels[nbr as usize];
        }
        for (&l, &w) in lbls.iter().zip(w) {
            let l = l as usize;
            if links_to[l] == 0.0 {
                touched.push(l as u32);
            }
            links_to[l] += w;
        }
    }
    for (&t, &w) in tc.remainder().iter().zip(wc.remainder()) {
        let l = labels[t as usize] as usize;
        if links_to[l] == 0.0 {
            touched.push(l as u32);
        }
        links_to[l] += w;
    }
}

fn louvain_pass_batched(
    g: &CsrGraph,
    labels: &[u32],
    links_to: &mut [f64],
    touched: &mut Vec<u32>,
    out: &mut [f64],
) {
    for v in 0..g.node_count() {
        let (targets, weights) = g.row(v);
        // Merged CSR rows hold each target at most once, so the self-loop
        // (if any) sits at exactly one position: find it with one branchless
        // scan and tally the self-free slice(s), instead of re-testing
        // `t != v` on every edge. Slicing preserves position order, so the
        // fold stays bit-identical to the scalar kernel, and the common
        // no-self-loop row keeps the single-slice fast path.
        match targets.iter().position(|&t| t == v as u32) {
            None => tally_slice(labels, targets, weights, links_to, touched),
            Some(i) => {
                tally_slice(labels, &targets[..i], &weights[..i], links_to, touched);
                tally_slice(
                    labels,
                    &targets[i + 1..],
                    &weights[i + 1..],
                    links_to,
                    touched,
                );
            }
        }
        // Digest the tally as (max sum, smallest label among exact ties):
        // that pair is unique regardless of iteration order, so the result
        // is layout-independent without sorting `touched`.
        let mut best = 0.0f64;
        let mut best_l = u32::MAX;
        for &l in touched.iter() {
            let sum = links_to[l as usize];
            if sum > best || (sum == best && l < best_l) {
                best = sum;
                best_l = l;
            }
            links_to[l as usize] = 0.0;
        }
        touched.clear();
        out[v] = best;
    }
}

/// Run the sweep section on one frozen graph: permute it by degree, then
/// time a single PageRank pull iteration and a single Louvain first-pass
/// accumulation in all four (loop shape × layout) variants — panicking
/// unless permuted sweeps match natural sweeps bit-for-bit, the batched
/// Louvain tally matches the scalar tally bit-for-bit, and the batched
/// pull fold stays within reassociation tolerance of the scalar fold.
fn smoke_sweep(tag: &str, scale_name: &str, graph: &CsrGraph, threads: usize) -> Vec<SweepResult> {
    let pg = graph.permute_by_degree(threads);
    let n = graph.node_count();
    let perm = pg.perm();
    let inv = pg.inv();
    let pgraph = pg.graph();

    // --- PageRank pull iteration. ---
    // Deterministic, irregular per-node contributions, mapped through the
    // permutation so both layouts read the same logical values.
    let contrib_nat: Vec<f64> = (0..n)
        .map(|u| 0.1 + (u as f64 * 0.618_033_988_75).fract())
        .collect();
    let contrib_perm: Vec<f64> = perm.iter().map(|&u| contrib_nat[u as usize]).collect();
    let mut pull_sn = vec![0.0f64; n];
    let mut pull_sp = vec![0.0f64; n];
    let mut pull_bn = vec![0.0f64; n];
    let mut pull_bp = vec![0.0f64; n];
    pull_sweep_scalar(graph, &contrib_nat, &mut pull_sn);
    pull_sweep_scalar(pgraph, &contrib_perm, &mut pull_sp);
    pull_sweep_batched(graph, &contrib_nat, &mut pull_bn);
    pull_sweep_batched(pgraph, &contrib_perm, &mut pull_bp);
    for u in 0..n {
        let p = inv[u] as usize;
        assert_eq!(
            pull_sn[u].to_bits(),
            pull_sp[p].to_bits(),
            "sweep/{tag}: scalar pull diverged between layouts at node {u}"
        );
        assert_eq!(
            pull_bn[u].to_bits(),
            pull_bp[p].to_bits(),
            "sweep/{tag}: batched pull diverged between layouts at node {u}"
        );
        assert!(
            (pull_sn[u] - pull_bn[u]).abs() <= 1e-9 * pull_sn[u].abs().max(1.0),
            "sweep/{tag}: batched pull drifted from scalar at node {u}: {} vs {}",
            pull_sn[u],
            pull_bn[u]
        );
    }
    let in_edges = graph
        .in_offsets()
        .last()
        .map_or(0, |&e| e as usize - graph.in_offsets()[0] as usize);
    let [pull_sn_ms, pull_bn_ms, pull_sp_ms, pull_bp_ms] = time_min_rr(SWEEP_REPS, |k| {
        match k {
            0 => pull_sweep_scalar(graph, &contrib_nat, &mut pull_sn),
            1 => pull_sweep_batched(graph, &contrib_nat, &mut pull_bn),
            2 => pull_sweep_scalar(pgraph, &contrib_perm, &mut pull_sp),
            _ => pull_sweep_batched(pgraph, &contrib_perm, &mut pull_bp),
        }
        std::hint::black_box((&pull_sn, &pull_bn, &pull_sp, &pull_bp));
    });
    let pagerank = SweepResult {
        name: format!("sweep/pagerank_pull/{tag}"),
        scale: scale_name.to_string(),
        nodes: n,
        edges: in_edges,
        scalar_natural_ms: pull_sn_ms,
        batched_natural_ms: pull_bn_ms,
        scalar_permuted_ms: pull_sp_ms,
        batched_permuted_ms: pull_bp_ms,
    };

    // --- Louvain first-pass accumulation (singleton start). ---
    // `labels[p]` = natural label of storage position `p`: the identity on
    // the natural layout, `perm` itself on the permuted one.
    let labels_nat: Vec<u32> = (0..n as u32).collect();
    let labels_perm: Vec<u32> = perm.to_vec();
    let mut links_to = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut lv_sn = vec![0.0f64; n];
    let mut lv_sp = vec![0.0f64; n];
    let mut lv_bn = vec![0.0f64; n];
    let mut lv_bp = vec![0.0f64; n];
    louvain_pass_scalar(graph, &labels_nat, &mut links_to, &mut touched, &mut lv_sn);
    louvain_pass_scalar(
        pgraph,
        &labels_perm,
        &mut links_to,
        &mut touched,
        &mut lv_sp,
    );
    louvain_pass_batched(graph, &labels_nat, &mut links_to, &mut touched, &mut lv_bn);
    louvain_pass_batched(
        pgraph,
        &labels_perm,
        &mut links_to,
        &mut touched,
        &mut lv_bp,
    );
    for u in 0..n {
        let p = inv[u] as usize;
        assert_eq!(
            lv_sn[u].to_bits(),
            lv_sp[p].to_bits(),
            "sweep/{tag}: scalar tally diverged between layouts at node {u}"
        );
        assert_eq!(
            lv_sn[u].to_bits(),
            lv_bn[u].to_bits(),
            "sweep/{tag}: batched tally diverged from scalar at node {u}"
        );
        assert_eq!(
            lv_bn[u].to_bits(),
            lv_bp[p].to_bits(),
            "sweep/{tag}: batched tally diverged between layouts at node {u}"
        );
    }
    let out_edges = graph
        .offsets()
        .last()
        .map_or(0, |&e| e as usize - graph.offsets()[0] as usize);
    let [lv_sn_ms, lv_bn_ms, lv_sp_ms, lv_bp_ms] = time_min_rr(SWEEP_REPS, |k| {
        match k {
            0 => louvain_pass_scalar(graph, &labels_nat, &mut links_to, &mut touched, &mut lv_sn),
            1 => louvain_pass_batched(graph, &labels_nat, &mut links_to, &mut touched, &mut lv_bn),
            2 => louvain_pass_scalar(
                pgraph,
                &labels_perm,
                &mut links_to,
                &mut touched,
                &mut lv_sp,
            ),
            _ => louvain_pass_batched(
                pgraph,
                &labels_perm,
                &mut links_to,
                &mut touched,
                &mut lv_bp,
            ),
        }
        std::hint::black_box((&lv_sn, &lv_bn, &lv_sp, &lv_bp));
    });
    let louvain = SweepResult {
        name: format!("sweep/louvain_first_pass/{tag}"),
        scale: scale_name.to_string(),
        nodes: n,
        edges: out_edges,
        scalar_natural_ms: lv_sn_ms,
        batched_natural_ms: lv_bn_ms,
        scalar_permuted_ms: lv_sp_ms,
        batched_permuted_ms: lv_bp_ms,
    };
    vec![pagerank, louvain]
}

/// Queries issued by the serve section, spread across the client threads.
const SERVE_QUERIES: usize = 2048;

/// The background writer keeps publishing until the query stream drains,
/// but never fewer than this many snapshots — a degenerately fast query
/// run must still race readers across real publish boundaries.
const SERVE_MIN_OPS: usize = 8;

/// One serve-section row: sustained mixed-query throughput and latency
/// percentiles against a live snapshot handle under background ingest.
struct ServeResult {
    name: String,
    workers: usize,
    queries: usize,
    publishes: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Serve a mixed query stream from a [`QueryPool`] while a background
/// [`SnapshotWriter`] continuously ingests and advances the window,
/// then verify the final served snapshot is **bit-identical** to an
/// offline rebuild over the writer's final trip table (the serving
/// layer's snapshot-isolation contract — divergence panics, failing CI).
fn smoke_serve(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> Vec<ServeResult> {
    let selected = &outcome.selected;
    let trips = &selected.trips;

    // The write stream replays the table's trailing rows (station set
    // pinned, endpoints valid by construction), alternating plain
    // ingests with gentle window advances — the live-deployment cadence.
    let m = trips.len();
    let rows = (m / 64).clamp(1, m);
    let mut batch = TripBatch::new();
    for k in (m - rows)..m {
        batch.push_keyed(
            trips.station_id(trips.src()[k]),
            trips.station_id(trips.dst()[k]),
            trips.day()[k],
            trips.hour()[k],
            trips.weights()[k],
        );
    }

    let config = ServeConfig {
        threads: Some(threads),
        ..ServeConfig::default()
    };
    let (mut writer, handle) = SnapshotWriter::new(selected.clone(), config);
    let pool = QueryPool::new(Arc::clone(&handle), threads);

    let stop = Arc::new(AtomicBool::new(false));
    let writer_thread = {
        let stop = Arc::clone(&stop);
        let batch = batch.clone();
        std::thread::spawn(move || {
            let window = WindowStart::new(0, 1);
            let mut publishes = 0usize;
            while publishes < SERVE_MIN_OPS || !stop.load(Ordering::Relaxed) {
                let op = if publishes.is_multiple_of(2) {
                    WriteOp::Ingest(batch.clone())
                } else {
                    WriteOp::Advance(batch.clone(), window)
                };
                writer
                    .apply(op)
                    .expect("replayed endpoints are always known stations");
                publishes += 1;
            }
            (writer, publishes)
        })
    };

    // Mixed query stream: each client thread round-trips its share of
    // the queries through the shared pool, so in-flight concurrency
    // equals the pool width and per-query latency is submit-to-answer.
    let stations = &selected.stations;
    let per_client = SERVE_QUERIES.div_ceil(threads.max(1));
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..threads.max(1))
            .map(|c| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for q in 0..per_client {
                        let s = &stations[(c + q * 7) % stations.len()];
                        let req = match q % 5 {
                            0 => Request::Station(s.id),
                            1 => Request::Nearest {
                                at: s.position,
                                k: 4,
                            },
                            2 => Request::Community(s.id),
                            3 => Request::PageRank(s.id),
                            _ => Request::Degrees {
                                directed: q.is_multiple_of(2),
                            },
                        };
                        let t = Instant::now();
                        std::hint::black_box(pool.query(req));
                        lats.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("serve client thread panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let (writer, publishes) = writer_thread.join().expect("serve writer thread panicked");

    // Snapshot-isolation contract: the snapshot being served after the
    // last publish must be bit-identical to graphs rebuilt offline from
    // the writer's final trip table — not merely approximately equal.
    let snap = handle.current();
    assert_eq!(
        snap.epoch, publishes as u64,
        "serve: published epoch count diverged from applied ops"
    );
    let net = writer.network();
    assert_eq!(snap.trip_count, net.trips.len());
    for (dir, got) in [(true, &snap.directed), (false, &snap.undirected)] {
        let want = build_dense_csr(
            dir,
            net.trips.station_ids().to_vec(),
            net.trips.src(),
            net.trips.dst(),
            net.trips.weights(),
            Some(threads),
        );
        assert_eq!(
            got, &want,
            "serve: served snapshot diverged from an offline rebuild"
        );
        assert_eq!(
            got.total_weight().to_bits(),
            want.total_weight().to_bits(),
            "serve: total weight bits diverged from the offline rebuild"
        );
    }

    latencies.sort_by(f64::total_cmp);
    let pct = |q: f64| latencies[(((latencies.len() - 1) as f64) * q).round() as usize];
    vec![ServeResult {
        name: "serve/mixed_queries".into(),
        workers: threads,
        queries: latencies.len(),
        publishes,
        qps: latencies.len() as f64 / wall_s,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }]
}

/// Time Louvain serially and in parallel on one frozen graph, panicking if
/// the partitions or modularity scores are not identical.
fn smoke_louvain(name: &str, graph: &CsrGraph, threads: usize) -> SmokeResult {
    let serial_cfg = LouvainConfig {
        threads: Some(1),
        ..Default::default()
    };
    let parallel_cfg = LouvainConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let serial = louvain_csr(graph, &serial_cfg);
    let parallel = louvain_csr(graph, &parallel_cfg);
    assert_eq!(
        serial, parallel,
        "{name}: parallel Louvain diverged from serial — determinism contract broken"
    );
    let q_serial = modularity_csr_threads(graph, &serial, Some(1));
    let q_parallel = modularity_csr_threads(graph, &parallel, Some(threads));
    assert_eq!(
        q_serial.to_bits(),
        q_parallel.to_bits(),
        "{name}: parallel modularity diverged from serial ({q_serial} vs {q_parallel})"
    );
    let serial_ms = time_min(|| {
        louvain_csr(graph, &serial_cfg);
    });
    let parallel_ms = time_min(|| {
        louvain_csr(graph, &parallel_cfg);
    });
    SmokeResult {
        name: format!("louvain/{name}"),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        serial_ms,
        parallel_ms,
    }
}

/// Time PageRank serially and in parallel on one frozen graph, panicking if
/// the scores are not bit-identical.
fn smoke_pagerank(name: &str, graph: &CsrGraph, threads: usize) -> SmokeResult {
    let serial_cfg = PageRankConfig {
        threads: Some(1),
        ..Default::default()
    };
    let parallel_cfg = PageRankConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let serial = pagerank_csr(graph, &serial_cfg);
    let parallel = pagerank_csr(graph, &parallel_cfg);
    assert_eq!(serial.len(), parallel.len());
    for (id, r) in &serial {
        assert_eq!(
            parallel[id].to_bits(),
            r.to_bits(),
            "{name}: parallel PageRank diverged from serial at node {id}"
        );
    }
    let serial_ms = time_min(|| {
        pagerank_csr(graph, &serial_cfg);
    });
    let parallel_ms = time_min(|| {
        pagerank_csr(graph, &parallel_cfg);
    });
    SmokeResult {
        name: format!("pagerank/{name}"),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        serial_ms,
        parallel_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = std::env::var("MOBY_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Medium);
    let mut out = String::from("BENCH_latest.json");
    let mut threads = par::thread_count(None).max(2);
    let mut shards: Option<usize> = None;
    let mut city_probe: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                match args.get(i + 1).and_then(|s| Scale::parse(s)) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale; expected small|medium|paper|large");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                match args.get(i + 1) {
                    Some(path) => out = path.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--threads" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(t) if t > 0 => threads = t,
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--shards" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(s) if s > 0 => shards = Some(s),
                    _ => {
                        eprintln!("--shards requires a positive integer");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--city-probe" => {
                match args.get(i + 1) {
                    Some(mode) => city_probe = Some(mode.clone()),
                    None => {
                        eprintln!("--city-probe requires a mode (inmem|spill)");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Enough shards that, at city scale, per-shard scatter buffers are
    // meaningfully smaller than the whole edge list even with every
    // worker busy.
    let shards = shards.unwrap_or_else(|| (threads * 2).max(4));

    // Child-process mode for the spill tier: run one city pipeline
    // variant, print one summary line, exit.
    if let Some(mode) = city_probe {
        run_city_probe(&mode, threads, shards);
    }

    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // The expansion algorithms (HAC candidate clustering in particular)
    // are sized for the paper's data; the city tier exercises the
    // construction path, so pipeline sections drop to medium.
    let pipeline_scale = match scale {
        Scale::Large => Scale::Medium,
        other => other,
    };

    println!("== moby-expansion bench smoke ==");
    println!(
        "scale: {}, parallel threads: {threads} (host parallelism: {host})",
        scale.name(),
    );
    if host == 1 {
        println!(
            "WARNING: single-core host — parallel timings equal serial \
             scheduling overhead; speedup columns suppressed"
        );
    }

    let started = Instant::now();
    println!(
        "running expansion pipeline (scale: {}) ...",
        pipeline_scale.name()
    );
    let outcome = run_pipeline(pipeline_scale);
    println!("pipeline finished in {:.1?}", started.elapsed());

    let mut results: Vec<SmokeResult> = Vec::new();
    let directed_trips = &outcome.selected.directed;
    results.push(smoke_pagerank("trip_graph", directed_trips, threads));
    for granularity in [TemporalGranularity::TNull, TemporalGranularity::THour] {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let name = granularity.graph_name().to_lowercase();
        results.push(smoke_pagerank(&name, &temporal.csr, threads));
        results.push(smoke_louvain(&name, &temporal.csr, threads));
    }

    println!("\ntiming graph construction (hashmap freeze vs sort-merge) ...");
    let construction = vec![
        smoke_directed_construction(&outcome, threads),
        smoke_temporal_construction(&outcome, threads),
    ];

    println!("\ntiming incremental ingestion (delta apply vs full rebuild) ...");
    let deltas = smoke_delta(&outcome, threads);

    println!(
        "\ntiming the windowed lifecycle (advance_window vs rebuild, seeded vs cold Louvain) ..."
    );
    let (window, window_louvain) = smoke_window(&outcome, threads);

    println!("\nverifying spilled vs in-memory construction (forced spill, budget 0) ...");
    assert_spill_contract(&outcome, threads);

    let (large, city_graph) = if scale == Scale::Large {
        println!("\nrunning the city tier (streaming generation + sharded builds) ...");
        let (stages, station) = smoke_large(threads, shards);
        (stages, Some(station))
    } else {
        (Vec::new(), None)
    };

    let spill = if scale == Scale::Large {
        println!(
            "\nrunning the spill tier (in-memory vs spooled+spilled city builds, \
             one child process each) ..."
        );
        smoke_spill(threads, shards)
    } else {
        Vec::new()
    };

    println!("\ntiming the hot sweep kernels (scalar vs batched, natural vs degree-permuted) ...");
    let ghour = build_temporal_graph(&outcome.selected.store, TemporalGranularity::THour);
    let mut sweeps = smoke_sweep("ghour", pipeline_scale.name(), &ghour.csr, threads);
    if let Some(station) = &city_graph {
        sweeps.extend(smoke_sweep("city", "large", station, threads));
    }

    println!(
        "\ntiming the serving layer (mixed queries vs a live writer, snapshot \
         bit-identity to an offline rebuild) ..."
    );
    let serve = smoke_serve(&outcome, threads);

    if host == 1 {
        println!(
            "\nWARNING: single-core host — speedup/ratio columns suppressed in \
             every serial-vs-parallel section (parallel numbers measure \
             scheduling overhead, not speedup); the sweep section's ratios \
             compare equal-thread kernels and stay meaningful"
        );
    }
    // One helper for every serial-vs-parallel style ratio column below:
    // a single-core host can't measure real speedups, so the value is
    // suppressed uniformly across the benches/construction/delta/window
    // sections.
    let ratio_cell = |speedup: f64| {
        if host > 1 {
            format!("{speedup:.2}x")
        } else {
            "-".to_string()
        }
    };
    println!(
        "\n{:<22} {:>8} {:>9} {:>12} {:>12} {:>9}",
        "bench", "nodes", "edges", "serial(ms)", "parallel(ms)", "speedup"
    );
    for r in &results {
        println!(
            "{:<22} {:>8} {:>9} {:>12.2} {:>12.2} {:>9}",
            r.name,
            r.nodes,
            r.edges,
            r.serial_ms,
            r.parallel_ms,
            ratio_cell(r.speedup())
        );
    }
    println!(
        "\n{:<26} {:>8} {:>9} {:>12} {:>13} {:>13} {:>12}",
        "construction", "nodes", "edges", "hashmap(ms)", "sortmerge@1", "sortmerge@N", "vs hashmap"
    );
    for r in &construction {
        println!(
            "{:<26} {:>8} {:>9} {:>12.2} {:>13.2} {:>13.2} {:>12}",
            r.name,
            r.nodes,
            r.edges,
            r.hashmap_ms,
            r.sortmerge_1t_ms,
            r.sortmerge_nt_ms,
            ratio_cell(r.speedup_vs_hashmap())
        );
    }

    println!(
        "\n{:<22} {:>9} {:>7} {:>8} {:>9} {:>10} {:>11} {:>11}",
        "delta", "base", "batch", "nodes", "edges", "apply(ms)", "rebuild(ms)", "vs rebuild"
    );
    for r in &deltas {
        println!(
            "{:<22} {:>9} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>11}",
            r.name,
            r.base_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            ratio_cell(r.speedup_vs_rebuild())
        );
    }

    println!(
        "\n{:<24} {:>8} {:>7} {:>8} {:>9} {:>10} {:>11} {:>11}",
        "window", "evicted", "batch", "nodes", "edges", "apply(ms)", "rebuild(ms)", "vs rebuild"
    );
    for r in &window {
        println!(
            "{:<24} {:>8} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>11}",
            r.name,
            r.evicted_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            ratio_cell(r.speedup_vs_rebuild())
        );
    }
    println!(
        "{:<24} {:>8} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>11}  (Q {:.4} vs {:.4})",
        "window/louvain_ghour",
        "-",
        "-",
        window_louvain.nodes,
        window_louvain.edges,
        window_louvain.seeded_ms,
        window_louvain.cold_ms,
        ratio_cell(window_louvain.speedup_vs_cold()),
        window_louvain.q_seeded,
        window_louvain.q_cold,
    );

    // Sweep-kernel table: equal-thread comparisons, so the ratio columns
    // are reported even on single-core hosts.
    println!(
        "\n{:<30} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "sweep (ns/edge)",
        "nodes",
        "edges",
        "scalar",
        "batched",
        "p-scal",
        "p-batch",
        "batch-x",
        "perm-x",
        "best-x"
    );
    for r in &sweeps {
        println!(
            "{:<30} {:>8} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.2}x {:>7.2}x {:>7.2}x",
            r.name,
            r.nodes,
            r.edges,
            r.ns_per_edge(r.scalar_natural_ms),
            r.ns_per_edge(r.batched_natural_ms),
            r.ns_per_edge(r.scalar_permuted_ms),
            r.ns_per_edge(r.batched_permuted_ms),
            r.speedup_batched(),
            r.speedup_permuted(),
            r.speedup_best(),
        );
    }

    println!(
        "\n{:<22} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "serve", "workers", "queries", "publishes", "qps", "p50(ms)", "p99(ms)"
    );
    for r in &serve {
        println!(
            "{:<22} {:>8} {:>8} {:>10} {:>10.0} {:>9.3} {:>9.3}",
            r.name, r.workers, r.queries, r.publishes, r.qps, r.p50_ms, r.p99_ms
        );
    }

    if !large.is_empty() {
        println!(
            "\n{:<26} {:>9} {:>9} {:>10} {:>10} {:>11} {:>12}",
            "city tier", "rows", "nodes", "edges", "wall(ms)", "rss(MB)", "graph(MB)"
        );
        for r in &large {
            println!(
                "{:<26} {:>9} {:>9} {:>10} {:>10.1} {:>11.1} {:>12.1}",
                r.name,
                r.rows,
                r.nodes,
                r.edges,
                r.wall_ms,
                r.peak_rss_kb as f64 / 1024.0,
                r.graph_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }

    if !spill.is_empty() {
        println!(
            "\n{:<26} {:>9} {:>9} {:>10} {:>10} {:>11} {:>11}",
            "spill tier", "rows", "nodes", "edges", "wall(ms)", "rss(MB)", "budget(MB)"
        );
        for r in &spill {
            println!(
                "{:<26} {:>9} {:>9} {:>10} {:>10.1} {:>11.1} {:>11}",
                r.name,
                r.rows,
                r.nodes,
                r.edges,
                r.wall_ms,
                r.peak_rss_kb as f64 / 1024.0,
                r.budget_mb,
            );
        }
    }

    let json = render_json(
        scale,
        pipeline_scale,
        threads,
        shards,
        &results,
        &construction,
        &deltas,
        &window,
        &window_louvain,
        &sweeps,
        &serve,
        &large,
        &spill,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out} ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "determinism checks passed; done in {:.1?}",
        started.elapsed()
    );
}

/// Hand-rolled JSON (the workspace has no serde_json; every value below is
/// a number or a plain ASCII identifier, so no string escaping is needed).
///
/// Schema `moby-bench-smoke/v8`: `v7` plus a `spill` section (the city
/// pipeline run once in memory and once through the spooled + spilled
/// out-of-core path, each in its own child process so the per-mode
/// `peak_rss_kb` is honest, with the two builds' graph fingerprints
/// asserted equal; populated at `--scale large`, empty otherwise).
/// Every section row carries the `scale` it ran at (pipeline sections
/// may run at `medium` while the `large` section runs at city scale in
/// the same artifact) and a `peak_rss_kb` process high-water mark (0 =
/// not measured).
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: Scale,
    pipeline_scale: Scale,
    threads: usize,
    shards: usize,
    results: &[SmokeResult],
    construction: &[ConstructionResult],
    deltas: &[DeltaResult],
    window: &[WindowResult],
    window_louvain: &WindowLouvain,
    sweeps: &[SweepResult],
    serve: &[ServeResult],
    large: &[LargeStage],
    spill: &[SpillStage],
) -> String {
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let ps = pipeline_scale.name();
    let rss = peak_rss_kb().unwrap_or(0);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"moby-bench-smoke/v8\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.name()));
    s.push_str(&format!("  \"parallel_threads\": {threads},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!("  \"host_parallelism\": {host},\n"));
    s.push_str(&format!("  \"peak_rss_kb\": {rss},\n"));
    if host == 1 {
        s.push_str(
            "  \"warning\": \"single-core host: parallel timings measure \
             scheduling overhead, not speedup\",\n",
        );
    }
    s.push_str(
        "  \"determinism\": \"bit-identical serial vs parallel, \
         hashmap-freeze vs sort-merge, delta-apply vs full rebuild, \
         windowed evict vs rebuild over surviving rows, \
         permuted vs natural sweeps, \
         sharded vs unsharded construction, \
         served snapshot vs offline rebuild, \
         and spilled vs in-memory construction (verified)\",\n",
    );
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"nodes\": {}, \"edges\": {}, \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.nodes,
            r.edges,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"construction\": [\n");
    for (i, r) in construction.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"nodes\": {}, \"edges\": {}, \
             \"hashmap_freeze_ms\": {:.3}, \"sortmerge_1t_ms\": {:.3}, \
             \"sortmerge_nt_ms\": {:.3}, \"speedup_vs_hashmap\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.nodes,
            r.edges,
            r.hashmap_ms,
            r.sortmerge_1t_ms,
            r.sortmerge_nt_ms,
            r.speedup_vs_hashmap(),
            if i + 1 < construction.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"delta\": [\n");
    for (i, r) in deltas.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"base_rows\": {}, \"batch_rows\": {}, \
             \"nodes\": {}, \"edges\": {}, \"apply_ms\": {:.3}, \
             \"rebuild_ms\": {:.3}, \"speedup_vs_rebuild\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.base_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild(),
            if i + 1 < deltas.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"window\": [\n");
    for r in window {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"evicted_rows\": {}, \
             \"batch_rows\": {}, \"nodes\": {}, \"edges\": {}, \"apply_ms\": {:.3}, \
             \"rebuild_ms\": {:.3}, \"speedup_vs_rebuild\": {:.3}, \
             \"peak_rss_kb\": {rss}}},\n",
            r.name,
            r.evicted_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild(),
        ));
    }
    s.push_str(&format!(
        "    {{\"name\": \"window/louvain_seeded_ghour\", \"scale\": \"{ps}\", \
         \"nodes\": {}, \"edges\": {}, \"seeded_ms\": {:.3}, \"cold_ms\": {:.3}, \
         \"speedup_vs_cold\": {:.3}, \"q_seeded\": {:.6}, \"q_cold\": {:.6}, \
         \"peak_rss_kb\": {rss}}}\n",
        window_louvain.nodes,
        window_louvain.edges,
        window_louvain.seeded_ms,
        window_louvain.cold_ms,
        window_louvain.speedup_vs_cold(),
        window_louvain.q_seeded,
        window_louvain.q_cold,
    ));
    s.push_str("  ],\n");
    s.push_str("  \"sweep\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"scalar_natural_ms\": {:.4}, \"batched_natural_ms\": {:.4}, \
             \"scalar_permuted_ms\": {:.4}, \"batched_permuted_ms\": {:.4}, \
             \"scalar_ns_per_edge\": {:.3}, \"batched_ns_per_edge\": {:.3}, \
             \"permuted_scalar_ns_per_edge\": {:.3}, \"permuted_batched_ns_per_edge\": {:.3}, \
             \"speedup_batched_vs_scalar\": {:.3}, \"speedup_permuted_vs_natural\": {:.3}, \
             \"speedup_best_vs_scalar\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.scale,
            r.nodes,
            r.edges,
            r.scalar_natural_ms,
            r.batched_natural_ms,
            r.scalar_permuted_ms,
            r.batched_permuted_ms,
            r.ns_per_edge(r.scalar_natural_ms),
            r.ns_per_edge(r.batched_natural_ms),
            r.ns_per_edge(r.scalar_permuted_ms),
            r.ns_per_edge(r.batched_permuted_ms),
            r.speedup_batched(),
            r.speedup_permuted(),
            r.speedup_best(),
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"serve\": [\n");
    for (i, r) in serve.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"workers\": {}, \
             \"queries\": {}, \"publishes\": {}, \"qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.workers,
            r.queries,
            r.publishes,
            r.qps,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < serve.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"large\": [\n");
    for (i, r) in large.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"large\", \"rows\": {}, \
             \"nodes\": {}, \"edges\": {}, \"wall_ms\": {:.3}, \
             \"peak_rss_kb\": {}, \"graph_bytes\": {}}}{}\n",
            r.name,
            r.rows,
            r.nodes,
            r.edges,
            r.wall_ms,
            r.peak_rss_kb,
            r.graph_bytes,
            if i + 1 < large.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"spill\": [\n");
    for (i, r) in spill.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"large\", \"rows\": {}, \
             \"nodes\": {}, \"edges\": {}, \"wall_ms\": {:.3}, \
             \"peak_rss_kb\": {}, \"budget_mb\": {}, \
             \"fingerprint\": \"{:016x}\"}}{}\n",
            r.name,
            r.rows,
            r.nodes,
            r.edges,
            r.wall_ms,
            r.peak_rss_kb,
            r.budget_mb,
            r.fingerprint,
            if i + 1 < spill.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
