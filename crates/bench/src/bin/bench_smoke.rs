//! CI benchmark smoke run: serial-vs-parallel timings with a JSON artifact.
//!
//! Runs the expansion pipeline on the synthetic Dublin dataset, then:
//!
//! * times the hot CSR sweeps (Louvain and PageRank) at 1 worker thread
//!   and at the parallel thread count, *verifying the results are
//!   bit-identical* (the scheduler's determinism contract — any
//!   divergence panics, failing CI);
//! * times **graph construction** both ways — the legacy hash-map
//!   builder-freeze path against the columnar sort-merge build, at 1 and
//!   N threads — verifying the two paths produce identical frozen graphs;
//! * times **incremental ingestion** — applying a small trip batch as a
//!   `CsrDelta` against rebuilding the graphs from the concatenated
//!   table, *verifying the delta output is bit-identical to the rebuild*
//!   (the PR 4 equivalence contract — any divergence panics, failing CI);
//! * times the **windowed lifecycle** — `advance_window` (evict + ingest)
//!   and `apply_window_all` against one-shot rebuilds over the surviving
//!   rows, *verifying the windowed state is bit-identical to the rebuild*
//!   (the PR 7 equivalence contract), plus seeded vs cold Louvain on the
//!   post-window `GHour` graph (seeded modularity must not fall below
//!   cold — any loss panics, failing CI);
//! * at `--scale large`, runs the **city tier**: streams ≥1 M synthetic
//!   trips over ≥10 k stations through the streaming cleaner, then builds
//!   the station and temporal graphs **sharded and unsharded**, verifying
//!   the two are bit-identical and reporting wall time per stage plus
//!   peak RSS (the pipeline sections drop to `medium` — the expansion
//!   algorithms are sized for the paper's data, not city scale);
//!
//! and writes the timings to a `BENCH_*.json` file
//! (`moby-bench-smoke/v5`: every section row carries the `scale` it ran
//! at and the process peak RSS when it finished) that the `bench-smoke`
//! CI job uploads as a workflow artifact and gates with `bench_check`.
//! This is where the repo's perf trajectory accumulates from PR 2 onward.
//!
//! ```text
//! cargo run --release -p moby-bench --bin bench_smoke -- \
//!     [--scale small|medium|paper|large] [--threads N] [--shards S] \
//!     [--out BENCH_latest.json]
//! ```
//!
//! `--scale` defaults to the `MOBY_BENCH_SCALE` environment variable and
//! then to `medium`; the large tier's trip count scales with
//! `MOBY_CITY_TRIPS` (up to 10 M).

use moby_bench::{city_config, peak_rss_kb, run_pipeline, Scale};
use moby_community::{louvain_csr, louvain_seeded, modularity_csr_threads, LouvainConfig};
use moby_core::candidate::TRIP_LABEL;
use moby_core::temporal::{
    apply_batch_all, apply_window_all, build_all_from_trips, build_all_from_trips_sharded,
    build_temporal_graph, TemporalGranularity,
};
use moby_data::clean::clean_trip_stream;
use moby_data::synth::city_trip_stream;
use moby_data::trips::WindowStart;
use moby_data::trips::{TripBatch, TripTable};
use moby_graph::metrics::{pagerank_csr, PageRankConfig};
use moby_graph::{
    aggregate, build_dense_csr, build_dense_csr_sharded, par, props, CsrDelta, CsrGraph,
    GraphStore, PropValue,
};
use std::time::Instant;

/// Timing repetitions per measurement; the minimum is reported.
const REPS: usize = 3;

struct SmokeResult {
    name: String,
    nodes: usize,
    edges: usize,
    serial_ms: f64,
    parallel_ms: f64,
}

impl SmokeResult {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Construction timings for one graph: the legacy hash-map builder-freeze
/// path against the columnar sort-merge build.
struct ConstructionResult {
    name: String,
    nodes: usize,
    edges: usize,
    hashmap_ms: f64,
    sortmerge_1t_ms: f64,
    sortmerge_nt_ms: f64,
}

impl ConstructionResult {
    fn speedup_vs_hashmap(&self) -> f64 {
        if self.sortmerge_1t_ms > 0.0 {
            self.hashmap_ms / self.sortmerge_1t_ms
        } else {
            0.0
        }
    }
}

/// Time the construction of all three temporal graphs: legacy store
/// projection (per-granularity hash-map builders + freeze) vs one
/// columnar pass over the trip table + sort-merge builds. Panics if the
/// two paths — or any two thread counts — disagree on a single bit of the
/// frozen graphs.
fn smoke_temporal_construction(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> ConstructionResult {
    let store = &outcome.selected.store;
    let trips = &outcome.selected.trips;

    let legacy: Vec<_> = TemporalGranularity::ALL
        .iter()
        .map(|&g| build_temporal_graph(store, g))
        .collect();
    let serial = build_all_from_trips(trips, None, Some(1));
    let parallel = build_all_from_trips(trips, None, Some(threads));
    for ((l, s), p) in legacy.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            l.csr, s.csr,
            "{:?}: columnar construction diverged from the builder-freeze path",
            l.granularity
        );
        assert_eq!(
            s.csr, p.csr,
            "{:?}: parallel construction diverged from serial — determinism contract broken",
            s.granularity
        );
    }

    let hashmap_ms = time_min(|| {
        for &g in &TemporalGranularity::ALL {
            std::hint::black_box(build_temporal_graph(store, g));
        }
    });
    let sortmerge_1t_ms = time_min(|| {
        std::hint::black_box(build_all_from_trips(trips, None, Some(1)));
    });
    let sortmerge_nt_ms = time_min(|| {
        std::hint::black_box(build_all_from_trips(trips, None, Some(threads)));
    });
    ConstructionResult {
        name: "construct/temporal_all".into(),
        nodes: serial.iter().map(|t| t.csr.node_count()).sum(),
        edges: serial.iter().map(|t| t.csr.edge_count()).sum(),
        hashmap_ms,
        sortmerge_1t_ms,
        sortmerge_nt_ms,
    }
}

/// Time the directed trip-graph construction both ways (store projection +
/// freeze vs seeded sort-merge build), verifying identity.
fn smoke_directed_construction(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> ConstructionResult {
    let store = &outcome.selected.store;
    let trips = &outcome.selected.trips;
    // The exact build the pipeline performs: dense trip columns over the
    // shared station-intern table, no re-interning.
    let build_sortmerge = |t: usize| {
        build_dense_csr(
            true,
            trips.station_ids().to_vec(),
            trips.src(),
            trips.dst(),
            trips.weights(),
            Some(t),
        )
    };
    let legacy = aggregate::project_directed(store, TRIP_LABEL).freeze();
    assert_eq!(
        legacy,
        build_sortmerge(1),
        "directed trip graph: columnar construction diverged from the builder-freeze path"
    );
    assert_eq!(
        build_sortmerge(1),
        build_sortmerge(threads),
        "directed trip graph: parallel construction diverged from serial"
    );
    let hashmap_ms = time_min(|| {
        std::hint::black_box(aggregate::project_directed(store, TRIP_LABEL).freeze());
    });
    let sortmerge_1t_ms = time_min(|| {
        std::hint::black_box(build_sortmerge(1));
    });
    let sortmerge_nt_ms = time_min(|| {
        std::hint::black_box(build_sortmerge(threads));
    });
    ConstructionResult {
        name: "construct/directed_trips".into(),
        nodes: legacy.node_count(),
        edges: legacy.edge_count(),
        hashmap_ms,
        sortmerge_1t_ms,
        sortmerge_nt_ms,
    }
}

/// Timings for incremental ingestion: applying a small trip batch as a
/// delta against rebuilding from the concatenated table.
struct DeltaResult {
    name: String,
    base_rows: usize,
    batch_rows: usize,
    nodes: usize,
    edges: usize,
    apply_ms: f64,
    rebuild_ms: f64,
}

impl DeltaResult {
    fn speedup_vs_rebuild(&self) -> f64 {
        if self.apply_ms > 0.0 {
            self.rebuild_ms / self.apply_ms
        } else {
            0.0
        }
    }
}

/// Split the pipeline's trip table into a base and a small trailing
/// batch, then time delta-apply against full rebuild for the directed
/// trip graph and for all three temporal graphs — panicking unless every
/// delta output is **bit-identical** to the one-shot rebuild (the PR 4
/// equivalence contract).
fn smoke_delta(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> Vec<DeltaResult> {
    let full = &outcome.selected.trips;
    let m = full.len();
    let batch_rows = (m / 64).max(1).min(m);
    let base_rows = m - batch_rows;
    let mut base = TripTable::new(full.station_ids().to_vec());
    for k in 0..base_rows {
        base.push_keyed(
            full.src()[k],
            full.dst()[k],
            full.day()[k],
            full.hour()[k],
            full.weights()[k],
        );
    }
    let mut batch = TripBatch::new();
    for k in base_rows..m {
        batch.push_keyed(
            full.station_id(full.src()[k]),
            full.station_id(full.dst()[k]),
            full.day()[k],
            full.hour()[k],
            full.weights()[k],
        );
    }

    // The appended table must reproduce the pipeline's table exactly.
    let mut appended = base.clone();
    let append_outcome = appended.append_batch(&batch);
    assert_eq!(
        &appended, full,
        "incremental append diverged from the one-pass trip table"
    );

    // --- Directed trip graph: delta vs rebuild. ---
    let build_directed = |t: &TripTable, threads: usize| {
        build_dense_csr(
            true,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        )
    };
    let base_directed = build_directed(&base, threads);
    let bs = append_outcome.batch_start;
    let apply_directed = || {
        let delta = CsrDelta::from_dense(
            true,
            appended.station_ids().to_vec(),
            append_outcome.old_to_new.clone(),
            &appended.src()[bs..],
            &appended.dst()[bs..],
            &appended.weights()[bs..],
        );
        base_directed.apply_delta(&delta, Some(threads))
    };
    let rebuilt = build_directed(&appended, threads);
    let applied = apply_directed();
    assert_eq!(
        applied, rebuilt,
        "directed trip graph: delta apply diverged from full rebuild"
    );
    assert_eq!(
        applied.total_weight().to_bits(),
        rebuilt.total_weight().to_bits(),
        "directed trip graph: total weight bits diverged"
    );
    let mut results = vec![DeltaResult {
        name: "delta/directed_trips".into(),
        base_rows,
        batch_rows,
        nodes: rebuilt.node_count(),
        edges: rebuilt.edge_count(),
        apply_ms: time_min(|| {
            std::hint::black_box(apply_directed());
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_directed(&appended, threads));
        }),
    }];

    // --- All three temporal graphs: one batch pass vs one-shot build. ---
    // `apply_batch_all` consumes its inputs (layer maps move instead of
    // cloning), so each timed invocation draws a pre-made clone from a
    // pool — the clone cost stays outside the measurement.
    let base_temporals = build_all_from_trips(&base, None, Some(threads));
    let advanced = apply_batch_all(
        base_temporals.clone(),
        &appended,
        &append_outcome,
        None,
        Some(threads),
    );
    let rebuilt_temporals = build_all_from_trips(&appended, None, Some(threads));
    for (got, want) in advanced.iter().zip(&rebuilt_temporals) {
        assert_eq!(
            got.csr, want.csr,
            "{:?}: temporal delta diverged from full rebuild",
            got.granularity
        );
        assert_eq!(
            got.layer_map, want.layer_map,
            "{:?}: temporal layer map diverged",
            got.granularity
        );
    }
    let mut pool: Vec<_> = (0..REPS).map(|_| base_temporals.clone()).collect();
    results.push(DeltaResult {
        name: "delta/temporal_all".into(),
        base_rows,
        batch_rows,
        nodes: rebuilt_temporals.iter().map(|t| t.csr.node_count()).sum(),
        edges: rebuilt_temporals.iter().map(|t| t.csr.edge_count()).sum(),
        apply_ms: time_min(|| {
            let input = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(apply_batch_all(
                input,
                &appended,
                &append_outcome,
                None,
                Some(threads),
            ));
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_all_from_trips(&appended, None, Some(threads)));
        }),
    });
    results
}

/// Timings for one windowed-lifecycle stage: incremental advance against
/// a one-shot rebuild over the surviving rows.
struct WindowResult {
    name: String,
    evicted_rows: usize,
    batch_rows: usize,
    nodes: usize,
    edges: usize,
    apply_ms: f64,
    rebuild_ms: f64,
}

impl WindowResult {
    fn speedup_vs_rebuild(&self) -> f64 {
        if self.apply_ms > 0.0 {
            self.rebuild_ms / self.apply_ms
        } else {
            0.0
        }
    }
}

/// Seeded vs cold Louvain on the post-window `GHour` graph.
struct WindowLouvain {
    nodes: usize,
    edges: usize,
    seeded_ms: f64,
    cold_ms: f64,
    q_seeded: f64,
    q_cold: f64,
}

impl WindowLouvain {
    fn speedup_vs_cold(&self) -> f64 {
        if self.seeded_ms > 0.0 {
            self.cold_ms / self.seeded_ms
        } else {
            0.0
        }
    }
}

/// Run the windowed-lifecycle section: slide the selected network's trip
/// window (evicting the first two weekdays while a small replayed batch
/// rides along), timing `advance_window` and `apply_window_all` against
/// one-shot rebuilds over the surviving table — panicking unless the
/// windowed state is **bit-identical** to the rebuilds (the PR 7
/// equivalence contract) — then seeded vs cold Louvain on the post-window
/// `GHour` graph, panicking if seeding loses modularity to the cold run.
fn smoke_window(
    outcome: &moby_core::pipeline::ExpansionOutcome,
    threads: usize,
) -> (Vec<WindowResult>, WindowLouvain) {
    let selected = &outcome.selected;
    let pre_trips = &selected.trips;
    let pre_temporals = build_all_from_trips(pre_trips, None, Some(threads));

    // The window slides by one hour — the live-deployment cadence this
    // path exists for (gentle shifts evict a sliver of the table and
    // keep the previous partition a good seed); the batch replays the
    // table's trailing rows (station set unchanged, like the delta
    // section). Heavier evictions are exercised by the differential
    // proptest suite, not timed here.
    let window = WindowStart::new(0, 1);
    let m = pre_trips.len();
    let batch_rows = (m / 64).max(1).min(m);
    let mut batch = TripBatch::new();
    for k in (m - batch_rows)..m {
        batch.push_keyed(
            pre_trips.station_id(pre_trips.src()[k]),
            pre_trips.station_id(pre_trips.dst()[k]),
            pre_trips.day()[k],
            pre_trips.hour()[k],
            pre_trips.weights()[k],
        );
    }

    let mut net = selected.clone();
    let wo = net
        .advance_window(&batch, window, Some(threads))
        .expect("batch endpoints come from the network itself");
    let evicted_rows = wo.evicted.evicted_rows();
    assert!(evicted_rows > 0, "window section: nothing expired");

    // --- Station graphs: advance_window vs rebuild over survivors. ---
    let rebuild_station = |dir: bool| {
        build_dense_csr(
            dir,
            net.trips.station_ids().to_vec(),
            net.trips.src(),
            net.trips.dst(),
            net.trips.weights(),
            Some(threads),
        )
    };
    for (dir, got) in [(true, &net.directed), (false, &net.undirected)] {
        let want = rebuild_station(dir);
        assert_eq!(
            got, &want,
            "window: advance_window diverged from a rebuild over the surviving rows"
        );
        assert_eq!(
            got.total_weight().to_bits(),
            want.total_weight().to_bits(),
            "window: total weight bits diverged from the rebuild"
        );
    }
    // The rebuild baseline reconstructs every piece of state the advance
    // maintained in place: the surviving trip table, both frozen trip
    // graphs, and the full-fidelity store relationships with their
    // temporal props. (Table III is excluded — the advance pays that
    // extra cost on top.)
    let rebuild_station_state = || {
        let mut t = TripTable::new(net.trips.station_ids().to_vec());
        for k in 0..net.trips.len() {
            t.push_keyed(
                net.trips.src()[k],
                net.trips.dst()[k],
                net.trips.day()[k],
                net.trips.hour()[k],
                net.trips.weights()[k],
            );
        }
        let d = build_dense_csr(
            true,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        );
        let u = build_dense_csr(
            false,
            t.station_ids().to_vec(),
            t.src(),
            t.dst(),
            t.weights(),
            Some(threads),
        );
        let mut store = GraphStore::new();
        for &id in t.station_ids() {
            store.add_node(id, "Station", props::<[(&str, PropValue); 0], &str>([]));
        }
        for k in 0..t.len() {
            store
                .add_edge(
                    t.station_id(t.src()[k]),
                    t.station_id(t.dst()[k]),
                    TRIP_LABEL,
                    props([
                        ("day", PropValue::from(i64::from(t.day()[k]))),
                        ("hour", PropValue::from(i64::from(t.hour()[k]))),
                    ]),
                )
                .expect("stations added above");
        }
        (t, d, u, store)
    };
    let mut pool: Vec<_> = (0..REPS).map(|_| selected.clone()).collect();
    let mut results = vec![WindowResult {
        name: "window/advance_window".into(),
        evicted_rows,
        batch_rows,
        nodes: net.directed.node_count(),
        edges: net.directed.edge_count() + net.undirected.edge_count(),
        apply_ms: time_min(|| {
            let mut n = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(n.advance_window(&batch, window, Some(threads)).unwrap());
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(rebuild_station_state());
        }),
    }];

    // --- Temporal graphs: apply_window_all vs rebuild over survivors. ---
    let advanced = apply_window_all(pre_temporals.clone(), &net.trips, &wo, None, Some(threads));
    let rebuilt = build_all_from_trips(&net.trips, None, Some(threads));
    for (got, want) in advanced.iter().zip(&rebuilt) {
        assert_eq!(
            got.csr, want.csr,
            "{:?}: windowed temporal advance diverged from full rebuild",
            got.granularity
        );
        assert_eq!(
            got.layer_map, want.layer_map,
            "{:?}: windowed temporal layer map diverged",
            got.granularity
        );
    }
    let mut pool: Vec<_> = (0..REPS).map(|_| pre_temporals.clone()).collect();
    results.push(WindowResult {
        name: "window/temporal_all".into(),
        evicted_rows,
        batch_rows,
        nodes: rebuilt.iter().map(|t| t.csr.node_count()).sum(),
        edges: rebuilt.iter().map(|t| t.csr.edge_count()).sum(),
        apply_ms: time_min(|| {
            let input = pool.pop().expect("one pre-made clone per rep");
            std::hint::black_box(apply_window_all(
                input,
                &net.trips,
                &wo,
                None,
                Some(threads),
            ));
        }),
        rebuild_ms: time_min(|| {
            std::hint::black_box(build_all_from_trips(&net.trips, None, Some(threads)));
        }),
    });

    // --- Seeded vs cold Louvain on the post-window GHour graph. ---
    let cfg = LouvainConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let pre_ghour = &pre_temporals[2].csr;
    let post_ghour = &rebuilt[2].csr;
    let seed = louvain_csr(pre_ghour, &cfg);
    let seeded = louvain_seeded(post_ghour, &seed, &cfg);
    let cold = louvain_csr(post_ghour, &cfg);
    let q_seeded = modularity_csr_threads(post_ghour, &seeded, Some(threads));
    let q_cold = modularity_csr_threads(post_ghour, &cold, Some(threads));
    // Two gates. Hard: the seeded run must reach the cold run's quality
    // to within 0.1% relative — greedy local moving from different starts
    // can settle in marginally different basins, so exact dominance over
    // cold is not a theorem, but anything beyond basin noise means the
    // seeding collapsed. (The guaranteed floor — seeded Q never below the
    // seed partition's Q on the new graph — is enforced by the
    // `moby-community` and `moby-core` test suites.)
    assert!(
        q_seeded >= q_cold - 1e-3 * q_cold.abs().max(1e-3),
        "window: seeded Louvain collapsed below the cold run \
         ({q_seeded} vs {q_cold})"
    );
    let louvain = WindowLouvain {
        nodes: post_ghour.node_count(),
        edges: post_ghour.edge_count(),
        seeded_ms: time_min(|| {
            std::hint::black_box(louvain_seeded(post_ghour, &seed, &cfg));
        }),
        cold_ms: time_min(|| {
            std::hint::black_box(louvain_csr(post_ghour, &cfg));
        }),
        q_seeded,
        q_cold,
    };

    // --- The end-to-end comparison the window exists for: advancing all
    // state incrementally vs rebuilding everything and re-detecting cold.
    let apply_total = results[0].apply_ms + results[1].apply_ms + louvain.seeded_ms;
    let rebuild_total = results[0].rebuild_ms + results[1].rebuild_ms + louvain.cold_ms;
    results.push(WindowResult {
        name: "window/total".into(),
        evicted_rows,
        batch_rows,
        nodes: net.directed.node_count(),
        edges: net.directed.edge_count(),
        apply_ms: apply_total,
        rebuild_ms: rebuild_total,
    });
    (results, louvain)
}

/// One timed stage of the city-scale (`large`) tier.
struct LargeStage {
    name: String,
    /// Rows flowing through the stage (trips for generation/cleaning,
    /// 0 where the stage consumes an already-built table).
    rows: usize,
    nodes: usize,
    edges: usize,
    wall_ms: f64,
    /// Process peak RSS (kB) sampled when the stage finished; 0 means
    /// "not measured" (non-Linux hosts).
    peak_rss_kb: u64,
    /// Graph heap footprint the stage produced, in bytes (0 for
    /// non-graph stages).
    graph_bytes: usize,
}

/// Run the city tier: stream-generate and clean ≥1 M trips over ≥10 k
/// stations, then build the station graph **unsharded and sharded**
/// (panicking unless the two frozen graphs are bit-identical — the shard
/// independence contract) and the three temporal graphs through the
/// sharded path. Stages run once, not `REPS` times — at 1 M+ rows a
/// single pass is already well above timer noise, and the tier's point
/// is the memory/scale story, not microsecond-stable medians.
fn smoke_large(threads: usize, shards: usize) -> Vec<LargeStage> {
    let cfg = city_config();
    let mut stages = Vec::new();

    println!(
        "city tier: {} stations, {} zones, {} trips, {shards} shards ...",
        cfg.stations, cfg.zones, cfg.trips
    );
    let start = Instant::now();
    let stations = cfg.station_ids();
    let (table, report) = clean_trip_stream(stations, cfg.trips as usize, city_trip_stream(&cfg));
    stages.push(LargeStage {
        name: "large/generate_clean".into(),
        rows: report.rows_seen,
        nodes: table.station_ids().len(),
        edges: 0,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
        graph_bytes: 0,
    });
    println!(
        "  cleaned {} rows ({} dropped: unknown endpoint) in {:.1?}",
        report.rows_kept,
        report.unknown_endpoint,
        start.elapsed()
    );

    let build_station = |shards: Option<usize>| {
        build_dense_csr_sharded(
            false,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            shards,
            Some(threads),
        )
    };
    let start = Instant::now();
    let unsharded = build_station(Some(1));
    stages.push(LargeStage {
        name: "large/build_unsharded".into(),
        rows: table.len(),
        nodes: unsharded.node_count(),
        edges: unsharded.edge_count(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
        graph_bytes: unsharded.heap_bytes(),
    });

    let start = Instant::now();
    let sharded = build_station(Some(shards));
    stages.push(LargeStage {
        name: format!("large/build_sharded_{shards}"),
        rows: table.len(),
        nodes: sharded.node_count(),
        edges: sharded.edge_count(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
        graph_bytes: sharded.heap_bytes(),
    });
    assert_eq!(
        sharded, unsharded,
        "city tier: sharded station build diverged from unsharded — \
         shard independence contract broken"
    );
    assert_eq!(
        sharded.total_weight().to_bits(),
        unsharded.total_weight().to_bits(),
        "city tier: total weight bits diverged between shard counts"
    );

    let start = Instant::now();
    let temporals =
        build_all_from_trips_sharded(&table, Some(&sharded), Some(shards), Some(threads));
    stages.push(LargeStage {
        name: "large/temporal_sharded".into(),
        rows: table.len(),
        nodes: temporals.iter().map(|t| t.csr.node_count()).sum(),
        edges: temporals.iter().map(|t| t.csr.edge_count()).sum(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
        graph_bytes: temporals.iter().map(|t| t.csr.heap_bytes()).sum(),
    });
    stages
}

/// Time Louvain serially and in parallel on one frozen graph, panicking if
/// the partitions or modularity scores are not identical.
fn smoke_louvain(name: &str, graph: &CsrGraph, threads: usize) -> SmokeResult {
    let serial_cfg = LouvainConfig {
        threads: Some(1),
        ..Default::default()
    };
    let parallel_cfg = LouvainConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let serial = louvain_csr(graph, &serial_cfg);
    let parallel = louvain_csr(graph, &parallel_cfg);
    assert_eq!(
        serial, parallel,
        "{name}: parallel Louvain diverged from serial — determinism contract broken"
    );
    let q_serial = modularity_csr_threads(graph, &serial, Some(1));
    let q_parallel = modularity_csr_threads(graph, &parallel, Some(threads));
    assert_eq!(
        q_serial.to_bits(),
        q_parallel.to_bits(),
        "{name}: parallel modularity diverged from serial ({q_serial} vs {q_parallel})"
    );
    let serial_ms = time_min(|| {
        louvain_csr(graph, &serial_cfg);
    });
    let parallel_ms = time_min(|| {
        louvain_csr(graph, &parallel_cfg);
    });
    SmokeResult {
        name: format!("louvain/{name}"),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        serial_ms,
        parallel_ms,
    }
}

/// Time PageRank serially and in parallel on one frozen graph, panicking if
/// the scores are not bit-identical.
fn smoke_pagerank(name: &str, graph: &CsrGraph, threads: usize) -> SmokeResult {
    let serial_cfg = PageRankConfig {
        threads: Some(1),
        ..Default::default()
    };
    let parallel_cfg = PageRankConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let serial = pagerank_csr(graph, &serial_cfg);
    let parallel = pagerank_csr(graph, &parallel_cfg);
    assert_eq!(serial.len(), parallel.len());
    for (id, r) in &serial {
        assert_eq!(
            parallel[id].to_bits(),
            r.to_bits(),
            "{name}: parallel PageRank diverged from serial at node {id}"
        );
    }
    let serial_ms = time_min(|| {
        pagerank_csr(graph, &serial_cfg);
    });
    let parallel_ms = time_min(|| {
        pagerank_csr(graph, &parallel_cfg);
    });
    SmokeResult {
        name: format!("pagerank/{name}"),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        serial_ms,
        parallel_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = std::env::var("MOBY_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Medium);
    let mut out = String::from("BENCH_latest.json");
    let mut threads = par::thread_count(None).max(2);
    let mut shards: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                match args.get(i + 1).and_then(|s| Scale::parse(s)) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale; expected small|medium|paper|large");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                match args.get(i + 1) {
                    Some(path) => out = path.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--threads" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(t) if t > 0 => threads = t,
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--shards" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(s) if s > 0 => shards = Some(s),
                    _ => {
                        eprintln!("--shards requires a positive integer");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Enough shards that, at city scale, per-shard scatter buffers are
    // meaningfully smaller than the whole edge list even with every
    // worker busy.
    let shards = shards.unwrap_or_else(|| (threads * 2).max(4));

    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // The expansion algorithms (HAC candidate clustering in particular)
    // are sized for the paper's data; the city tier exercises the
    // construction path, so pipeline sections drop to medium.
    let pipeline_scale = match scale {
        Scale::Large => Scale::Medium,
        other => other,
    };

    println!("== moby-expansion bench smoke ==");
    println!(
        "scale: {}, parallel threads: {threads} (host parallelism: {host})",
        scale.name(),
    );
    if host == 1 {
        println!(
            "WARNING: single-core host — parallel timings equal serial \
             scheduling overhead; speedup columns suppressed"
        );
    }

    let started = Instant::now();
    println!(
        "running expansion pipeline (scale: {}) ...",
        pipeline_scale.name()
    );
    let outcome = run_pipeline(pipeline_scale);
    println!("pipeline finished in {:.1?}", started.elapsed());

    let mut results: Vec<SmokeResult> = Vec::new();
    let directed_trips = &outcome.selected.directed;
    results.push(smoke_pagerank("trip_graph", directed_trips, threads));
    for granularity in [TemporalGranularity::TNull, TemporalGranularity::THour] {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let name = granularity.graph_name().to_lowercase();
        results.push(smoke_pagerank(&name, &temporal.csr, threads));
        results.push(smoke_louvain(&name, &temporal.csr, threads));
    }

    println!("\ntiming graph construction (hashmap freeze vs sort-merge) ...");
    let construction = vec![
        smoke_directed_construction(&outcome, threads),
        smoke_temporal_construction(&outcome, threads),
    ];

    println!("\ntiming incremental ingestion (delta apply vs full rebuild) ...");
    let deltas = smoke_delta(&outcome, threads);

    println!(
        "\ntiming the windowed lifecycle (advance_window vs rebuild, seeded vs cold Louvain) ..."
    );
    let (window, window_louvain) = smoke_window(&outcome, threads);

    let large = if scale == Scale::Large {
        println!("\nrunning the city tier (streaming generation + sharded builds) ...");
        smoke_large(threads, shards)
    } else {
        Vec::new()
    };

    if host == 1 {
        println!(
            "\nWARNING: single-core host — speedup columns suppressed \
             (parallel numbers measure scheduling overhead, not speedup)"
        );
    }
    if host > 1 {
        println!(
            "\n{:<22} {:>8} {:>9} {:>12} {:>12} {:>9}",
            "bench", "nodes", "edges", "serial(ms)", "parallel(ms)", "speedup"
        );
    } else {
        println!(
            "\n{:<22} {:>8} {:>9} {:>12} {:>12}",
            "bench", "nodes", "edges", "serial(ms)", "parallel(ms)"
        );
    }
    for r in &results {
        if host > 1 {
            println!(
                "{:<22} {:>8} {:>9} {:>12.2} {:>12.2} {:>8.2}x",
                r.name,
                r.nodes,
                r.edges,
                r.serial_ms,
                r.parallel_ms,
                r.speedup()
            );
        } else {
            println!(
                "{:<22} {:>8} {:>9} {:>12.2} {:>12.2}",
                r.name, r.nodes, r.edges, r.serial_ms, r.parallel_ms
            );
        }
    }
    println!(
        "\n{:<26} {:>8} {:>9} {:>12} {:>13} {:>13} {:>12}",
        "construction", "nodes", "edges", "hashmap(ms)", "sortmerge@1", "sortmerge@N", "vs hashmap"
    );
    for r in &construction {
        println!(
            "{:<26} {:>8} {:>9} {:>12.2} {:>13.2} {:>13.2} {:>11.2}x",
            r.name,
            r.nodes,
            r.edges,
            r.hashmap_ms,
            r.sortmerge_1t_ms,
            r.sortmerge_nt_ms,
            r.speedup_vs_hashmap()
        );
    }

    println!(
        "\n{:<22} {:>9} {:>7} {:>8} {:>9} {:>10} {:>11} {:>11}",
        "delta", "base", "batch", "nodes", "edges", "apply(ms)", "rebuild(ms)", "vs rebuild"
    );
    for r in &deltas {
        println!(
            "{:<22} {:>9} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>10.2}x",
            r.name,
            r.base_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild()
        );
    }

    println!(
        "\n{:<24} {:>8} {:>7} {:>8} {:>9} {:>10} {:>11} {:>11}",
        "window", "evicted", "batch", "nodes", "edges", "apply(ms)", "rebuild(ms)", "vs rebuild"
    );
    for r in &window {
        println!(
            "{:<24} {:>8} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>10.2}x",
            r.name,
            r.evicted_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild()
        );
    }
    println!(
        "{:<24} {:>8} {:>7} {:>8} {:>9} {:>10.2} {:>11.2} {:>10.2}x  (Q {:.4} vs {:.4})",
        "window/louvain_ghour",
        "-",
        "-",
        window_louvain.nodes,
        window_louvain.edges,
        window_louvain.seeded_ms,
        window_louvain.cold_ms,
        window_louvain.speedup_vs_cold(),
        window_louvain.q_seeded,
        window_louvain.q_cold,
    );

    if !large.is_empty() {
        println!(
            "\n{:<26} {:>9} {:>9} {:>10} {:>10} {:>11} {:>12}",
            "city tier", "rows", "nodes", "edges", "wall(ms)", "rss(MB)", "graph(MB)"
        );
        for r in &large {
            println!(
                "{:<26} {:>9} {:>9} {:>10} {:>10.1} {:>11.1} {:>12.1}",
                r.name,
                r.rows,
                r.nodes,
                r.edges,
                r.wall_ms,
                r.peak_rss_kb as f64 / 1024.0,
                r.graph_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }

    let json = render_json(
        scale,
        pipeline_scale,
        threads,
        shards,
        &results,
        &construction,
        &deltas,
        &window,
        &window_louvain,
        &large,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out} ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "determinism checks passed; done in {:.1?}",
        started.elapsed()
    );
}

/// Hand-rolled JSON (the workspace has no serde_json; every value below is
/// a number or a plain ASCII identifier, so no string escaping is needed).
///
/// Schema `moby-bench-smoke/v5`: `v4` plus a `window` section (windowed
/// eviction vs rebuild-from-window, seeded vs cold Louvain). Every
/// section row carries the `scale` it ran at (pipeline sections may run
/// at `medium` while the `large` section runs at city scale in the same
/// artifact) and a `peak_rss_kb` process high-water mark (0 = not
/// measured).
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: Scale,
    pipeline_scale: Scale,
    threads: usize,
    shards: usize,
    results: &[SmokeResult],
    construction: &[ConstructionResult],
    deltas: &[DeltaResult],
    window: &[WindowResult],
    window_louvain: &WindowLouvain,
    large: &[LargeStage],
) -> String {
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let ps = pipeline_scale.name();
    let rss = peak_rss_kb();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"moby-bench-smoke/v5\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.name()));
    s.push_str(&format!("  \"parallel_threads\": {threads},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!("  \"host_parallelism\": {host},\n"));
    s.push_str(&format!("  \"peak_rss_kb\": {rss},\n"));
    if host == 1 {
        s.push_str(
            "  \"warning\": \"single-core host: parallel timings measure \
             scheduling overhead, not speedup\",\n",
        );
    }
    s.push_str(
        "  \"determinism\": \"bit-identical serial vs parallel, \
         hashmap-freeze vs sort-merge, delta-apply vs full rebuild, \
         windowed evict vs rebuild over surviving rows, \
         and sharded vs unsharded construction (verified)\",\n",
    );
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"nodes\": {}, \"edges\": {}, \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.nodes,
            r.edges,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"construction\": [\n");
    for (i, r) in construction.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"nodes\": {}, \"edges\": {}, \
             \"hashmap_freeze_ms\": {:.3}, \"sortmerge_1t_ms\": {:.3}, \
             \"sortmerge_nt_ms\": {:.3}, \"speedup_vs_hashmap\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.nodes,
            r.edges,
            r.hashmap_ms,
            r.sortmerge_1t_ms,
            r.sortmerge_nt_ms,
            r.speedup_vs_hashmap(),
            if i + 1 < construction.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"delta\": [\n");
    for (i, r) in deltas.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"base_rows\": {}, \"batch_rows\": {}, \
             \"nodes\": {}, \"edges\": {}, \"apply_ms\": {:.3}, \
             \"rebuild_ms\": {:.3}, \"speedup_vs_rebuild\": {:.3}, \
             \"peak_rss_kb\": {rss}}}{}\n",
            r.name,
            r.base_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild(),
            if i + 1 < deltas.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"window\": [\n");
    for r in window {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"{ps}\", \"evicted_rows\": {}, \
             \"batch_rows\": {}, \"nodes\": {}, \"edges\": {}, \"apply_ms\": {:.3}, \
             \"rebuild_ms\": {:.3}, \"speedup_vs_rebuild\": {:.3}, \
             \"peak_rss_kb\": {rss}}},\n",
            r.name,
            r.evicted_rows,
            r.batch_rows,
            r.nodes,
            r.edges,
            r.apply_ms,
            r.rebuild_ms,
            r.speedup_vs_rebuild(),
        ));
    }
    s.push_str(&format!(
        "    {{\"name\": \"window/louvain_seeded_ghour\", \"scale\": \"{ps}\", \
         \"nodes\": {}, \"edges\": {}, \"seeded_ms\": {:.3}, \"cold_ms\": {:.3}, \
         \"speedup_vs_cold\": {:.3}, \"q_seeded\": {:.6}, \"q_cold\": {:.6}, \
         \"peak_rss_kb\": {rss}}}\n",
        window_louvain.nodes,
        window_louvain.edges,
        window_louvain.seeded_ms,
        window_louvain.cold_ms,
        window_louvain.speedup_vs_cold(),
        window_louvain.q_seeded,
        window_louvain.q_cold,
    ));
    s.push_str("  ],\n");
    s.push_str("  \"large\": [\n");
    for (i, r) in large.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": \"large\", \"rows\": {}, \
             \"nodes\": {}, \"edges\": {}, \"wall_ms\": {:.3}, \
             \"peak_rss_kb\": {}, \"graph_bytes\": {}}}{}\n",
            r.name,
            r.rows,
            r.nodes,
            r.edges,
            r.wall_ms,
            r.peak_rss_kb,
            r.graph_bytes,
            if i + 1 < large.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
