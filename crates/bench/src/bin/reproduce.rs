//! Experiment-reproduction harness.
//!
//! Regenerates every table and figure of the paper's evaluation section from
//! the synthetic dataset, plus the ablation studies listed in DESIGN.md.
//!
//! ```text
//! cargo run --release -p moby-bench --bin reproduce -- [--scale small|medium|paper] [targets...]
//! ```
//!
//! Targets: `table1 table2 table3 table4 table5 table6 fig1 fig2 fig3 fig4
//! fig5 fig6 fig7 ablate-linkage ablate-boundary ablate-secondary
//! ablate-detector all` (default `all`). Figure artefacts (GeoJSON / CSV)
//! are written to `reproduction/`.

use moby_bench::{dataset, run_pipeline, Scale};
use moby_cluster::linkage::Linkage;
use moby_community::Partition;
use moby_core::candidate::build_candidate_network;
use moby_core::detect::{detect_communities, DetectConfig, Detector};
use moby_core::pipeline::{ExpansionOutcome, ExpansionPipeline, PipelineConfig};
use moby_core::report::{
    daily_profile, edge_weight_percentile, hourly_profile, network_geojson, profile_csv,
    render_community_table, render_table1, render_table2, render_table3,
};
use moby_core::selection::select_stations;
use moby_core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_core::validate::validate_default;
use moby_core::ExpansionConfig;
use moby_data::clean::clean_dataset;
use moby_data::timeparse::Weekday;
use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::time::Instant;

const OUTPUT_DIR: &str = "reproduction";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" {
            if let Some(s) = args.get(i + 1).and_then(|s| Scale::parse(s)) {
                scale = s;
            } else {
                eprintln!("unknown scale; expected small|medium|paper");
                std::process::exit(2);
            }
            i += 2;
        } else {
            targets.push(args[i].to_ascii_lowercase());
            i += 1;
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        // Keep any explicitly requested ablations alongside the default set.
        let mut expanded: Vec<String> = vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "fig1", "fig2", "fig3",
            "fig4", "fig5", "fig6", "fig7", "validate", "baseline",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        expanded.extend(targets.iter().filter(|t| t.starts_with("ablate-")).cloned());
        targets = expanded;
    }

    println!("== moby-expansion reproduction harness ==");
    println!("scale: {}", scale.name());
    let started = Instant::now();
    println!("running expansion pipeline ...");
    let outcome = run_pipeline(scale);
    println!(
        "pipeline finished in {:.1?} ({} stations -> {} stations, {} trips)\n",
        started.elapsed(),
        outcome.dataset.stations.len(),
        outcome.total_station_count(),
        outcome.dataset.rentals.len()
    );
    fs::create_dir_all(OUTPUT_DIR).ok();

    let ablations: Vec<&str> = targets
        .iter()
        .filter(|t| t.starts_with("ablate-"))
        .map(|s| s.as_str())
        .collect();

    for target in &targets {
        match target.as_str() {
            "table1" => println!("{}", render_table1(&outcome.overview)),
            "table2" => println!("{}", render_table2(&outcome.candidate.summary)),
            "table3" => println!("{}", render_table3(&outcome.selected.table)),
            "table4" => println!(
                "{}",
                render_community_table("TABLE IV — GBasic", &outcome.communities.basic.table)
            ),
            "table5" => println!(
                "{}",
                render_community_table("TABLE V — GDay", &outcome.communities.day.table)
            ),
            "table6" => println!(
                "{}",
                render_community_table("TABLE VI — GHour", &outcome.communities.hour.table)
            ),
            "fig1" => figure_candidate_graph(&outcome),
            "fig2" => figure_selected_graph(&outcome),
            "fig3" => figure_community_map(&outcome, "fig3_gbasic_communities", None),
            "fig4" => figure_community_map(&outcome, "fig4_gday_communities", Some("day")),
            "fig5" => figure_daily_profile(&outcome),
            "fig6" => figure_community_map(&outcome, "fig6_ghour_communities", Some("hour")),
            "fig7" => figure_hourly_profile(&outcome),
            "validate" => {
                let v = validate_default(&outcome);
                println!("VALIDATION\n{v:#?}\npasses: {}\n", v.passes());
            }
            "baseline" => match moby_core::baseline::compare_with_baseline(&outcome) {
                Some(cmp) => println!("{}", cmp.render()),
                None => eprintln!("baseline comparison unavailable (degenerate outcome)"),
            },
            t if t.starts_with("ablate-") => { /* handled below */ }
            other => eprintln!("unknown target '{other}' (skipped)"),
        }
    }

    for ablation in ablations {
        match ablation {
            "ablate-linkage" => ablate_linkage(scale),
            "ablate-boundary" => ablate_boundary(scale),
            "ablate-secondary" => ablate_secondary(scale),
            "ablate-detector" => ablate_detector(&outcome),
            other => eprintln!("unknown ablation '{other}' (skipped)"),
        }
    }

    println!(
        "done in {:.1?}; figure artefacts in ./{OUTPUT_DIR}/",
        started.elapsed()
    );
}

fn write_artifact(name: &str, content: &str) {
    let path = Path::new(OUTPUT_DIR).join(name);
    match fs::write(&path, content) {
        Ok(()) => println!("  wrote {} ({} bytes)\n", path.display(), content.len()),
        Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
    }
}

/// Fig. 1 — the candidate graph generated by HAC (all nodes, all edges).
fn figure_candidate_graph(outcome: &ExpansionOutcome) {
    println!("FIGURE 1 — candidate graph (HAC), GeoJSON export");
    let positions = outcome.candidate.positions();
    let names: HashMap<_, _> = outcome
        .candidate
        .nodes
        .iter()
        .map(|n| (n.id, n.name.clone()))
        .collect();
    let fixed: std::collections::HashSet<_> = outcome.candidate.fixed_ids().into_iter().collect();
    // The candidate graph stays on the builder representation; freeze once
    // for the frozen-graph report API.
    let candidate_csr = outcome.candidate.undirected.freeze();
    let geojson = network_geojson(
        &candidate_csr,
        &positions,
        &names,
        &|id| fixed.contains(&id),
        None,
        0.0,
    );
    println!(
        "  {} nodes, {} undirected edges",
        outcome.candidate.summary.nodes, outcome.candidate.summary.undirected_edges
    );
    write_artifact("fig1_candidate_graph.geojson", &geojson);
}

/// Fig. 2 — the selected graph; only the top-1% heaviest edges are drawn.
fn figure_selected_graph(outcome: &ExpansionOutcome) {
    println!("FIGURE 2 — selected graph (top 1% of edge weights), GeoJSON export");
    let positions = outcome.selected.positions();
    let names: HashMap<_, _> = outcome
        .selected
        .stations
        .iter()
        .map(|s| (s.id, s.name.clone()))
        .collect();
    let fixed = outcome.selected.fixed_ids();
    let threshold = edge_weight_percentile(&outcome.selected.undirected, 99.0);
    println!("  edge-weight threshold at the 99th percentile: {threshold}");
    let geojson = network_geojson(
        &outcome.selected.undirected,
        &positions,
        &names,
        &|id| fixed.contains(&id),
        None,
        threshold,
    );
    write_artifact("fig2_selected_graph.geojson", &geojson);
}

/// Figs. 3 / 4 / 6 — station maps coloured by community assignment.
fn figure_community_map(outcome: &ExpansionOutcome, name: &str, granularity: Option<&str>) {
    let (label, partition): (&str, &Partition) = match granularity {
        None => ("GBasic", &outcome.communities.basic.station_partition),
        Some("day") => ("GDay", &outcome.communities.day.station_partition),
        _ => ("GHour", &outcome.communities.hour.station_partition),
    };
    println!("FIGURE ({name}) — station map coloured by {label} community");
    let positions = outcome.selected.positions();
    let names: HashMap<_, _> = outcome
        .selected
        .stations
        .iter()
        .map(|s| (s.id, s.name.clone()))
        .collect();
    let fixed = outcome.selected.fixed_ids();
    let geojson = network_geojson(
        &outcome.selected.undirected,
        &positions,
        &names,
        &|id| fixed.contains(&id),
        Some(partition),
        f64::INFINITY, // nodes only: community colouring is the point
    );
    write_artifact(&format!("{name}.geojson"), &geojson);
}

/// Fig. 5 — daily travel patterns per GDay community.
fn figure_daily_profile(outcome: &ExpansionOutcome) {
    println!("FIGURE 5 — daily travel pattern per GDay community");
    let profile = daily_profile(
        &outcome.selected.store,
        &outcome.communities.day.station_partition,
    );
    let labels: Vec<&str> = Weekday::ALL.iter().map(|d| d.abbrev()).collect();
    let csv = profile_csv(&profile, &labels);
    println!("{csv}");
    write_artifact("fig5_daily_profile.csv", &csv);
}

/// Fig. 7 — hourly travel patterns per GHour community.
fn figure_hourly_profile(outcome: &ExpansionOutcome) {
    println!("FIGURE 7 — hourly travel pattern per GHour community");
    let profile = hourly_profile(
        &outcome.selected.store,
        &outcome.communities.hour.station_partition,
    );
    let labels: Vec<String> = (0..24).map(|h| format!("{h:02}")).collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let csv = profile_csv(&profile, &label_refs);
    println!("{csv}");
    write_artifact("fig7_hourly_profile.csv", &csv);
}

/// Ablation A1: linkage criterion.
fn ablate_linkage(scale: Scale) {
    println!("ABLATION A1 — HAC linkage criterion");
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "linkage", "#candidates", "#selected", "mean diameter"
    );
    let raw = dataset(scale);
    let cleaned = clean_dataset(&raw).dataset;
    for linkage in [Linkage::Complete, Linkage::Average, Linkage::Single] {
        let cfg = ExpansionConfig {
            linkage,
            ..ExpansionConfig::default()
        };
        let network = build_candidate_network(&cleaned, &cfg).expect("network builds");
        let selection = select_stations(&network, &cfg).expect("selection runs");
        let diameters: Vec<f64> = network
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                moby_core::candidate::NodeKind::Candidate { diameter_m, .. } => Some(diameter_m),
                _ => None,
            })
            .collect();
        let mean_diameter = if diameters.is_empty() {
            0.0
        } else {
            diameters.iter().sum::<f64>() / diameters.len() as f64
        };
        println!(
            "{:<10} {:>12} {:>12} {:>14.1}",
            linkage.name(),
            network.candidate_ids().len(),
            selection.selected.len(),
            mean_diameter
        );
    }
    println!();
}

/// Ablation A2: cluster-boundary threshold sweep.
fn ablate_boundary(scale: Scale) {
    println!("ABLATION A2 — cluster-boundary threshold (Rule 1)");
    println!(
        "{:<12} {:>12} {:>12}",
        "boundary (m)", "#candidates", "#selected"
    );
    let raw = dataset(scale);
    let cleaned = clean_dataset(&raw).dataset;
    for boundary in [50.0, 100.0, 150.0, 200.0] {
        let cfg = ExpansionConfig {
            cluster_boundary_m: boundary,
            ..ExpansionConfig::default()
        };
        let network = build_candidate_network(&cleaned, &cfg).expect("network builds");
        let selection = select_stations(&network, &cfg).expect("selection runs");
        println!(
            "{:<12} {:>12} {:>12}",
            boundary,
            network.candidate_ids().len(),
            selection.selected.len()
        );
    }
    println!();
}

/// Ablation A3: secondary-distance sweep.
fn ablate_secondary(scale: Scale) {
    println!("ABLATION A3 — secondary distance (Rule 4)");
    println!("{:<14} {:>12}", "distance (m)", "#selected");
    let raw = dataset(scale);
    for distance in [150.0, 250.0, 400.0] {
        let cfg = PipelineConfig {
            expansion: ExpansionConfig {
                secondary_distance_m: distance,
                ..ExpansionConfig::default()
            },
            detect: DetectConfig::default(),
            build_shards: None,
            ..PipelineConfig::default()
        };
        let outcome = ExpansionPipeline::new(cfg)
            .run(&raw)
            .expect("pipeline runs");
        println!("{:<14} {:>12}", distance, outcome.new_station_count());
    }
    println!();
}

/// Ablation A4: community detector (the paper's stated future work).
fn ablate_detector(outcome: &ExpansionOutcome) {
    println!("ABLATION A4 — community detector (Louvain vs label propagation)");
    println!(
        "{:<10} {:<18} {:>12} {:>12} {:>16}",
        "graph", "detector", "#communities", "modularity", "self-contained"
    );
    let old_ids = outcome.selected.fixed_ids();
    // The pipeline froze the directed trip graph once; both detectors and
    // all granularities share it.
    let directed_trips = &outcome.selected.directed;
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        for (name, detector) in [
            ("louvain", Detector::Louvain),
            ("label-propagation", Detector::LabelPropagation),
        ] {
            let detection = detect_communities(
                &temporal,
                directed_trips,
                &old_ids,
                &DetectConfig {
                    detector,
                    seed: Some(1),
                    ..Default::default()
                },
            );
            println!(
                "{:<10} {:<18} {:>12} {:>12.3} {:>15.1}%",
                granularity.graph_name(),
                name,
                detection.community_count(),
                detection.modularity,
                detection.table.self_contained_share() * 100.0
            );
        }
    }
    println!();
}
