//! CI perf-regression gate over `bench_smoke` artifacts.
//!
//! ```text
//! bench_check <fresh.json> [baseline.json]
//! ```
//!
//! Parses the freshly produced artifact (and, when given, the committed
//! baseline from a previous PR) and applies the policy in
//! [`moby_bench::artifact::gate`]:
//!
//! - every expected section (`benches`, `construction`, `delta`,
//!   `window`, `sweep`, and `large` for large-scale runs) must be
//!   present and non-empty;
//! - the `determinism` field must assert every bit-identity contract;
//! - wall times matched by section + row name must stay within
//!   [`moby_bench::artifact::FAIL_RATIO`] of the baseline — soft
//!   regressions past [`moby_bench::artifact::WARN_RATIO`] warn, and
//!   all ratio findings degrade to warnings when either run happened
//!   on a single-core host.
//!
//! Exit status 0 when the gate passes (warnings allowed), 1 on any
//! hard failure, 2 on unreadable or unparseable input.

use moby_bench::artifact::{gate, Json};
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, baseline_path) = match args.as_slice() {
        [fresh] => (fresh.as_str(), None),
        [fresh, baseline] => (fresh.as_str(), Some(baseline.as_str())),
        _ => {
            eprintln!("usage: bench_check <fresh.json> [baseline.json]");
            return ExitCode::from(2);
        }
    };

    let fresh = match load(fresh_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match baseline_path.map(load) {
        None => None,
        Some(Ok(doc)) => Some(doc),
        Some(Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let report = gate(&fresh, baseline.as_ref());
    for warning in &report.warnings {
        println!("warning: {warning}");
    }
    for error in &report.errors {
        println!("error: {error}");
    }
    if report.passed() {
        println!(
            "bench_check: OK — {fresh_path} vs {} ({} warnings)",
            baseline_path.unwrap_or("<no baseline>"),
            report.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("bench_check: FAILED with {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}
