//! CI perf-regression gate over `bench_smoke` artifacts.
//!
//! ```text
//! bench_check <fresh.json> [baseline.json | baseline-dir]
//! ```
//!
//! Parses the freshly produced artifact (and, when given, the committed
//! baseline from a previous PR) and applies the policy in
//! [`moby_bench::artifact::gate`]:
//!
//! - every expected section (`benches`, `construction`, `delta`,
//!   `window`, `sweep`, `serve`, and `large` for large-scale runs) must
//!   be present and non-empty;
//! - the `determinism` field must assert every bit-identity contract;
//! - wall times matched by section + row name must stay within
//!   [`moby_bench::artifact::FAIL_RATIO`] of the baseline — soft
//!   regressions past [`moby_bench::artifact::WARN_RATIO`] warn, and
//!   all ratio findings degrade to warnings when either run happened
//!   on a single-core host.
//!
//! When the baseline argument is a **directory**, the newest committed
//! `BENCH_pr<N>.json` inside it (highest `N`) is used; a directory with
//! no baseline artifact gates the fresh run standalone and passes with
//! a warning. That replaces shell-side discovery (`ls BENCH_pr*.json`),
//! which hands the literal unexpanded glob to this binary when no
//! baseline exists yet and used to fail the very first gated run.
//!
//! Exit status 0 when the gate passes (warnings allowed), 1 on any
//! hard failure, 2 on unreadable or unparseable input.

use moby_bench::artifact::{discover_baseline, gate, Json};
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Resolve the baseline argument: a file is used as-is, a directory is
/// searched for its newest `BENCH_pr<N>.json`, and an empty directory
/// resolves to "no baseline" rather than an error.
fn resolve_baseline(arg: &str) -> Result<Option<String>, String> {
    let path = std::path::Path::new(arg);
    if !path.is_dir() {
        return Ok(Some(arg.to_string()));
    }
    match discover_baseline(path) {
        Ok(Some(found)) => Ok(Some(found.to_string_lossy().into_owned())),
        Ok(None) => Ok(None),
        Err(e) => Err(format!("{arg}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (fresh_path, baseline_arg) = match args.as_slice() {
        [fresh] => (fresh.as_str(), None),
        [fresh, baseline] => (fresh.as_str(), Some(baseline.as_str())),
        _ => {
            eprintln!("usage: bench_check <fresh.json> [baseline.json | baseline-dir]");
            return ExitCode::from(2);
        }
    };

    let fresh = match load(fresh_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = match baseline_arg.map(resolve_baseline) {
        None => None,
        Some(Ok(resolved)) => {
            if resolved.is_none() {
                println!(
                    "bench_check: no BENCH_pr*.json baseline in {}; gating fresh artifact standalone",
                    baseline_arg.unwrap_or_default()
                );
            }
            resolved
        }
        Some(Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match baseline_path.as_deref().map(load) {
        None => None,
        Some(Ok(doc)) => Some(doc),
        Some(Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let report = gate(&fresh, baseline.as_ref());
    for warning in &report.warnings {
        println!("warning: {warning}");
    }
    for error in &report.errors {
        println!("error: {error}");
    }
    if report.passed() {
        println!(
            "bench_check: OK — {fresh_path} vs {} ({} warnings)",
            baseline_path.as_deref().unwrap_or("<no baseline>"),
            report.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("bench_check: FAILED with {} error(s)", report.errors.len());
        ExitCode::FAILURE
    }
}
