//! Shared fixtures for the benchmark suite and the experiment-reproduction
//! harness.
//!
//! Everything is deterministic: the same scale always produces the same
//! dataset, candidate network and pipeline outcome.

pub mod artifact;

use moby_core::pipeline::{ExpansionOutcome, ExpansionPipeline, PipelineConfig};
use moby_data::schema::RawDataset;
use moby_data::synth::{generate, CityConfig, SynthConfig};
use moby_data::timeparse::Timestamp;

/// Workload scale used by benches and the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2 k rentals, 4 months — unit-test sized, seconds end to end.
    Small,
    /// ~15 k rentals, 9 months — a mid-sized workload for Criterion.
    Medium,
    /// The paper's full scale: ≈62 k rentals, ≈14 k locations, 21 months.
    Paper,
    /// City scale: ≥10 k stations, ≥1 M trips through the streaming
    /// generator and sharded construction — exercises graph building,
    /// not the expansion pipeline (which is sized for the paper's data).
    Large,
}

impl Scale {
    /// Parse a scale name (`small` / `medium` / `paper` / `large`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            "large" | "city" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
            Scale::Large => "large",
        }
    }
}

/// The city-tier generator configuration for [`Scale::Large`], with the
/// trip count optionally scaled by the `MOBY_CITY_TRIPS` environment
/// knob (clamped to [`CityConfig::MAX_TRIPS`]).
pub fn city_config() -> CityConfig {
    SynthConfig::city().trips_from_env()
}

/// Peak resident-set size of this process in kilobytes, from `VmHWM` in
/// `/proc/self/status`. Returns `None` where the proc filesystem is
/// unavailable (non-Linux hosts) **or** where the `VmHWM` line does not
/// parse — a malformed line must read as "not measured", never as a
/// silent 0 that would be mistaken for "no memory used".
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        parse_vm_hwm_kb(&std::fs::read_to_string("/proc/self/status").ok()?)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract the `VmHWM` high-water mark (in kB) from the contents of a
/// `/proc/<pid>/status` file.
///
/// The parse is field-based, not position-based: the line is
/// whitespace-split, so any amount of padding between the label, the
/// number and the unit is accepted — but a missing or non-`kB` unit, a
/// non-numeric value, or a trailing extra field all yield `None` rather
/// than a garbage number.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let mut fields = line.split_whitespace();
    let value: u64 = fields.next()?.parse().ok()?;
    // The kernel reports VmHWM in kB; bail out rather than misreport if
    // the unit ever differs (or is missing entirely).
    if fields.next() != Some("kB") || fields.next().is_some() {
        return None;
    }
    Some(value)
}

/// The synthetic-generator configuration for a scale.
///
/// # Panics
///
/// For [`Scale::Large`]: the city tier streams trips through
/// [`city_config`]/[`moby_data::synth::city_trip_stream`] and never
/// materialises a [`RawDataset`] — a row-of-structs dataset at 1 M+
/// rows would defeat the tier's bounded-memory purpose.
pub fn synth_config(scale: Scale) -> SynthConfig {
    match scale {
        Scale::Small => SynthConfig::small_test(),
        Scale::Medium => SynthConfig {
            clean_rentals: 15_000,
            dockless_locations: 4_000,
            dirty_rentals: 120,
            dirty_locations: 30,
            start: Timestamp::from_ymd_hms(2020, 6, 1, 0, 0, 0).expect("valid"),
            end: Timestamp::from_ymd_hms(2021, 2, 28, 23, 59, 59).expect("valid"),
            ..SynthConfig::paper_scale()
        },
        Scale::Paper => SynthConfig::paper_scale(),
        Scale::Large => panic!("the large tier is streaming-only; use city_config()"),
    }
}

/// Generate the raw dataset for a scale.
pub fn dataset(scale: Scale) -> RawDataset {
    generate(&synth_config(scale))
}

/// Run the full expansion pipeline for a scale with default settings.
pub fn run_pipeline(scale: Scale) -> ExpansionOutcome {
    let raw = dataset(scale);
    ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs on synthetic data")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("city"), Some(Scale::Large));
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Scale::Medium.name(), "medium");
        assert_eq!(Scale::Large.name(), "large");
    }

    #[test]
    fn city_config_meets_tier_floor() {
        let cfg = city_config();
        assert!(cfg.stations >= 10_000);
        assert!(cfg.trips >= 1_000_000);
    }

    #[test]
    fn peak_rss_is_measured_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM should be readable on linux");
            assert!(kb > 0, "a running process has a nonzero high-water mark");
        }
    }

    #[test]
    fn vm_hwm_parse_accepts_any_field_padding() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:     12345 kB\nThreads:\t4\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(12345));
        // Tabs, minimal spacing, surrounding lines in any order.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t7 kB\n"), Some(7));
    }

    #[test]
    fn vm_hwm_parse_returns_none_instead_of_zero_on_malformed_input() {
        // Missing line entirely.
        assert_eq!(parse_vm_hwm_kb("Name: bench\nVmPeak: 10 kB\n"), None);
        // Non-numeric value.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tlots kB\n"), None);
        // Missing unit — could be anything, refuse to guess.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t12345\n"), None);
        // Wrong unit (a field-position parse would misreport this).
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t12 mB\n"), None);
        // Trailing junk after the unit.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t12 kB extra\n"), None);
        // Empty value.
        assert_eq!(parse_vm_hwm_kb("VmHWM:\n"), None);
    }

    #[test]
    fn small_scale_pipeline_runs() {
        let outcome = run_pipeline(Scale::Small);
        assert!(outcome.new_station_count() > 0);
    }
}
