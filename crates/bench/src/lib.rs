//! Shared fixtures for the benchmark suite and the experiment-reproduction
//! harness.
//!
//! Everything is deterministic: the same scale always produces the same
//! dataset, candidate network and pipeline outcome.

pub mod artifact;

use moby_core::pipeline::{ExpansionOutcome, ExpansionPipeline, PipelineConfig};
use moby_data::schema::RawDataset;
use moby_data::synth::{generate, CityConfig, SynthConfig};
use moby_data::timeparse::Timestamp;

/// Workload scale used by benches and the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2 k rentals, 4 months — unit-test sized, seconds end to end.
    Small,
    /// ~15 k rentals, 9 months — a mid-sized workload for Criterion.
    Medium,
    /// The paper's full scale: ≈62 k rentals, ≈14 k locations, 21 months.
    Paper,
    /// City scale: ≥10 k stations, ≥1 M trips through the streaming
    /// generator and sharded construction — exercises graph building,
    /// not the expansion pipeline (which is sized for the paper's data).
    Large,
}

impl Scale {
    /// Parse a scale name (`small` / `medium` / `paper` / `large`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            "large" | "city" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
            Scale::Large => "large",
        }
    }
}

/// The city-tier generator configuration for [`Scale::Large`], with the
/// trip count optionally scaled by the `MOBY_CITY_TRIPS` environment
/// knob (clamped to [`CityConfig::MAX_TRIPS`]).
pub fn city_config() -> CityConfig {
    SynthConfig::city().trips_from_env()
}

/// Peak resident-set size of this process in kilobytes, from
/// `VmHWM` in `/proc/self/status`. Returns 0 where the proc
/// filesystem is unavailable (non-Linux hosts) — callers should treat
/// 0 as "not measured", never as "no memory used".
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The synthetic-generator configuration for a scale.
///
/// # Panics
///
/// For [`Scale::Large`]: the city tier streams trips through
/// [`city_config`]/[`moby_data::synth::city_trip_stream`] and never
/// materialises a [`RawDataset`] — a row-of-structs dataset at 1 M+
/// rows would defeat the tier's bounded-memory purpose.
pub fn synth_config(scale: Scale) -> SynthConfig {
    match scale {
        Scale::Small => SynthConfig::small_test(),
        Scale::Medium => SynthConfig {
            clean_rentals: 15_000,
            dockless_locations: 4_000,
            dirty_rentals: 120,
            dirty_locations: 30,
            start: Timestamp::from_ymd_hms(2020, 6, 1, 0, 0, 0).expect("valid"),
            end: Timestamp::from_ymd_hms(2021, 2, 28, 23, 59, 59).expect("valid"),
            ..SynthConfig::paper_scale()
        },
        Scale::Paper => SynthConfig::paper_scale(),
        Scale::Large => panic!("the large tier is streaming-only; use city_config()"),
    }
}

/// Generate the raw dataset for a scale.
pub fn dataset(scale: Scale) -> RawDataset {
    generate(&synth_config(scale))
}

/// Run the full expansion pipeline for a scale with default settings.
pub fn run_pipeline(scale: Scale) -> ExpansionOutcome {
    let raw = dataset(scale);
    ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs on synthetic data")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("city"), Some(Scale::Large));
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Scale::Medium.name(), "medium");
        assert_eq!(Scale::Large.name(), "large");
    }

    #[test]
    fn city_config_meets_tier_floor() {
        let cfg = city_config();
        assert!(cfg.stations >= 10_000);
        assert!(cfg.trips >= 1_000_000);
    }

    #[test]
    fn peak_rss_is_measured_on_linux() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "VmHWM should be readable on linux");
        }
    }

    #[test]
    fn small_scale_pipeline_runs() {
        let outcome = run_pipeline(Scale::Small);
        assert!(outcome.new_station_count() > 0);
    }
}
