//! Shared fixtures for the benchmark suite and the experiment-reproduction
//! harness.
//!
//! Everything is deterministic: the same scale always produces the same
//! dataset, candidate network and pipeline outcome.

use moby_core::pipeline::{ExpansionOutcome, ExpansionPipeline, PipelineConfig};
use moby_data::schema::RawDataset;
use moby_data::synth::{generate, SynthConfig};
use moby_data::timeparse::Timestamp;

/// Workload scale used by benches and the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2 k rentals, 4 months — unit-test sized, seconds end to end.
    Small,
    /// ~15 k rentals, 9 months — a mid-sized workload for Criterion.
    Medium,
    /// The paper's full scale: ≈62 k rentals, ≈14 k locations, 21 months.
    Paper,
}

impl Scale {
    /// Parse a scale name (`small` / `medium` / `paper`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// The synthetic-generator configuration for a scale.
pub fn synth_config(scale: Scale) -> SynthConfig {
    match scale {
        Scale::Small => SynthConfig::small_test(),
        Scale::Medium => SynthConfig {
            clean_rentals: 15_000,
            dockless_locations: 4_000,
            dirty_rentals: 120,
            dirty_locations: 30,
            start: Timestamp::from_ymd_hms(2020, 6, 1, 0, 0, 0).expect("valid"),
            end: Timestamp::from_ymd_hms(2021, 2, 28, 23, 59, 59).expect("valid"),
            ..SynthConfig::paper_scale()
        },
        Scale::Paper => SynthConfig::paper_scale(),
    }
}

/// Generate the raw dataset for a scale.
pub fn dataset(scale: Scale) -> RawDataset {
    generate(&synth_config(scale))
}

/// Run the full expansion pipeline for a scale with default settings.
pub fn run_pipeline(scale: Scale) -> ExpansionOutcome {
    let raw = dataset(scale);
    ExpansionPipeline::new(PipelineConfig::default())
        .run(&raw)
        .expect("pipeline runs on synthetic data")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Scale::Medium.name(), "medium");
    }

    #[test]
    fn small_scale_pipeline_runs() {
        let outcome = run_pipeline(Scale::Small);
        assert!(outcome.new_station_count() > 0);
    }
}
