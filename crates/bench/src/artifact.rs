//! Parsing and regression-gating of `bench_smoke` JSON artifacts.
//!
//! The workspace is vendored-only, so this module carries its own small
//! recursive-descent JSON parser instead of depending on `serde_json`.
//! It only needs to understand the artifacts `bench_smoke` itself
//! renders (objects, arrays, strings, numbers, booleans, null), but it
//! parses the full JSON grammar so hand-edited baselines don't trip it.
//!
//! [`gate`] is the CI policy: a fresh artifact must carry every expected
//! section and assert every bit-identity contract in its `determinism`
//! field, and its wall times must not regress past the committed
//! baseline artifact by more than the hard threshold. Wall-time checks
//! degrade to warnings when either run happened on a single-core host,
//! where timings measure scheduling overhead rather than real work.

use std::collections::BTreeSet;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (artifact numbers are all small).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (artifact keys are never duplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax error with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the document.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; just copy the sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Sections a fresh artifact must always carry, non-empty.
pub const REQUIRED_SECTIONS: &[&str] = &[
    "benches",
    "construction",
    "delta",
    "window",
    "sweep",
    "serve",
];

/// Substrings the fresh artifact's `determinism` field must contain —
/// one per bit-identity contract the smoke run asserts, plus the
/// closing `(verified)` marker that the assertions actually ran.
pub const REQUIRED_CONTRACTS: &[&str] = &[
    "serial vs parallel",
    "hashmap-freeze vs sort-merge",
    "delta-apply vs full rebuild",
    "windowed evict vs rebuild",
    "permuted vs natural sweeps",
    "sharded vs unsharded",
    "served snapshot vs offline rebuild",
    "spilled vs in-memory",
    "(verified)",
];

/// Extract the PR number from a `BENCH_pr<N>.json` baseline file name;
/// `None` for anything else.
fn baseline_pr_number(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_pr")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Pick the newest committed baseline (`BENCH_pr<N>.json`, highest `N`)
/// from a list of file names. Returns `None` when no name matches the
/// baseline pattern — the very first PR to add the gate has no prior
/// artifact, and that must read as "nothing to compare against", not as
/// an error (see [`discover_baseline`] and the `bench_check` binary).
pub fn newest_baseline<'a>(names: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    names
        .into_iter()
        .filter_map(|name| baseline_pr_number(name).map(|pr| (pr, name)))
        .max_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)))
        .map(|(_, name)| name)
}

/// Scan `dir` for committed `BENCH_pr<N>.json` baselines and return the
/// path of the newest one, or `Ok(None)` when the directory holds none.
/// A shell-glob equivalent (`ls BENCH_pr*.json | tail -1`) hands the
/// *literal* unexpanded pattern downstream when the glob matches
/// nothing; this helper is the panic-free replacement.
pub fn discover_baseline(dir: &std::path::Path) -> std::io::Result<Option<std::path::PathBuf>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        if let Ok(name) = entry?.file_name().into_string() {
            names.push(name);
        }
    }
    Ok(newest_baseline(names.iter().map(String::as_str)).map(|name| dir.join(name)))
}

/// Hard-fail threshold: a wall time more than this multiple of the
/// baseline fails the gate (on multi-core hosts).
pub const FAIL_RATIO: f64 = 2.0;

/// Soft threshold: a wall time above this multiple of the baseline is
/// reported as a warning.
pub const WARN_RATIO: f64 = 1.25;

/// Hard-fail threshold for `*_rss_kb` fields: peak RSS more than this
/// multiple of the baseline fails the gate. RSS is tighter than wall
/// time because memory footprint doesn't jitter with scheduling — and
/// for the same reason it is **not** downgraded on single-core hosts.
pub const RSS_FAIL_RATIO: f64 = 1.5;

/// Soft threshold for `*_rss_kb` fields; above this multiple of the
/// baseline is reported as a warning.
pub const RSS_WARN_RATIO: f64 = 1.2;

/// Outcome of [`gate`]: hard failures and advisory warnings.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GateReport {
    /// Violations that must fail CI.
    pub errors: Vec<String>,
    /// Advisory findings (soft regressions, single-core downgrades).
    pub warnings: Vec<String>,
}

impl GateReport {
    /// Whether the gate passed (no hard failures).
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

fn host_parallelism(doc: &Json) -> f64 {
    doc.get("host_parallelism")
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// Check a fresh artifact (and optionally compare it against a committed
/// baseline artifact) under the CI policy described in the module docs.
pub fn gate(fresh: &Json, baseline: Option<&Json>) -> GateReport {
    let mut report = GateReport::default();

    // 1. Every expected section must exist and be non-empty. `large`
    //    and `spill` are only mandatory when the fresh run actually ran
    //    at large scale (local smoke runs default to medium and emit
    //    them empty).
    let large_required = fresh.get("scale").and_then(Json::as_str) == Some("large");
    for &section in REQUIRED_SECTIONS {
        match fresh.get(section).and_then(Json::as_arr) {
            None => report
                .errors
                .push(format!("fresh artifact is missing the `{section}` section")),
            Some([]) => report
                .errors
                .push(format!("fresh artifact has an empty `{section}` section")),
            Some(_) => {}
        }
    }
    for section in ["large", "spill"] {
        match fresh.get(section).and_then(Json::as_arr) {
            None if large_required => report
                .errors
                .push(format!("fresh artifact is missing the `{section}` section")),
            Some([]) if large_required => report.errors.push(format!(
                "fresh artifact ran at large scale but its `{section}` section is empty"
            )),
            _ => {}
        }
    }

    // 2. The determinism field must assert every bit-identity contract.
    let determinism = fresh
        .get("determinism")
        .and_then(Json::as_str)
        .unwrap_or_default();
    for &contract in REQUIRED_CONTRACTS {
        if !determinism.contains(contract) {
            report.errors.push(format!(
                "determinism field does not assert `{contract}`: {determinism:?}"
            ));
        }
    }

    // 3. Wall-time and peak-RSS ratios against the baseline, matched by
    //    section and row name over every `*_ms` / `*_rss_kb` field both
    //    rows report. Timings on a single-core host measure scheduling
    //    overhead, so wall-time regressions there degrade to warnings;
    //    RSS does not depend on scheduling, so its gate always holds.
    //    An RSS of zero means the probe was unavailable on that host
    //    (non-Linux), so those fields are skipped rather than ratioed.
    let Some(baseline) = baseline else {
        report
            .warnings
            .push("no baseline artifact supplied; wall-time ratios not checked".into());
        return report;
    };
    let single_core = host_parallelism(fresh) <= 1.0 || host_parallelism(baseline) <= 1.0;
    let mut compared = 0usize;
    for section in REQUIRED_SECTIONS.iter().copied().chain(["large", "spill"]) {
        let fresh_rows = fresh.get(section).and_then(Json::as_arr).unwrap_or(&[]);
        let base_rows = baseline.get(section).and_then(Json::as_arr).unwrap_or(&[]);
        for row in fresh_rows {
            let Some(name) = row.get("name").and_then(Json::as_str) else {
                continue;
            };
            let Some(base_row) = base_rows
                .iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            else {
                continue;
            };
            let Json::Obj(fields) = row else { continue };
            for (key, value) in fields {
                let is_rss = key.ends_with("_rss_kb");
                if !key.ends_with("_ms") && !is_rss {
                    continue;
                }
                let (Some(fresh_v), Some(base_v)) =
                    (value.as_f64(), base_row.get(key).and_then(Json::as_f64))
                else {
                    continue;
                };
                if !(fresh_v.is_finite() && base_v.is_finite()) || base_v <= 0.0 {
                    continue;
                }
                if is_rss && fresh_v <= 0.0 {
                    continue;
                }
                compared += 1;
                let (warn_ratio, fail_ratio) = if is_rss {
                    (RSS_WARN_RATIO, RSS_FAIL_RATIO)
                } else {
                    (WARN_RATIO, FAIL_RATIO)
                };
                let ratio = fresh_v / base_v;
                if ratio <= warn_ratio {
                    continue;
                }
                let finding = if is_rss {
                    format!(
                        "{section}/{name} {key}: {fresh_v:.0}kB vs baseline {base_v:.0}kB \
                         ({ratio:.2}x)"
                    )
                } else {
                    format!(
                        "{section}/{name} {key}: {fresh_v:.3}ms vs baseline {base_v:.3}ms \
                         ({ratio:.2}x)"
                    )
                };
                if ratio > fail_ratio && (is_rss || !single_core) {
                    report.errors.push(finding);
                } else if ratio > fail_ratio {
                    report
                        .warnings
                        .push(format!("{finding} [single-core host: warning only]"));
                } else {
                    report.warnings.push(finding);
                }
            }
        }
    }
    if compared == 0 {
        // An older baseline with disjoint row names would silently gate
        // nothing — surface that instead of reporting a clean pass.
        report
            .warnings
            .push("baseline artifact shares no timed rows with the fresh artifact".into());
    }

    // 4. Fresh sections that exist in the baseline must not vanish —
    //    catches a renamed section slipping past rule 1's fixed list.
    let fresh_keys: BTreeSet<&str> = match fresh {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        _ => BTreeSet::new(),
    };
    if let Json::Obj(fields) = baseline {
        for (key, value) in fields {
            if matches!(value, Json::Arr(items) if !items.is_empty())
                && !fresh_keys.contains(key.as_str())
            {
                report.warnings.push(format!(
                    "baseline section `{key}` has no counterpart in the fresh artifact"
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_doc() -> String {
        r#"{
          "schema": "moby-bench-smoke/v8",
          "scale": "medium",
          "host_parallelism": 4,
          "determinism": "bit-identical serial vs parallel, hashmap-freeze vs sort-merge, delta-apply vs full rebuild, windowed evict vs rebuild over surviving rows, permuted vs natural sweeps, sharded vs unsharded construction, served snapshot vs offline rebuild, and spilled vs in-memory construction (verified)",
          "benches": [{"name": "pagerank/trip_graph", "serial_ms": 1.0, "parallel_ms": 0.5}],
          "construction": [{"name": "construct/directed_trips", "sortmerge_1t_ms": 2.0}],
          "delta": [{"name": "delta/directed_trips", "apply_ms": 0.1, "rebuild_ms": 1.0}],
          "window": [{"name": "window/advance_window", "apply_ms": 3.0, "rebuild_ms": 4.0}],
          "sweep": [{"name": "sweep/pagerank_pull/ghour", "scalar_natural_ms": 0.8, "batched_natural_ms": 0.5}],
          "serve": [{"name": "serve/mixed_queries", "p50_ms": 0.05, "p99_ms": 0.2}],
          "large": [],
          "spill": [{"name": "spill/city_build_inmem", "wall_ms": 100.0, "peak_rss_kb": 500000},
                    {"name": "spill/city_build_spilled", "wall_ms": 130.0, "peak_rss_kb": 200000}]
        }"#
        .to_string()
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        let doc =
            Json::parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "s": "q\"\\\nAé😀"}"#).unwrap();
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Bool(false));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nAé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "{} trailing", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn clean_artifact_passes() {
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&fresh));
        assert!(report.passed(), "errors: {:?}", report.errors);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn missing_or_empty_sections_fail() {
        let fresh =
            Json::parse(&fresh_doc().replace(r#""window": [{"#, r#""window2": [{"#)).unwrap();
        let report = gate(&fresh, None);
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("missing the `window` section")));

        let empty = Json::parse(
            r#"{"scale": "medium", "benches": [], "construction": [],
                            "delta": [], "window": [], "sweep": [], "serve": [],
                            "determinism": ""}"#,
        )
        .unwrap();
        let report = gate(&empty, None);
        for section in REQUIRED_SECTIONS {
            assert!(
                report
                    .errors
                    .iter()
                    .any(|e| e.contains(&format!("empty `{section}`"))),
                "no error for {section}: {:?}",
                report.errors
            );
        }
    }

    #[test]
    fn large_scale_requires_large_section() {
        let fresh = Json::parse(&fresh_doc().replace("\"medium\"", "\"large\"")).unwrap();
        let report = gate(&fresh, None);
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("`large` section is empty")));
    }

    #[test]
    fn large_scale_requires_spill_section() {
        let fresh = Json::parse(
            &fresh_doc().replace("\"medium\"", "\"large\"").replace(
                r#"[{"name": "spill/city_build_inmem", "wall_ms": 100.0, "peak_rss_kb": 500000},
                    {"name": "spill/city_build_spilled", "wall_ms": 130.0, "peak_rss_kb": 200000}]"#,
                "[]",
            ),
        )
        .unwrap();
        let report = gate(&fresh, None);
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("`spill` section is empty")));
    }

    #[test]
    fn rss_regression_fails_even_on_single_core() {
        // 500000 -> 900000 kB is a 1.8x blow-up past RSS_FAIL_RATIO, and
        // memory footprint doesn't depend on scheduling, so the
        // single-core downgrade must NOT apply.
        let fresh = Json::parse(
            &fresh_doc()
                .replace("\"peak_rss_kb\": 500000", "\"peak_rss_kb\": 900000")
                .replace("\"host_parallelism\": 4", "\"host_parallelism\": 1"),
        )
        .unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&baseline));
        assert!(!report.passed());
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("spill/city_build_inmem peak_rss_kb") && e.contains("1.80x")));
    }

    #[test]
    fn rss_soft_regression_warns() {
        // 200000 -> 260000 kB is 1.3x: past RSS_WARN_RATIO, under
        // RSS_FAIL_RATIO.
        let fresh =
            Json::parse(&fresh_doc().replace("\"peak_rss_kb\": 200000", "\"peak_rss_kb\": 260000"))
                .unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&baseline));
        assert!(report.passed(), "errors: {:?}", report.errors);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("spill/city_build_spilled peak_rss_kb") && w.contains("1.30x")));
    }

    #[test]
    fn zero_rss_probe_is_skipped_not_ratioed() {
        // peak_rss_kb of 0 means /proc/self/status wasn't readable on
        // that host; neither direction of the comparison may fire.
        let fresh =
            Json::parse(&fresh_doc().replace("\"peak_rss_kb\": 500000", "\"peak_rss_kb\": 0"))
                .unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        for (a, b) in [(&fresh, &baseline), (&baseline, &fresh)] {
            let report = gate(a, Some(b));
            assert!(report.passed(), "errors: {:?}", report.errors);
            assert!(
                !report
                    .warnings
                    .iter()
                    .any(|w| w.contains("city_build_inmem peak_rss_kb")),
                "warnings: {:?}",
                report.warnings
            );
        }
    }

    #[test]
    fn v7_baseline_without_spill_section_is_accepted() {
        // Pre-PR10 baselines have no `spill` array and don't assert the
        // spilled-build contract; only the fresh artifact is held to
        // the new schema.
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let v7 = Json::parse(
            &fresh_doc()
                .replace(
                    "served snapshot vs offline rebuild, and spilled vs in-memory construction",
                    "and served snapshot vs offline rebuild",
                )
                .replace(
                    r#"[{"name": "spill/city_build_inmem", "wall_ms": 100.0, "peak_rss_kb": 500000},
                    {"name": "spill/city_build_spilled", "wall_ms": 130.0, "peak_rss_kb": 200000}]"#,
                    "[]",
                ),
        )
        .unwrap();
        let report = gate(&fresh, Some(&v7));
        assert!(report.passed(), "errors: {:?}", report.errors);
    }

    #[test]
    fn unasserted_determinism_contract_fails() {
        let fresh =
            Json::parse(&fresh_doc().replace("windowed evict vs rebuild", "windowed")).unwrap();
        let report = gate(&fresh, None);
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("windowed evict vs rebuild")));
    }

    #[test]
    fn hard_regression_fails_on_multicore() {
        let fresh =
            Json::parse(&fresh_doc().replace("\"apply_ms\": 3.0", "\"apply_ms\": 30.0")).unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&baseline));
        assert!(!report.passed());
        assert!(report
            .errors
            .iter()
            .any(|e| e.contains("window/advance_window apply_ms") && e.contains("10.00x")));
    }

    #[test]
    fn soft_regression_warns() {
        let fresh =
            Json::parse(&fresh_doc().replace("\"apply_ms\": 3.0", "\"apply_ms\": 4.5")).unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&baseline));
        assert!(report.passed());
        assert!(report.warnings.iter().any(|w| w.contains("1.50x")));
    }

    #[test]
    fn single_core_host_downgrades_hard_regressions() {
        let fresh = Json::parse(
            &fresh_doc()
                .replace("\"apply_ms\": 3.0", "\"apply_ms\": 30.0")
                .replace("\"host_parallelism\": 4", "\"host_parallelism\": 1"),
        )
        .unwrap();
        let baseline = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, Some(&baseline));
        assert!(report.passed(), "errors: {:?}", report.errors);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("single-core host")));
    }

    #[test]
    fn disjoint_baseline_warns_instead_of_passing_silently() {
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let baseline = Json::parse(&fresh_doc().replace("pagerank", "renamed")).unwrap();
        let report = gate(&fresh, Some(&baseline));
        // Other rows still match; rename them all to get a truly
        // disjoint baseline.
        let disjoint = Json::parse(
            &fresh_doc()
                .replace("pagerank/trip_graph", "x1")
                .replace("construct/directed_trips", "x2")
                .replace("delta/directed_trips", "x3")
                .replace("window/advance_window", "x4")
                .replace("sweep/pagerank_pull/ghour", "x5")
                .replace("serve/mixed_queries", "x6")
                .replace("spill/city_build_inmem", "x7")
                .replace("spill/city_build_spilled", "x8"),
        )
        .unwrap();
        let disjoint_report = gate(&fresh, Some(&disjoint));
        assert!(disjoint_report
            .warnings
            .iter()
            .any(|w| w.contains("shares no timed rows")));
        assert!(report.passed());
    }

    #[test]
    fn v5_baseline_without_sweep_section_is_accepted() {
        // Pre-PR8 baselines have no `sweep` array and don't assert the
        // permuted-sweep contract; only the fresh artifact is held to
        // the new schema.
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let v5 = Json::parse(
            &fresh_doc()
                .replace("permuted vs natural sweeps, ", "")
                .replace(
                    r#""sweep": [{"name": "sweep/pagerank_pull/ghour", "scalar_natural_ms": 0.8, "batched_natural_ms": 0.5}],"#,
                    "",
                ),
        )
        .unwrap();
        let report = gate(&fresh, Some(&v5));
        assert!(report.passed(), "errors: {:?}", report.errors);
    }

    #[test]
    fn v6_baseline_without_serve_section_is_accepted() {
        // Pre-PR9 baselines have no `serve` array and don't assert the
        // served-snapshot contract; only the fresh artifact is held to
        // the new schema.
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let v6 = Json::parse(
            &fresh_doc()
                .replace(
                    "sharded vs unsharded construction, and served snapshot vs offline rebuild",
                    "and sharded vs unsharded construction",
                )
                .replace(
                    r#""serve": [{"name": "serve/mixed_queries", "p50_ms": 0.05, "p99_ms": 0.2}],"#,
                    "",
                ),
        )
        .unwrap();
        let report = gate(&fresh, Some(&v6));
        assert!(report.passed(), "errors: {:?}", report.errors);
    }

    #[test]
    fn empty_baseline_set_passes_with_warning() {
        // The first PR to carry the gate has no committed
        // `BENCH_pr*.json` yet: discovery must yield `None`, and gating
        // against `None` must pass while still saying so out loud —
        // never panic, never fail, never pretend ratios were checked.
        assert_eq!(newest_baseline([]), None);
        assert_eq!(newest_baseline(["README.md", "bench.json"]), None);

        let fresh = Json::parse(&fresh_doc()).unwrap();
        let report = gate(&fresh, None);
        assert!(report.passed(), "errors: {:?}", report.errors);
        assert!(
            report.warnings.iter().any(|w| w.contains("no baseline")),
            "missing-baseline warning: {:?}",
            report.warnings
        );
    }

    #[test]
    fn newest_baseline_orders_numerically_not_lexically() {
        // `sort -V`-equivalent: pr10 beats pr9 even though "10" < "9"
        // lexicographically.
        let names = [
            "BENCH_pr9.json",
            "BENCH_pr10.json",
            "BENCH_pr2.json",
            "notes.txt",
            "BENCH_prX.json",
        ];
        assert_eq!(newest_baseline(names), Some("BENCH_pr10.json"));
    }

    #[test]
    fn discover_baseline_handles_missing_and_empty_directories() {
        let dir =
            std::env::temp_dir().join(format!("moby_bench_check_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            discover_baseline(&dir).is_err(),
            "unreadable directory is an Err, not a silent None"
        );
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(discover_baseline(&dir).unwrap(), None);
        std::fs::write(dir.join("BENCH_pr3.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_pr12.json"), "{}").unwrap();
        std::fs::write(dir.join("unrelated.json"), "{}").unwrap();
        assert_eq!(
            discover_baseline(&dir).unwrap(),
            Some(dir.join("BENCH_pr12.json"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v4_baseline_without_window_section_is_accepted() {
        // Pre-PR7 baselines have no `window` array and an older
        // determinism string; only the fresh artifact is held to the
        // new contract.
        let fresh = Json::parse(&fresh_doc()).unwrap();
        let v4 = Json::parse(
            &fresh_doc()
                .replace("windowed evict vs rebuild over surviving rows, and ", "")
                .replace(
                    r#""window": [{"name": "window/advance_window", "apply_ms": 3.0, "rebuild_ms": 4.0}],"#,
                    "",
                ),
        )
        .unwrap();
        let report = gate(&fresh, Some(&v4));
        assert!(report.passed(), "errors: {:?}", report.errors);
    }
}
