//! Benchmark of the full end-to-end expansion pipeline (clean -> candidate
//! graph -> Algorithm 1 -> reassignment -> temporal graphs -> Louvain at
//! three granularities), the number a downstream operator cares about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_bench::{dataset, Scale};
use moby_core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_data::clean::clean_dataset;
use moby_data::synth::generate;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for scale in [Scale::Small, Scale::Medium] {
        let raw = dataset(scale);
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", scale.name()),
            &scale,
            |bench, _| {
                let pipeline = ExpansionPipeline::new(PipelineConfig::default());
                bench.iter(|| {
                    pipeline
                        .run(&raw)
                        .expect("pipeline runs")
                        .new_station_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_data_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_layer");
    group.sample_size(10);
    for scale in [Scale::Small, Scale::Medium] {
        let config = moby_bench::synth_config(scale);
        group.bench_with_input(
            BenchmarkId::new("synthesise", scale.name()),
            &scale,
            |bench, _| bench.iter(|| generate(&config).rentals.len()),
        );
        let raw = dataset(scale);
        group.bench_with_input(
            BenchmarkId::new("clean", scale.name()),
            &scale,
            |bench, _| bench.iter(|| clean_dataset(&raw).dataset.rentals.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_data_layer);
criterion_main!(benches);
