//! Benchmarks of the constrained hierarchical clustering step (§IV-A) — the
//! most expensive part of graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_cluster::constrained::{constrained_clustering, ConstrainedConfig};
use moby_cluster::hac::hac_clusters;
use moby_cluster::linkage::Linkage;
use moby_geo::{destination_point, GeoPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Points clustered around a handful of hotspots, mimicking dockless
/// drop-off density around the city centre.
fn hotspot_points(n: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hotspots = [
        GeoPoint::new(53.3525, -6.2608).unwrap(),
        GeoPoint::new(53.3405, -6.2599).unwrap(),
        GeoPoint::new(53.3440, -6.2370).unwrap(),
        GeoPoint::new(53.3561, -6.3298).unwrap(),
        GeoPoint::new(53.2945, -6.1336).unwrap(),
    ];
    (0..n)
        .map(|i| {
            let c = hotspots[i % hotspots.len()];
            destination_point(
                c,
                rng.gen_range(0.0..360.0),
                rng.gen_range(0.0..1_200.0) * rng.gen::<f64>(),
            )
        })
        .collect()
}

fn bench_hac_linkages(c: &mut Criterion) {
    let mut group = c.benchmark_group("hac_flat_clusters");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 6_000] {
        let pts = hotspot_points(n, 3);
        for linkage in [Linkage::Complete, Linkage::Average, Linkage::Single] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_100m", linkage.name()), n),
                &n,
                |bench, _| bench.iter(|| hac_clusters(&pts, linkage, 100.0).len()),
            );
        }
    }
    group.finish();
}

fn bench_constrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("constrained_clustering");
    group.sample_size(10);
    let stations = hotspot_points(92, 11);
    for &n in &[2_000usize, 6_000, 14_000] {
        let locations = hotspot_points(n, 5);
        group.bench_with_input(BenchmarkId::new("paper_rules", n), &n, |bench, _| {
            bench.iter(|| {
                constrained_clustering(&stations, &locations, &ConstrainedConfig::default())
                    .expect("clustering runs")
                    .total_groups()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hac_linkages, bench_constrained);
criterion_main!(benches);
