//! Serial-vs-parallel scaling of the deterministic CSR execution layer:
//! PageRank sweeps and Louvain on planted-partition graphs at medium and
//! large scale, and on the paper's own `GHour` graph from the synthetic
//! Dublin generator, at 1 / 2 / 4 / 8 worker threads.
//!
//! The 1-thread column is the serial CSR baseline — by the scheduler's
//! determinism contract every other column computes the *same bits*, so the
//! ratios are pure execution-layer speedup (on a multi-core host; a
//! single-core runner shows ratios near 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_bench::{run_pipeline, Scale};
use moby_community::{louvain_csr, LouvainConfig};
use moby_core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_graph::metrics::{pagerank_csr, PageRankConfig};
use moby_graph::WeightedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A planted-partition graph: `communities` groups of `size` nodes with
/// dense internal and sparse external connectivity (same generator as the
/// `csr` bench).
fn planted_graph(communities: usize, size: usize, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new_undirected();
    for c in 0..communities as u64 {
        for i in 0..size as u64 {
            for j in (i + 1)..size as u64 {
                if rng.gen::<f64>() < 0.3 {
                    g.add_edge(c * 1_000 + i, c * 1_000 + j, rng.gen_range(1.0..5.0));
                }
            }
        }
    }
    for _ in 0..(communities * size / 4) {
        let a = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        let b = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        if a != b {
            g.add_edge(a, b, 1.0);
        }
    }
    g
}

fn bench_pagerank_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank_threads");
    group.sample_size(10);
    for &(communities, size, label) in &[(10usize, 120usize, "medium"), (20, 150, "large")] {
        let frozen = planted_graph(communities, size, 17).freeze();
        for &t in &THREAD_COUNTS {
            let cfg = PageRankConfig {
                threads: Some(t),
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, t), &t, |bench, _| {
                bench.iter(|| pagerank_csr(&frozen, &cfg).len())
            });
        }
    }
    group.finish();
}

fn bench_louvain_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain_threads");
    group.sample_size(10);
    for &(communities, size, label) in &[(10usize, 120usize, "medium"), (20, 150, "large")] {
        let frozen = planted_graph(communities, size, 17).freeze();
        for &t in &THREAD_COUNTS {
            let cfg = LouvainConfig {
                threads: Some(t),
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, t), &t, |bench, _| {
                bench.iter(|| louvain_csr(&frozen, &cfg).community_count())
            });
        }
    }
    group.finish();
}

fn bench_dublin_ghour_threads(c: &mut Criterion) {
    // The paper's finest-granularity layered graph at medium scale — the
    // hot detection input of the real pipeline.
    let outcome = run_pipeline(Scale::Medium);
    let temporal = build_temporal_graph(&outcome.selected.store, TemporalGranularity::THour);
    let mut group = c.benchmark_group("dublin_ghour_threads");
    group.sample_size(10);
    for &t in &THREAD_COUNTS {
        let lcfg = LouvainConfig {
            threads: Some(t),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("louvain", t), &t, |bench, _| {
            bench.iter(|| louvain_csr(&temporal.csr, &lcfg).community_count())
        });
        let pcfg = PageRankConfig {
            threads: Some(t),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("pagerank", t), &t, |bench, _| {
            bench.iter(|| pagerank_csr(&temporal.csr, &pcfg).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pagerank_threads,
    bench_louvain_threads,
    bench_dublin_ghour_threads,
);
criterion_main!(benches);
