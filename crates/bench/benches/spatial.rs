//! Micro-benchmarks of the geospatial substrate: Haversine distance and the
//! two spatial indexes that back the 50 m / 100 m / 250 m rule checks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_geo::{destination_point, haversine_m, GeoPoint, GridIndex, KdTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            GeoPoint::new(rng.gen_range(53.25..53.42), rng.gen_range(-6.45..-6.08))
                .expect("in range")
        })
        .collect()
}

fn bench_haversine(c: &mut Criterion) {
    let a = GeoPoint::new(53.3498, -6.2603).unwrap();
    let b = GeoPoint::new(53.2945, -6.1336).unwrap();
    c.bench_function("haversine_single_pair", |bench| {
        bench.iter(|| haversine_m(black_box(a), black_box(b)))
    });
    let pts = random_points(1_000, 1);
    c.bench_function("haversine_1k_pairwise_row", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &pts {
                acc += haversine_m(black_box(pts[0]), black_box(*p));
            }
            acc
        })
    });
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_index");
    for &n in &[1_000usize, 5_000, 14_000] {
        let pts = random_points(n, 7);
        let queries = random_points(200, 9);

        group.bench_with_input(BenchmarkId::new("kdtree_build", n), &n, |bench, _| {
            bench.iter(|| {
                KdTree::build(
                    pts.iter()
                        .copied()
                        .enumerate()
                        .map(|(i, p)| (p, i))
                        .collect::<Vec<_>>(),
                )
            })
        });

        let tree = KdTree::build(
            pts.iter()
                .copied()
                .enumerate()
                .map(|(i, p)| (p, i))
                .collect::<Vec<_>>(),
        );
        group.bench_with_input(
            BenchmarkId::new("kdtree_nearest_200q", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    queries
                        .iter()
                        .map(|q| tree.nearest(*q).expect("non-empty").2)
                        .sum::<f64>()
                })
            },
        );

        let mut grid = GridIndex::new(200.0, 53.35).expect("valid cell");
        for (i, p) in pts.iter().enumerate() {
            grid.insert(*p, i);
        }
        group.bench_with_input(
            BenchmarkId::new("grid_radius250_200q", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    queries
                        .iter()
                        .map(|q| grid.within_radius(*q, 250.0).expect("valid radius").len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();

    c.bench_function("destination_point", |bench| {
        let start = GeoPoint::new(53.3498, -6.2603).unwrap();
        bench.iter(|| destination_point(black_box(start), black_box(137.0), black_box(850.0)))
    });
}

criterion_group!(benches, bench_haversine, bench_indexes);
criterion_main!(benches);
