//! Benchmarks of the network-metrics suite (degree/strength, clustering
//! coefficient, PageRank, betweenness, Gini) on the frozen trip graphs
//! taken from the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use moby_bench::{run_pipeline, Scale};
use moby_graph::metrics::{
    average_clustering_coefficient_csr, betweenness_centrality_csr, closeness_centrality_csr,
    degree_map_csr, gini_coefficient, pagerank_csr, strength_map_csr, PageRankConfig,
};

fn bench_metrics(c: &mut Criterion) {
    let outcome = run_pipeline(Scale::Small);
    let g = &outcome.selected.undirected;
    let directed = &outcome.selected.directed;
    let nodes = g.node_count();
    let mut group = c.benchmark_group(format!("metrics_{nodes}_stations"));
    group.sample_size(10);

    group.bench_function("degree_and_strength", |bench| {
        bench.iter(|| (degree_map_csr(g).len(), strength_map_csr(g).len()))
    });
    group.bench_function("clustering_coefficient", |bench| {
        bench.iter(|| average_clustering_coefficient_csr(g))
    });
    group.bench_function("pagerank", |bench| {
        bench.iter(|| pagerank_csr(directed, &PageRankConfig::default()).len())
    });
    group.bench_function("closeness", |bench| {
        bench.iter(|| closeness_centrality_csr(g, true).len())
    });
    group.bench_function("betweenness_weighted", |bench| {
        bench.iter(|| betweenness_centrality_csr(g, true, true).len())
    });
    group.bench_function("gini_over_strength", |bench| {
        let strengths: Vec<f64> = strength_map_csr(g).values().copied().collect();
        bench.iter(|| gini_coefficient(&strengths))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
