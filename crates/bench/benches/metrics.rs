//! Benchmarks of the network-metrics suite (degree/strength, clustering
//! coefficient, PageRank, betweenness, Gini) on trip graphs taken from the
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use moby_bench::{run_pipeline, Scale};
use moby_graph::metrics::{
    average_clustering_coefficient, betweenness_centrality, closeness_centrality, degree_map,
    gini_coefficient, pagerank, strength_map, PageRankConfig,
};

fn bench_metrics(c: &mut Criterion) {
    let outcome = run_pipeline(Scale::Small);
    let g = &outcome.selected.undirected;
    let directed = &outcome.selected.directed;
    let nodes = g.node_count();
    let mut group = c.benchmark_group(format!("metrics_{nodes}_stations"));
    group.sample_size(10);

    group.bench_function("degree_and_strength", |bench| {
        bench.iter(|| (degree_map(g).len(), strength_map(g).len()))
    });
    group.bench_function("clustering_coefficient", |bench| {
        bench.iter(|| average_clustering_coefficient(g))
    });
    group.bench_function("pagerank", |bench| {
        bench.iter(|| pagerank(directed, &PageRankConfig::default()).len())
    });
    group.bench_function("closeness", |bench| {
        bench.iter(|| closeness_centrality(g, true).len())
    });
    group.bench_function("betweenness_weighted", |bench| {
        bench.iter(|| betweenness_centrality(g, true, true).len())
    });
    group.bench_function("gini_over_strength", |bench| {
        let strengths: Vec<f64> = strength_map(g).values().copied().collect();
        bench.iter(|| gini_coefficient(&strengths))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
