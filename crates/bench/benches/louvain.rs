//! Benchmarks of community detection (§IV-C): Louvain vs label propagation
//! on station graphs of increasing size and on the layered temporal graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_bench::{run_pipeline, Scale};
use moby_community::{label_propagation, louvain, LabelPropagationConfig, LouvainConfig};
use moby_core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_graph::WeightedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted-partition graph: `communities` groups of `size` nodes with
/// dense internal and sparse external connectivity.
fn planted_graph(communities: usize, size: usize, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new_undirected();
    for c in 0..communities as u64 {
        for i in 0..size as u64 {
            for j in (i + 1)..size as u64 {
                if rng.gen::<f64>() < 0.3 {
                    g.add_edge(c * 1_000 + i, c * 1_000 + j, rng.gen_range(1.0..5.0));
                }
            }
        }
    }
    for _ in 0..(communities * size / 4) {
        let a = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        let b = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        if a != b {
            g.add_edge(a, b, 1.0);
        }
    }
    g
}

fn bench_detectors_on_planted_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_detection");
    group.sample_size(10);
    for &(communities, size) in &[(5usize, 40usize), (10, 60), (10, 120)] {
        let g = planted_graph(communities, size, 17);
        let nodes = g.node_count();
        group.bench_with_input(BenchmarkId::new("louvain", nodes), &nodes, |bench, _| {
            bench.iter(|| louvain(&g, &LouvainConfig::default()).community_count())
        });
        group.bench_with_input(
            BenchmarkId::new("label_propagation", nodes),
            &nodes,
            |bench, _| {
                bench.iter(|| {
                    label_propagation(&g, &LabelPropagationConfig::default()).community_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_temporal_graphs(c: &mut Criterion) {
    // Louvain on the actual GBasic / GDay / GHour graphs from the pipeline.
    let outcome = run_pipeline(Scale::Small);
    let mut group = c.benchmark_group("louvain_temporal");
    group.sample_size(10);
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        group.bench_function(granularity.graph_name(), |bench| {
            let builder = temporal.builder.as_ref().expect("legacy path");
            bench.iter(|| louvain(builder, &LouvainConfig::default()).community_count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_detectors_on_planted_graphs,
    bench_temporal_graphs
);
criterion_main!(benches);
