//! The freeze-to-CSR A/B benchmark: the frozen [`CsrGraph`] community path
//! (`louvain_csr` / `modularity_csr`, including the freeze itself) against
//! the legacy hash-map walk (`louvain_hashmap` / `modularity_hashmap`) on
//! the synthetic Dublin generator at medium scale and on planted-partition
//! graphs. The CSR column must win — it is the representation every
//! scaling PR builds on.
//!
//! [`CsrGraph`]: moby_graph::CsrGraph

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_bench::{run_pipeline, Scale};
use moby_community::{
    louvain_csr, louvain_hashmap, modularity_csr, modularity_hashmap, LouvainConfig,
};
use moby_core::temporal::{build_temporal_graph, TemporalGranularity};
use moby_graph::WeightedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted-partition graph: `communities` groups of `size` nodes with
/// dense internal and sparse external connectivity.
fn planted_graph(communities: usize, size: usize, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new_undirected();
    for c in 0..communities as u64 {
        for i in 0..size as u64 {
            for j in (i + 1)..size as u64 {
                if rng.gen::<f64>() < 0.3 {
                    g.add_edge(c * 1_000 + i, c * 1_000 + j, rng.gen_range(1.0..5.0));
                }
            }
        }
    }
    for _ in 0..(communities * size / 4) {
        let a = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        let b = rng.gen_range(0..communities as u64) * 1_000 + rng.gen_range(0..size as u64);
        if a != b {
            g.add_edge(a, b, 1.0);
        }
    }
    g
}

fn bench_louvain_csr_vs_hashmap_planted(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain_csr_vs_hashmap");
    group.sample_size(10);
    let cfg = LouvainConfig::default();
    for &(communities, size) in &[(10usize, 60usize), (10, 120), (20, 150)] {
        let g = planted_graph(communities, size, 17);
        let nodes = g.node_count();
        // The CSR column includes the freeze itself — the honest end-to-end
        // cost of the frozen path starting from a builder graph.
        group.bench_with_input(BenchmarkId::new("csr", nodes), &nodes, |bench, _| {
            bench.iter(|| louvain_csr(&g.freeze(), &cfg).community_count())
        });
        group.bench_with_input(BenchmarkId::new("hashmap", nodes), &nodes, |bench, _| {
            bench.iter(|| louvain_hashmap(&g, &cfg).community_count())
        });
    }
    group.finish();
}

fn bench_louvain_csr_vs_hashmap_dublin_medium(c: &mut Criterion) {
    // The paper's own graphs from the synthetic Dublin generator at medium
    // scale: GBasic (station-level) and the layered GDay / GHour.
    let outcome = run_pipeline(Scale::Medium);
    let cfg = LouvainConfig::default();
    let mut group = c.benchmark_group("louvain_dublin_medium");
    group.sample_size(10);
    for granularity in TemporalGranularity::ALL {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        group.bench_function(format!("csr/{}", granularity.graph_name()), |bench| {
            bench.iter(|| louvain_csr(&temporal.csr, &cfg).community_count())
        });
        group.bench_function(format!("hashmap/{}", granularity.graph_name()), |bench| {
            let builder = temporal.builder.as_ref().expect("legacy path");
            bench.iter(|| louvain_hashmap(builder, &cfg).community_count())
        });
    }
    group.finish();
}

fn bench_modularity_csr_vs_hashmap(c: &mut Criterion) {
    let outcome = run_pipeline(Scale::Medium);
    let cfg = LouvainConfig::default();
    let mut group = c.benchmark_group("modularity_dublin_medium");
    group.sample_size(20);
    for granularity in [TemporalGranularity::TNull, TemporalGranularity::THour] {
        let temporal = build_temporal_graph(&outcome.selected.store, granularity);
        let partition = louvain_csr(&temporal.csr, &cfg);
        group.bench_function(format!("csr/{}", granularity.graph_name()), |bench| {
            bench.iter(|| modularity_csr(&temporal.csr, &partition))
        });
        group.bench_function(format!("hashmap/{}", granularity.graph_name()), |bench| {
            let builder = temporal.builder.as_ref().expect("legacy path");
            bench.iter(|| modularity_hashmap(builder, &partition))
        });
    }
    group.finish();
}

fn bench_freeze_cost(c: &mut Criterion) {
    // The one-time cost of freezing, for the record: it is amortised over
    // every downstream sweep.
    let g = planted_graph(10, 120, 17);
    let mut group = c.benchmark_group("freeze");
    group.sample_size(20);
    group.bench_function("planted_1200_nodes", |bench| {
        bench.iter(|| g.freeze().edge_count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_louvain_csr_vs_hashmap_planted,
    bench_louvain_csr_vs_hashmap_dublin_medium,
    bench_modularity_csr_vs_hashmap,
    bench_freeze_cost,
);
criterion_main!(benches);
