//! Benchmarks of the station ranking and selection step (Algorithm 1) and
//! the candidate-network construction that feeds it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moby_bench::{dataset, Scale};
use moby_core::candidate::build_candidate_network;
use moby_core::reassign::build_selected_network;
use moby_core::selection::select_stations;
use moby_core::ExpansionConfig;
use moby_data::clean::clean_dataset;

fn bench_candidate_and_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_pipeline");
    group.sample_size(10);
    for scale in [Scale::Small, Scale::Medium] {
        let cleaned = clean_dataset(&dataset(scale)).dataset;
        let config = ExpansionConfig::default();

        group.bench_with_input(
            BenchmarkId::new("build_candidate_network", scale.name()),
            &scale,
            |bench, _| {
                bench.iter(|| {
                    build_candidate_network(&cleaned, &config)
                        .expect("network builds")
                        .nodes
                        .len()
                })
            },
        );

        let network = build_candidate_network(&cleaned, &config).expect("network builds");
        group.bench_with_input(
            BenchmarkId::new("algorithm1_select", scale.name()),
            &scale,
            |bench, _| {
                bench.iter(|| {
                    select_stations(&network, &config)
                        .expect("selection runs")
                        .selected
                        .len()
                })
            },
        );

        let selection = select_stations(&network, &config).expect("selection runs");
        group.bench_with_input(
            BenchmarkId::new("reassign_and_build_selected", scale.name()),
            &scale,
            |bench, _| {
                bench.iter(|| {
                    build_selected_network(&cleaned, &network, &selection)
                        .expect("selected network builds")
                        .stations
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_and_selection);
criterion_main!(benches);
