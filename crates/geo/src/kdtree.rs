//! A 2-d k-d tree over geographic points.
//!
//! The k-d tree complements the [`crate::GridIndex`]: it supports exact
//! k-nearest-neighbour queries without tuning a cell size, which the
//! selection pipeline uses when ranking candidate stations against their
//! spatial context (e.g. "distance to the nearest pre-existing station" in
//! Algorithm 1, line 6).
//!
//! Points are stored in a planar equirectangular projection centred on the
//! dataset, which keeps splitting balanced; candidate distances are refined
//! with the exact Haversine formula before being returned.

use crate::{haversine_m, GeoError, GeoPoint, Result};

const M_PER_DEG_LAT: f64 = 111_195.0;

#[derive(Debug, Clone)]
struct Node {
    /// Index into `points` / `payloads`.
    idx: usize,
    left: Option<usize>,
    right: Option<usize>,
    /// 0 = split on x (projected lon), 1 = split on y (projected lat).
    axis: u8,
}

/// A static 2-d k-d tree mapping geographic points to payloads.
///
/// Build once with [`KdTree::build`]; the tree does not support incremental
/// insertion (none of the pipeline needs it).
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    nodes: Vec<Node>,
    root: Option<usize>,
    points: Vec<GeoPoint>,
    projected: Vec<(f64, f64)>,
    payloads: Vec<T>,
    cos_ref_lat: f64,
}

impl<T> KdTree<T> {
    /// Build a tree from `(point, payload)` pairs.
    ///
    /// An empty input produces an empty tree; queries on it return
    /// [`GeoError::EmptyIndex`].
    pub fn build(items: Vec<(GeoPoint, T)>) -> Self {
        let ref_lat = if items.is_empty() {
            0.0
        } else {
            items.iter().map(|(p, _)| p.lat()).sum::<f64>() / items.len() as f64
        };
        let cos_ref_lat = ref_lat.to_radians().cos().max(1e-6);

        let mut points = Vec::with_capacity(items.len());
        let mut payloads = Vec::with_capacity(items.len());
        for (p, t) in items {
            points.push(p);
            payloads.push(t);
        }
        let projected: Vec<(f64, f64)> = points
            .iter()
            .map(|p| {
                (
                    p.lon() * M_PER_DEG_LAT * cos_ref_lat,
                    p.lat() * M_PER_DEG_LAT,
                )
            })
            .collect();

        let mut tree = Self {
            nodes: Vec::with_capacity(points.len()),
            root: None,
            points,
            projected,
            payloads,
            cos_ref_lat,
        };
        let mut order: Vec<usize> = (0..tree.points.len()).collect();
        tree.root = tree.build_rec(&mut order, 0);
        tree
    }

    fn build_rec(&mut self, order: &mut [usize], depth: u8) -> Option<usize> {
        if order.is_empty() {
            return None;
        }
        let axis = depth % 2;
        order.sort_unstable_by(|&a, &b| {
            let ka = if axis == 0 {
                self.projected[a].0
            } else {
                self.projected[a].1
            };
            let kb = if axis == 0 {
                self.projected[b].0
            } else {
                self.projected[b].1
            };
            ka.partial_cmp(&kb).expect("projected coords are finite")
        });
        let mid = order.len() / 2;
        let idx = order[mid];
        let node_slot = self.nodes.len();
        self.nodes.push(Node {
            idx,
            left: None,
            right: None,
            axis,
        });
        let (left_slice, rest) = order.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        // Recurse after pushing so children land after the parent.
        let left = self.build_rec(left_slice, depth.wrapping_add(1));
        let right = self.build_rec(right_slice, depth.wrapping_add(1));
        self.nodes[node_slot].left = left;
        self.nodes[node_slot].right = right;
        Some(node_slot)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn project(&self, p: GeoPoint) -> (f64, f64) {
        (
            p.lon() * M_PER_DEG_LAT * self.cos_ref_lat,
            p.lat() * M_PER_DEG_LAT,
        )
    }

    /// The single nearest neighbour of `query`.
    ///
    /// # Errors
    ///
    /// [`GeoError::EmptyIndex`] when the tree is empty.
    pub fn nearest(&self, query: GeoPoint) -> Result<(&GeoPoint, &T, f64)> {
        let mut knn = self.k_nearest(query, 1)?;
        Ok(knn.remove(0))
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending distance.
    ///
    /// Returns fewer than `k` entries when the tree holds fewer points.
    ///
    /// # Errors
    ///
    /// [`GeoError::EmptyIndex`] when the tree is empty.
    pub fn k_nearest(&self, query: GeoPoint, k: usize) -> Result<Vec<(&GeoPoint, &T, f64)>> {
        if self.is_empty() {
            return Err(GeoError::EmptyIndex);
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let q = self.project(query);
        // Max-heap of (distance, idx) capped at k, kept as a sorted Vec
        // (k is small in all our uses: 1..=10).
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.knn_rec(self.root, q, query, k, &mut best);
        Ok(best
            .into_iter()
            .map(|(d, i)| (&self.points[i], &self.payloads[i], d))
            .collect())
    }

    fn knn_rec(
        &self,
        node: Option<usize>,
        q_proj: (f64, f64),
        q_geo: GeoPoint,
        k: usize,
        best: &mut Vec<(f64, usize)>,
    ) {
        let Some(ni) = node else { return };
        let n = &self.nodes[ni];
        let d = haversine_m(q_geo, self.points[n.idx]);
        // Insert in sorted order, keep at most k.
        let pos = best.partition_point(|&(bd, _)| bd < d);
        best.insert(pos, (d, n.idx));
        if best.len() > k {
            best.pop();
        }

        let (qk, nk) = if n.axis == 0 {
            (q_proj.0, self.projected[n.idx].0)
        } else {
            (q_proj.1, self.projected[n.idx].1)
        };
        let (near, far) = if qk < nk {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.knn_rec(near, q_proj, q_geo, k, best);
        // The projected axis distance is a slight approximation of the true
        // separating distance; inflate it a little so we never wrongly prune.
        let axis_gap = (qk - nk).abs() * 1.001 + 1e-9;
        let worst = best.last().map(|&(d, _)| d).unwrap_or(f64::INFINITY);
        if best.len() < k || axis_gap < worst {
            self.knn_rec(far, q_proj, q_geo, k, best);
        }
    }

    /// All points within `radius_m` of `query`, sorted by ascending distance.
    ///
    /// # Errors
    ///
    /// [`GeoError::InvalidDistance`] for a negative or non-finite radius.
    pub fn within_radius(
        &self,
        query: GeoPoint,
        radius_m: f64,
    ) -> Result<Vec<(&GeoPoint, &T, f64)>> {
        if !radius_m.is_finite() || radius_m < 0.0 {
            return Err(GeoError::InvalidDistance(radius_m));
        }
        let q = self.project(query);
        let mut out: Vec<(f64, usize)> = Vec::new();
        self.radius_rec(self.root, q, query, radius_m, &mut out);
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        Ok(out
            .into_iter()
            .map(|(d, i)| (&self.points[i], &self.payloads[i], d))
            .collect())
    }

    fn radius_rec(
        &self,
        node: Option<usize>,
        q_proj: (f64, f64),
        q_geo: GeoPoint,
        radius_m: f64,
        out: &mut Vec<(f64, usize)>,
    ) {
        let Some(ni) = node else { return };
        let n = &self.nodes[ni];
        let d = haversine_m(q_geo, self.points[n.idx]);
        if d <= radius_m {
            out.push((d, n.idx));
        }
        let (qk, nk) = if n.axis == 0 {
            (q_proj.0, self.projected[n.idx].0)
        } else {
            (q_proj.1, self.projected[n.idx].1)
        };
        let axis_gap = (qk - nk).abs();
        let (near, far) = if qk < nk {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.radius_rec(near, q_proj, q_geo, radius_m, out);
        if axis_gap <= radius_m * 1.001 + 1e-9 {
            self.radius_rec(far, q_proj, q_geo, radius_m, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn random_points(n: usize, seed: u64) -> Vec<(GeoPoint, usize)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    p(rng.gen_range(53.25..53.42), rng.gen_range(-6.45..-6.08)),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_errors() {
        let t: KdTree<usize> = KdTree::build(Vec::new());
        assert!(t.is_empty());
        assert!(matches!(
            t.nearest(p(53.3, -6.2)),
            Err(GeoError::EmptyIndex)
        ));
        assert!(matches!(
            t.k_nearest(p(53.3, -6.2), 3),
            Err(GeoError::EmptyIndex)
        ));
    }

    #[test]
    fn single_point_tree() {
        let t = KdTree::build(vec![(p(53.35, -6.26), 7usize)]);
        let (_, id, d) = t.nearest(p(53.36, -6.25)).unwrap();
        assert_eq!(*id, 7);
        assert!(d > 0.0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let t = KdTree::build(vec![(p(53.35, -6.26), 7usize)]);
        assert!(t.k_nearest(p(53.35, -6.26), 0).unwrap().is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(800, 11);
        let t = KdTree::build(pts.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..300 {
            let q = p(rng.gen_range(53.25..53.42), rng.gen_range(-6.45..-6.08));
            let (_, _, got) = t.nearest(q).unwrap();
            let want = pts
                .iter()
                .map(|(pt, _)| haversine_m(q, *pt))
                .fold(f64::INFINITY, f64::min);
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }

    #[test]
    fn k_nearest_is_sorted_and_correct() {
        let pts = random_points(300, 5);
        let t = KdTree::build(pts.clone());
        let q = p(53.33, -6.25);
        let k = 10;
        let got = t.k_nearest(q, k).unwrap();
        assert_eq!(got.len(), k);
        // Sorted ascending.
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        // Matches brute force top-k distances.
        let mut all: Vec<f64> = pts.iter().map(|(pt, _)| haversine_m(q, *pt)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, (_, _, d)) in got.iter().enumerate() {
            assert!((d - all[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let pts = random_points(5, 3);
        let t = KdTree::build(pts);
        let got = t.k_nearest(p(53.3, -6.2), 50).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = random_points(500, 21);
        let t = KdTree::build(pts.clone());
        let q = p(53.34, -6.26);
        for radius in [100.0, 500.0, 2_000.0, 10_000.0] {
            let got: Vec<usize> = t
                .within_radius(q, radius)
                .unwrap()
                .iter()
                .map(|(_, id, _)| **id)
                .collect();
            let want: Vec<usize> = pts
                .iter()
                .filter(|(pt, _)| haversine_m(q, *pt) <= radius)
                .map(|(_, id)| *id)
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            let mut want_sorted = want.clone();
            want_sorted.sort_unstable();
            assert_eq!(got_sorted, want_sorted, "radius {radius}");
        }
    }

    #[test]
    fn within_radius_rejects_bad_radius() {
        let t = KdTree::build(vec![(p(53.35, -6.26), 0usize)]);
        assert!(t.within_radius(p(53.3, -6.2), -5.0).is_err());
    }

    #[test]
    fn duplicate_points_are_all_returned() {
        let dup = p(53.35, -6.26);
        let t = KdTree::build(vec![(dup, 1usize), (dup, 2usize), (dup, 3usize)]);
        let got = t.within_radius(dup, 0.5).unwrap();
        assert_eq!(got.len(), 3);
    }
}
