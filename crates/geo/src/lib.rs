//! # moby-geo
//!
//! Geospatial primitives for the `moby-expansion` bike-sharing analysis
//! toolkit.
//!
//! The paper ("Graph-Based Optimisation of Network Expansion in a Dockless
//! Bike Sharing System", ICDE 2024) relies on a small set of geospatial
//! operations:
//!
//! * the **Haversine** great-circle distance (paper eq. 1) between rental /
//!   return locations, used as the metric for hierarchical agglomerative
//!   clustering and for all proximity rules (50 m, 100 m, 250 m thresholds);
//! * **spatial containment** checks used while cleaning the raw data
//!   ("locations outside Dublin", "locations that are not on land");
//! * **nearest-neighbour** queries used to re-assign trips from rejected
//!   candidate stations to the closest fixed station.
//!
//! This crate provides those primitives from scratch — no external
//! geospatial dependency — together with two spatial indexes (a uniform
//! grid and a 2-d k-d tree) so that nearest-neighbour queries over tens of
//! thousands of locations stay fast.
//!
//! ## Quick example
//!
//! ```
//! use moby_geo::{GeoPoint, haversine_m};
//!
//! // O'Connell Bridge and Trinity College, Dublin.
//! let a = GeoPoint::new(53.3473, -6.2591).unwrap();
//! let b = GeoPoint::new(53.3438, -6.2546).unwrap();
//! let d = haversine_m(a, b);
//! assert!(d > 300.0 && d < 600.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod distance;
mod error;
mod grid;
mod kdtree;
mod point;
mod polygon;
mod units;

pub use bbox::BoundingBox;
pub use distance::{
    bearing_deg, destination_point, equirectangular_m, haversine_m, haversine_rad, EARTH_RADIUS_M,
};
pub use error::GeoError;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use point::GeoPoint;
pub use polygon::{dublin_boundary, dublin_land_mask, Polygon};
pub use units::Meters;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, GeoError>;
