//! Error type for geospatial operations.

use std::fmt;

/// Errors produced by geospatial primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude was outside the valid range `[-90, 90]` or was not finite.
    InvalidLatitude(f64),
    /// A longitude was outside the valid range `[-180, 180]` or was not finite.
    InvalidLongitude(f64),
    /// A polygon needs at least three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// A spatial query was issued against an empty index.
    EmptyIndex,
    /// A radius or distance parameter was negative or not finite.
    InvalidDistance(f64),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(
                    f,
                    "invalid latitude {v}: must be finite and within [-90, 90]"
                )
            }
            GeoError::InvalidLongitude(v) => {
                write!(
                    f,
                    "invalid longitude {v}: must be finite and within [-180, 180]"
                )
            }
            GeoError::DegeneratePolygon { vertices } => {
                write!(f, "polygon needs at least 3 vertices, got {vertices}")
            }
            GeoError::EmptyIndex => write!(f, "spatial query issued against an empty index"),
            GeoError::InvalidDistance(v) => {
                write!(f, "invalid distance {v}: must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            GeoError::InvalidLatitude(91.0).to_string(),
            GeoError::InvalidLongitude(-200.0).to_string(),
            GeoError::DegeneratePolygon { vertices: 2 }.to_string(),
            GeoError::EmptyIndex.to_string(),
            GeoError::InvalidDistance(-1.0).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&GeoError::EmptyIndex);
    }
}
