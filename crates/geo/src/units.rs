//! Lightweight distance unit newtype.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A distance in metres.
///
/// The paper expresses every threshold in metres (50 m, 100 m, 250 m) while
/// Algorithm 1 writes the secondary distance as `0.25` (kilometres). Using a
/// newtype keeps the unit explicit at API boundaries and prevents mixing the
/// two conventions.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Meters(pub f64);

impl Meters {
    /// Construct from a value in kilometres.
    pub fn from_km(km: f64) -> Self {
        Meters(km * 1000.0)
    }

    /// The raw value in metres.
    pub fn as_m(&self) -> f64 {
        self.0
    }

    /// The value in kilometres.
    pub fn as_km(&self) -> f64 {
        self.0 / 1000.0
    }

    /// Whether the value is finite and non-negative — the only values that
    /// make sense as thresholds.
    pub fn is_valid_threshold(&self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} km", self.as_km())
        } else {
            write!(f, "{:.1} m", self.0)
        }
    }
}

impl Add for Meters {
    type Output = Meters;
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl Sub for Meters {
    type Output = Meters;
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl Div<f64> for Meters {
    type Output = Meters;
    fn div(self, rhs: f64) -> Meters {
        Meters(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn km_round_trip() {
        let m = Meters::from_km(0.25);
        assert_eq!(m.as_m(), 250.0);
        assert_eq!(m.as_km(), 0.25);
    }

    #[test]
    fn arithmetic() {
        assert_eq!((Meters(100.0) + Meters(50.0)).as_m(), 150.0);
        assert_eq!((Meters(100.0) - Meters(50.0)).as_m(), 50.0);
        assert_eq!((Meters(100.0) * 2.0).as_m(), 200.0);
        assert_eq!((Meters(100.0) / 4.0).as_m(), 25.0);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(Meters(50.0).to_string(), "50.0 m");
        assert_eq!(Meters(1500.0).to_string(), "1.50 km");
    }

    #[test]
    fn threshold_validity() {
        assert!(Meters(0.0).is_valid_threshold());
        assert!(Meters(250.0).is_valid_threshold());
        assert!(!Meters(-1.0).is_valid_threshold());
        assert!(!Meters(f64::NAN).is_valid_threshold());
        assert!(!Meters(f64::INFINITY).is_valid_threshold());
    }
}
