//! Great-circle distance and bearing calculations.
//!
//! The Haversine formula is the distance metric mandated by the paper
//! (eq. 1): it "remains accurate for computations at small distances unlike
//! calculations based on the spherical law of cosine". All station-placement
//! thresholds (50 m, 100 m, 250 m) are evaluated with [`haversine_m`].

use crate::GeoPoint;

/// Mean Earth radius in metres (IUGG mean radius R1).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Haversine great-circle distance between two points, in metres.
///
/// Implements paper eq. 1:
///
/// ```text
/// d = 2 R asin( sqrt( sin²((φ1-φ2)/2) + cos φ1 cos φ2 sin²((λ1-λ2)/2) ) )
/// ```
///
/// The formula is numerically stable for the small (metre-scale) distances
/// that dominate this workload.
#[inline]
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    haversine_rad(a.lat_rad(), a.lon_rad(), b.lat_rad(), b.lon_rad())
}

/// Haversine distance from raw radian coordinates, in metres.
///
/// This variant is exposed so that hot loops (e.g. the HAC distance matrix)
/// can pre-convert coordinates to radians once.
#[inline]
pub fn haversine_rad(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let dlat = (lat1 - lat2) * 0.5;
    let dlon = (lon1 - lon2) * 0.5;
    let h = dlat.sin().powi(2) + lat1.cos() * lat2.cos() * dlon.sin().powi(2);
    // Clamp to guard against floating point drift pushing sqrt(h) above 1.
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Fast equirectangular approximation of the distance between two points,
/// in metres.
///
/// Accurate to well under 0.1 % at city scale; used only where an index
/// needs a cheap lower bound (the exact Haversine is always used for the
/// final rule checks).
#[inline]
pub fn equirectangular_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let mean_lat = 0.5 * (a.lat_rad() + b.lat_rad());
    let x = (b.lon_rad() - a.lon_rad()) * mean_lat.cos();
    let y = b.lat_rad() - a.lat_rad();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees in
/// `[0, 360)`.
pub fn bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// The point reached by travelling `distance_m` metres from `start` along
/// the given initial `bearing_deg` (degrees clockwise from north).
///
/// Used by the synthetic data generator to scatter dockless drop-off
/// locations around station centroids.
pub fn destination_point(start: GeoPoint, bearing_deg: f64, distance_m: f64) -> GeoPoint {
    let ang = distance_m / EARTH_RADIUS_M;
    let brg = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();

    let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
    let lon2 =
        lon1 + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());

    // Normalise longitude to [-180, 180] and clamp latitude defensively.
    let mut lon_deg = lon2.to_degrees();
    if lon_deg > 180.0 {
        lon_deg -= 360.0;
    } else if lon_deg < -180.0 {
        lon_deg += 360.0;
    }
    let lat_deg = lat2.to_degrees().clamp(-90.0, 90.0);
    GeoPoint::new(lat_deg, lon_deg).expect("destination point is always in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn zero_distance_to_self() {
        let a = p(53.35, -6.26);
        assert_eq!(haversine_m(a, a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = p(53.35, -6.26);
        let b = p(53.29, -6.13);
        assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_dublin_to_cork() {
        // Dublin (53.3498, -6.2603) to Cork (51.8985, -8.4756) ≈ 220 km.
        let d = haversine_m(p(53.3498, -6.2603), p(51.8985, -8.4756));
        assert!((d - 220_000.0).abs() < 5_000.0, "got {d}");
    }

    #[test]
    fn known_distance_equator_degree() {
        // One degree of longitude at the equator ≈ 111.19 km.
        let d = haversine_m(p(0.0, 0.0), p(0.0, 1.0));
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn small_distance_accuracy() {
        // ~50 m north of a point: 50 / 111_195 degrees of latitude.
        let a = p(53.35, -6.26);
        let b = p(53.35 + 50.0 / 111_195.0, -6.26);
        let d = haversine_m(a, b);
        assert!((d - 50.0).abs() < 0.05, "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = p(53.3498, -6.2603);
        let b = p(53.3600, -6.3200);
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        assert!((h - e).abs() / h < 1e-3, "h={h} e={e}");
    }

    #[test]
    fn antipodal_does_not_panic() {
        let d = haversine_m(p(0.0, 0.0), p(0.0, 180.0));
        // Half the Earth's circumference ≈ 20,015 km.
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_M).abs() < 1.0);
    }

    #[test]
    fn bearing_north_east_south_west() {
        let o = p(53.0, -6.0);
        assert!((bearing_deg(o, p(54.0, -6.0)) - 0.0).abs() < 1e-6);
        let e = bearing_deg(o, p(53.0, -5.0));
        assert!((e - 90.0).abs() < 1.0, "east bearing {e}");
        let s = bearing_deg(o, p(52.0, -6.0));
        assert!((s - 180.0).abs() < 1e-6, "south bearing {s}");
        let w = bearing_deg(o, p(53.0, -7.0));
        assert!((w - 270.0).abs() < 1.0, "west bearing {w}");
    }

    #[test]
    fn destination_point_round_trip() {
        let start = p(53.3498, -6.2603);
        for (brg, dist) in [(0.0, 100.0), (90.0, 250.0), (215.0, 1234.5), (359.0, 40.0)] {
            let dest = destination_point(start, brg, dist);
            let d = haversine_m(start, dest);
            assert!(
                (d - dist).abs() < 0.01,
                "bearing {brg}, want {dist}, got {d}"
            );
        }
    }

    #[test]
    fn destination_point_zero_distance_is_start() {
        let start = p(53.3498, -6.2603);
        let dest = destination_point(start, 45.0, 0.0);
        assert!(haversine_m(start, dest) < 1e-6);
    }
}
