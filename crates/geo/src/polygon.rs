//! Simple polygons and point-in-polygon tests.
//!
//! The cleaning pipeline in the paper removes "locations that are not on
//! land" and "locations outside Dublin". We model both rules with simple
//! (non-self-intersecting) polygons and an even–odd ray-casting containment
//! test. The polygons shipped here are deliberately simplified — the rule
//! *semantics* (spatial containment filter) are what matter for the
//! reproduction, not cartographic fidelity.

use crate::{BoundingBox, GeoError, GeoPoint, Result};
use serde::{Deserialize, Serialize};

/// A simple polygon on the surface of the Earth, stored as an ordered list
/// of vertices (implicitly closed).
///
/// Containment uses the even–odd ray-casting rule in lat/lon space, which is
/// accurate for city-scale polygons far from the poles and the antimeridian.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<GeoPoint>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Create a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegeneratePolygon`] when fewer than three vertices
    /// are supplied.
    pub fn new(vertices: Vec<GeoPoint>) -> Result<Self> {
        if vertices.len() < 3 {
            return Err(GeoError::DegeneratePolygon {
                vertices: vertices.len(),
            });
        }
        let bbox = BoundingBox::from_points(&vertices).expect("non-empty");
        Ok(Self { vertices, bbox })
    }

    /// The polygon's vertices, in order.
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// The polygon's bounding box.
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// Even–odd ray-casting containment test.
    ///
    /// Points exactly on an edge may be classified either way (floating
    /// point); the cleaning rules only care about gross containment so this
    /// is acceptable.
    pub fn contains(&self, p: GeoPoint) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let (px, py) = (p.lon(), p.lat());
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = (self.vertices[i].lon(), self.vertices[i].lat());
            let (xj, yj) = (self.vertices[j].lon(), self.vertices[j].lat());
            let crosses = (yi > py) != (yj > py);
            if crosses {
                let x_at_y = (xj - xi) * (py - yi) / (yj - yi) + xi;
                if px < x_at_y {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Approximate planar area of the polygon in square kilometres, using an
    /// equirectangular projection centred on the polygon. Good enough for
    /// sanity checks and reporting.
    pub fn area_km2(&self) -> f64 {
        let centre_lat = self.bbox.center().lat().to_radians();
        let kx = 111.195 * centre_lat.cos(); // km per degree longitude
        let ky = 111.195; // km per degree latitude
        let mut sum = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let a = &self.vertices[i];
            let b = &self.vertices[(i + 1) % n];
            let (ax, ay) = (a.lon() * kx, a.lat() * ky);
            let (bx, by) = (b.lon() * kx, b.lat() * ky);
            sum += ax * by - bx * ay;
        }
        (sum * 0.5).abs()
    }
}

/// A generous polygon around the greater Dublin area served by Moby Bikes.
///
/// Vertices trace (approximately) Swords → Howth → Dalkey → Bray →
/// Tallaght → Lucan → Blanchardstown → back to Swords.
pub fn dublin_boundary() -> Polygon {
    let coords = [
        (53.455, -6.22), // Swords
        (53.39, -6.05),  // Howth Head
        (53.27, -6.09),  // Dalkey / Killiney
        (53.20, -6.11),  // Bray
        (53.27, -6.40),  // Tallaght
        (53.35, -6.47),  // Lucan
        (53.42, -6.40),  // Blanchardstown north
    ];
    let vertices = coords
        .iter()
        .map(|&(lat, lon)| GeoPoint::new(lat, lon).expect("static vertex valid"))
        .collect();
    Polygon::new(vertices).expect("static polygon has >= 3 vertices")
}

/// A simplified "land" mask for the Dublin area: the Dublin boundary with
/// the Dublin Bay wedge cut out, so that points in the Irish Sea / Dublin
/// Bay are classified as *not on land*.
///
/// The bay is approximated by the triangle (Howth Head, Dún Laoghaire pier,
/// Dublin Port), which covers the water body between the north and south
/// bulls.
pub fn dublin_land_mask() -> LandMask {
    let bay = Polygon::new(vec![
        GeoPoint::new(53.384, -6.066).expect("valid"), // Howth Head
        GeoPoint::new(53.302, -6.115).expect("valid"), // Dún Laoghaire pier
        GeoPoint::new(53.346, -6.195).expect("valid"), // Dublin Port mouth
    ])
    .expect("triangle");
    LandMask {
        boundary: dublin_boundary(),
        water: vec![bay],
    }
}

/// A land mask: a service-area boundary with zero or more water polygons
/// subtracted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandMask {
    boundary: Polygon,
    water: Vec<Polygon>,
}

impl LandMask {
    /// Construct a custom land mask.
    pub fn new(boundary: Polygon, water: Vec<Polygon>) -> Self {
        Self { boundary, water }
    }

    /// The outer service-area boundary.
    pub fn boundary(&self) -> &Polygon {
        &self.boundary
    }

    /// The subtracted water polygons.
    pub fn water(&self) -> &[Polygon] {
        &self.water
    }

    /// Whether the point is inside the boundary (i.e. in the service area at
    /// all, on land or not).
    pub fn in_service_area(&self, p: GeoPoint) -> bool {
        self.boundary.contains(p)
    }

    /// Whether the point is on land: inside the boundary and not inside any
    /// water polygon.
    pub fn on_land(&self, p: GeoPoint) -> bool {
        self.boundary.contains(p) && !self.water.iter().any(|w| w.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_degenerate_polygon() {
        assert!(matches!(
            Polygon::new(vec![p(53.0, -6.0), p(53.1, -6.1)]),
            Err(GeoError::DegeneratePolygon { vertices: 2 })
        ));
    }

    #[test]
    fn unit_square_containment() {
        let sq = Polygon::new(vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)]).unwrap();
        assert!(sq.contains(p(0.5, 0.5)));
        assert!(!sq.contains(p(1.5, 0.5)));
        assert!(!sq.contains(p(-0.5, 0.5)));
        assert!(!sq.contains(p(0.5, 1.5)));
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape: the notch at the top-right must be outside.
        let l = Polygon::new(vec![
            p(0.0, 0.0),
            p(0.0, 2.0),
            p(1.0, 2.0),
            p(1.0, 1.0),
            p(2.0, 1.0),
            p(2.0, 0.0),
        ])
        .unwrap();
        assert!(l.contains(p(0.5, 0.5)));
        assert!(l.contains(p(0.5, 1.5)));
        assert!(l.contains(p(1.5, 0.5)));
        assert!(!l.contains(p(1.5, 1.5)), "notch should be outside");
    }

    #[test]
    fn dublin_boundary_contains_city_centre() {
        let dub = dublin_boundary();
        assert!(dub.contains(p(53.3498, -6.2603))); // O'Connell St
        assert!(dub.contains(p(53.3561, -6.3298))); // Phoenix Park
        assert!(dub.contains(p(53.2945, -6.1336))); // Dún Laoghaire town
        assert!(!dub.contains(p(51.8985, -8.4756))); // Cork
        assert!(!dub.contains(p(53.52, -6.26))); // well north of Swords
    }

    #[test]
    fn dublin_boundary_area_is_plausible() {
        // Greater Dublin service polygon should be a few hundred km².
        let a = dublin_boundary().area_km2();
        assert!(a > 150.0 && a < 900.0, "area {a}");
    }

    #[test]
    fn land_mask_excludes_dublin_bay() {
        let mask = dublin_land_mask();
        assert!(mask.on_land(p(53.3498, -6.2603))); // city centre
        assert!(mask.on_land(p(53.3561, -6.3298))); // Phoenix Park
                                                    // Middle of Dublin Bay.
        let bay_point = p(53.335, -6.13);
        assert!(mask.in_service_area(bay_point));
        assert!(!mask.on_land(bay_point), "bay should not be land");
        // Outside the service area entirely.
        assert!(!mask.on_land(p(53.6, -6.2)));
        assert!(!mask.in_service_area(p(53.6, -6.2)));
    }

    #[test]
    fn bounding_box_matches_vertices() {
        let sq = Polygon::new(vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)]).unwrap();
        let bb = sq.bounding_box();
        assert_eq!(bb.min_lat(), 0.0);
        assert_eq!(bb.max_lat(), 1.0);
    }

    #[test]
    fn unit_square_area() {
        // 1° x 1° square at the equator ≈ 111.195² km² (equirectangular).
        let sq = Polygon::new(vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)]).unwrap();
        let a = sq.area_km2();
        let expected = 111.195 * 111.195 * (0.5_f64.to_radians().cos());
        assert!(
            (a - expected).abs() / expected < 0.01,
            "area {a} vs {expected}"
        );
    }
}
