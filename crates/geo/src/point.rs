//! Validated geographic points.

use crate::{GeoError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated geographic coordinate (WGS-84 latitude / longitude, degrees).
///
/// `GeoPoint` guarantees that the latitude is within `[-90, 90]`, the
/// longitude within `[-180, 180]`, and both values are finite. Downstream
/// code (distance functions, spatial indexes, clustering) relies on these
/// invariants, which is why construction goes through [`GeoPoint::new`].
///
/// The type is `Copy` and 16 bytes; it is passed by value everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Create a point, validating the coordinate ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// if either component is non-finite or out of range.
    pub fn new(lat: f64, lon: f64) -> Result<Self> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(Self { lat, lon })
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// The centroid (arithmetic mean of latitude and longitude) of a set of
    /// points.
    ///
    /// For the small spatial extents handled here (a city), the arithmetic
    /// mean is an adequate centroid; the error versus a true spherical
    /// centroid is far below the 50 m thresholds used by the paper.
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(points: &[GeoPoint]) -> Option<GeoPoint> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let lat = points.iter().map(|p| p.lat).sum::<f64>() / n;
        let lon = points.iter().map(|p| p.lon).sum::<f64>() / n;
        // The mean of valid coordinates is always valid.
        Some(GeoPoint { lat, lon })
    }

    /// Weighted centroid. `weights` must be the same length as `points` and
    /// contain non-negative finite values; returns `None` otherwise or when
    /// the total weight is zero.
    pub fn weighted_centroid(points: &[GeoPoint], weights: &[f64]) -> Option<GeoPoint> {
        if points.is_empty() || points.len() != weights.len() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let lat = points
            .iter()
            .zip(weights)
            .map(|(p, w)| p.lat * w)
            .sum::<f64>()
            / total;
        let lon = points
            .iter()
            .zip(weights)
            .map(|(p, w)| p.lon * w)
            .sum::<f64>()
            / total;
        Some(GeoPoint { lat, lon })
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_point_roundtrips() {
        let p = GeoPoint::new(53.35, -6.26).unwrap();
        assert_eq!(p.lat(), 53.35);
        assert_eq!(p.lon(), -6.26);
    }

    #[test]
    fn rejects_out_of_range_latitude() {
        assert!(matches!(
            GeoPoint::new(90.01, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(-90.01, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_longitude() {
        assert!(matches!(
            GeoPoint::new(0.0, 180.5),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(0.0, -180.5),
            Err(GeoError::InvalidLongitude(_))
        ));
    }

    #[test]
    fn rejects_nan_and_infinite() {
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::NAN).is_err());
        assert!(GeoPoint::new(f64::INFINITY, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn accepts_boundary_values() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(GeoPoint::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn radians_conversion() {
        let p = GeoPoint::new(45.0, 90.0).unwrap();
        assert!((p.lat_rad() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((p.lon_rad() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(GeoPoint::centroid(&[]).is_none());
    }

    #[test]
    fn centroid_of_single_point_is_itself() {
        let p = GeoPoint::new(53.0, -6.0).unwrap();
        let c = GeoPoint::centroid(&[p]).unwrap();
        assert_eq!(c, p);
    }

    #[test]
    fn centroid_is_mean() {
        let a = GeoPoint::new(53.0, -6.0).unwrap();
        let b = GeoPoint::new(54.0, -7.0).unwrap();
        let c = GeoPoint::centroid(&[a, b]).unwrap();
        assert!((c.lat() - 53.5).abs() < 1e-12);
        assert!((c.lon() + 6.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_rules() {
        let a = GeoPoint::new(53.0, -6.0).unwrap();
        let b = GeoPoint::new(54.0, -7.0).unwrap();
        // All weight on b.
        let c = GeoPoint::weighted_centroid(&[a, b], &[0.0, 2.0]).unwrap();
        assert!((c.lat() - 54.0).abs() < 1e-12);
        // Mismatched lengths / zero weight / negative weight are rejected.
        assert!(GeoPoint::weighted_centroid(&[a, b], &[1.0]).is_none());
        assert!(GeoPoint::weighted_centroid(&[a, b], &[0.0, 0.0]).is_none());
        assert!(GeoPoint::weighted_centroid(&[a, b], &[-1.0, 2.0]).is_none());
    }

    #[test]
    fn display_is_stable() {
        let p = GeoPoint::new(53.349805, -6.26031).unwrap();
        assert_eq!(p.to_string(), "(53.349805, -6.260310)");
    }
}
