//! A uniform-cell spatial hash index.
//!
//! The grid index answers radius queries ("every location within 50 m of a
//! fixed station") and nearest-neighbour queries ("closest station to this
//! rejected candidate") in roughly O(1) per query for city-scale data. It is
//! the workhorse index used by the cleaning pipeline, the constrained
//! clustering pre-assignment, and the trip re-assignment step.

use crate::{haversine_m, GeoError, GeoPoint, Result};
use std::collections::HashMap;

/// Approximate metres per degree of latitude.
const M_PER_DEG_LAT: f64 = 111_195.0;

/// A spatial hash over uniform latitude/longitude cells, mapping points to
/// caller-supplied payloads of type `T`.
///
/// The cell size is chosen in metres at construction; all distance
/// computations inside queries use the exact Haversine distance, the grid
/// only prunes candidates.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_m: f64,
    cos_ref_lat: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    entries: Vec<(GeoPoint, T)>,
}

impl<T> GridIndex<T> {
    /// Create an empty index with the given cell edge length in metres.
    ///
    /// `reference_lat_deg` is used to convert longitude degrees to metres;
    /// pass the approximate latitude of the working area (Dublin ≈ 53.35).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] if the cell size is not a
    /// positive finite number.
    pub fn new(cell_m: f64, reference_lat_deg: f64) -> Result<Self> {
        if !cell_m.is_finite() || cell_m <= 0.0 {
            return Err(GeoError::InvalidDistance(cell_m));
        }
        Ok(Self {
            cell_m,
            cos_ref_lat: reference_lat_deg.to_radians().cos().max(1e-6),
            cells: HashMap::new(),
            entries: Vec::new(),
        })
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cell_of(&self, p: GeoPoint) -> (i64, i64) {
        let y = (p.lat() * M_PER_DEG_LAT / self.cell_m).floor() as i64;
        let x = (p.lon() * M_PER_DEG_LAT * self.cos_ref_lat / self.cell_m).floor() as i64;
        (y, x)
    }

    /// Insert a point with its payload.
    pub fn insert(&mut self, p: GeoPoint, payload: T) {
        let idx = self.entries.len();
        let cell = self.cell_of(p);
        self.entries.push((p, payload));
        self.cells.entry(cell).or_default().push(idx);
    }

    /// All payloads (with their points and exact distances) within
    /// `radius_m` of `query`, unsorted.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] for a negative or non-finite
    /// radius.
    pub fn within_radius(
        &self,
        query: GeoPoint,
        radius_m: f64,
    ) -> Result<Vec<(&GeoPoint, &T, f64)>> {
        if !radius_m.is_finite() || radius_m < 0.0 {
            return Err(GeoError::InvalidDistance(radius_m));
        }
        let mut out = Vec::new();
        let (cy, cx) = self.cell_of(query);
        let span = (radius_m / self.cell_m).ceil() as i64 + 1;
        for dy in -span..=span {
            for dx in -span..=span {
                if let Some(bucket) = self.cells.get(&(cy + dy, cx + dx)) {
                    for &i in bucket {
                        let (p, payload) = &self.entries[i];
                        let d = haversine_m(query, *p);
                        if d <= radius_m {
                            out.push((p, payload, d));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The nearest indexed point to `query`, together with its payload and
    /// the exact distance in metres.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyIndex`] when nothing has been inserted.
    pub fn nearest(&self, query: GeoPoint) -> Result<(&GeoPoint, &T, f64)> {
        if self.entries.is_empty() {
            return Err(GeoError::EmptyIndex);
        }
        let (cy, cx) = self.cell_of(query);
        let mut best: Option<(usize, f64)> = None;
        // Expand rings of cells until the best candidate cannot be beaten by
        // anything in a farther ring.
        let mut ring = 0i64;
        loop {
            let mut found_any = false;
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    // Only the outermost shell of the current ring.
                    if dy.abs() != ring && dx.abs() != ring {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(cy + dy, cx + dx)) {
                        found_any = true;
                        for &i in bucket {
                            let d = haversine_m(query, self.entries[i].0);
                            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                                best = Some((i, d));
                            }
                        }
                    }
                }
            }
            // Distance to the inner edge of the next ring, in metres.
            let ring_guard_m = ring as f64 * self.cell_m;
            if let Some((_, bd)) = best {
                if bd <= ring_guard_m {
                    break;
                }
            }
            ring += 1;
            // Safety stop: after covering the whole populated area we must
            // have found something (entries is non-empty). 40,000 km of
            // rings is unreachable in practice; bail out by scanning all.
            if ring as f64 * self.cell_m > 45_000_000.0 {
                break;
            }
            // If the grid is sparse we might wander for a while before
            // hitting a populated cell; fall back to a full scan once the
            // ring count gets silly relative to the number of cells.
            if !found_any && ring > 4 && (ring * ring) as usize > 4 * self.cells.len() + 64 {
                for (i, (p, _)) in self.entries.iter().enumerate() {
                    let d = haversine_m(query, *p);
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        best = Some((i, d));
                    }
                }
                break;
            }
        }
        let (i, d) = best.expect("non-empty index yields a nearest point");
        let (p, payload) = &self.entries[i];
        Ok((p, payload, d))
    }

    /// Iterate over all indexed `(point, payload)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&GeoPoint, &T)> {
        self.entries.iter().map(|(p, t)| (p, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn brute_nearest(pts: &[(GeoPoint, usize)], q: GeoPoint) -> (usize, f64) {
        pts.iter()
            .map(|(p, id)| (*id, haversine_m(q, *p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(GridIndex::<u32>::new(0.0, 53.0).is_err());
        assert!(GridIndex::<u32>::new(-5.0, 53.0).is_err());
        assert!(GridIndex::<u32>::new(f64::NAN, 53.0).is_err());
    }

    #[test]
    fn empty_index_nearest_errors() {
        let g = GridIndex::<u32>::new(100.0, 53.35).unwrap();
        assert!(matches!(
            g.nearest(p(53.3, -6.2)),
            Err(GeoError::EmptyIndex)
        ));
    }

    #[test]
    fn within_radius_respects_threshold() {
        let mut g = GridIndex::new(50.0, 53.35).unwrap();
        let base = p(53.3500, -6.2600);
        // ~0, ~55 m, ~111 m north of base.
        g.insert(base, 0u32);
        g.insert(p(53.3505, -6.2600), 1u32);
        g.insert(p(53.3510, -6.2600), 2u32);
        let near = g.within_radius(base, 60.0).unwrap();
        let ids: Vec<u32> = near.iter().map(|(_, id, _)| **id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
    }

    #[test]
    fn within_radius_rejects_bad_radius() {
        let g = GridIndex::<u32>::new(50.0, 53.35).unwrap();
        assert!(g.within_radius(p(53.3, -6.2), -1.0).is_err());
        assert!(g.within_radius(p(53.3, -6.2), f64::NAN).is_err());
    }

    #[test]
    fn nearest_matches_brute_force_on_random_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut g = GridIndex::new(200.0, 53.35).unwrap();
        let mut pts = Vec::new();
        for id in 0..500usize {
            let lat = rng.gen_range(53.25..53.42);
            let lon = rng.gen_range(-6.45..-6.08);
            let pt = p(lat, lon);
            g.insert(pt, id);
            pts.push((pt, id));
        }
        for _ in 0..200 {
            let q = p(rng.gen_range(53.25..53.42), rng.gen_range(-6.45..-6.08));
            let (_, got_id, got_d) = g.nearest(q).unwrap();
            let (want_id, want_d) = brute_nearest(&pts, q);
            assert!(
                (got_d - want_d).abs() < 1e-6,
                "query {q}: got {got_id}@{got_d}, want {want_id}@{want_d}"
            );
        }
    }

    #[test]
    fn nearest_works_for_far_away_query() {
        let mut g = GridIndex::new(100.0, 53.35).unwrap();
        g.insert(p(53.35, -6.26), 1u32);
        g.insert(p(53.36, -6.25), 2u32);
        // Query from Cork, ~220 km away, far outside populated cells.
        let (_, id, d) = g.nearest(p(51.8985, -8.4756)).unwrap();
        assert!(d > 200_000.0);
        assert!(*id == 1 || *id == 2);
    }

    #[test]
    fn len_and_iter() {
        let mut g = GridIndex::new(100.0, 53.35).unwrap();
        assert!(g.is_empty());
        g.insert(p(53.35, -6.26), "a");
        g.insert(p(53.36, -6.25), "b");
        assert_eq!(g.len(), 2);
        let collected: Vec<&str> = g.iter().map(|(_, v)| *v).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }
}
