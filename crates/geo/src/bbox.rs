//! Axis-aligned geographic bounding boxes.

use crate::{GeoError, GeoPoint, Result};
use serde::{Deserialize, Serialize};

/// An axis-aligned latitude/longitude bounding box.
///
/// Used by the data-cleaning pipeline ("locations outside Dublin") and as
/// the coarse filter in the spatial indexes. The box never crosses the
/// antimeridian — Dublin comfortably does not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// Build a bounding box from corner coordinates.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or out-of-range coordinates, and boxes where the
    /// minimum exceeds the maximum.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Result<Self> {
        // Validation piggybacks on GeoPoint.
        let _ = GeoPoint::new(min_lat, min_lon)?;
        let _ = GeoPoint::new(max_lat, max_lon)?;
        if min_lat > max_lat {
            return Err(GeoError::InvalidLatitude(min_lat));
        }
        if min_lon > max_lon {
            return Err(GeoError::InvalidLongitude(min_lon));
        }
        Ok(Self {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        })
    }

    /// The tight bounding box around a set of points. Returns `None` for an
    /// empty slice.
    pub fn from_points(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = Self {
            min_lat: first.lat(),
            max_lat: first.lat(),
            min_lon: first.lon(),
            max_lon: first.lon(),
        };
        for p in &points[1..] {
            bb.min_lat = bb.min_lat.min(p.lat());
            bb.max_lat = bb.max_lat.max(p.lat());
            bb.min_lon = bb.min_lon.min(p.lon());
            bb.max_lon = bb.max_lon.max(p.lon());
        }
        Some(bb)
    }

    /// The bounding box used by the cleaning pipeline to decide whether a
    /// location is plausibly within the greater Dublin service area.
    ///
    /// Covers the Moby service area generously: from Bray in the south to
    /// Swords in the north, and from the Irish Sea coast to Leixlip in the
    /// west.
    pub fn dublin() -> Self {
        Self {
            min_lat: 53.20,
            max_lat: 53.46,
            min_lon: -6.55,
            max_lon: -6.03,
        }
    }

    /// Minimum latitude (southern edge).
    pub fn min_lat(&self) -> f64 {
        self.min_lat
    }
    /// Maximum latitude (northern edge).
    pub fn max_lat(&self) -> f64 {
        self.max_lat
    }
    /// Minimum longitude (western edge).
    pub fn min_lon(&self) -> f64 {
        self.min_lon
    }
    /// Maximum longitude (eastern edge).
    pub fn max_lon(&self) -> f64 {
        self.max_lon
    }

    /// Whether the box contains the point (inclusive on all edges).
    #[inline]
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lat() >= self.min_lat
            && p.lat() <= self.max_lat
            && p.lon() >= self.min_lon
            && p.lon() <= self.max_lon
    }

    /// The centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            0.5 * (self.min_lat + self.max_lat),
            0.5 * (self.min_lon + self.max_lon),
        )
        .expect("centre of a valid box is valid")
    }

    /// A new box expanded by `margin_deg` degrees on every side, clamped to
    /// the valid coordinate range.
    pub fn expanded(&self, margin_deg: f64) -> Self {
        Self {
            min_lat: (self.min_lat - margin_deg).max(-90.0),
            max_lat: (self.max_lat + margin_deg).min(90.0),
            min_lon: (self.min_lon - margin_deg).max(-180.0),
            max_lon: (self.max_lon + margin_deg).min(180.0),
        }
    }

    /// Whether two boxes intersect (inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// Latitude span in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude span in degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn construction_validates_ordering() {
        assert!(BoundingBox::new(53.0, -6.5, 53.5, -6.0).is_ok());
        assert!(BoundingBox::new(53.5, -6.5, 53.0, -6.0).is_err());
        assert!(BoundingBox::new(53.0, -6.0, 53.5, -6.5).is_err());
    }

    #[test]
    fn dublin_contains_city_centre_not_cork() {
        let bb = BoundingBox::dublin();
        assert!(bb.contains(p(53.3498, -6.2603))); // O'Connell St
        assert!(bb.contains(p(53.2920, -6.1360))); // Dún Laoghaire
        assert!(!bb.contains(p(51.8985, -8.4756))); // Cork
        assert!(!bb.contains(p(53.2707, -9.0568))); // Galway
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [p(53.1, -6.4), p(53.4, -6.1), p(53.2, -6.3)];
        let bb = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(bb.min_lat(), 53.1);
        assert_eq!(bb.max_lat(), 53.4);
        assert_eq!(bb.min_lon(), -6.4);
        assert_eq!(bb.max_lon(), -6.1);
        for q in pts {
            assert!(bb.contains(q));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn center_and_spans() {
        let bb = BoundingBox::new(53.0, -6.4, 53.4, -6.0).unwrap();
        let c = bb.center();
        assert!((c.lat() - 53.2).abs() < 1e-12);
        assert!((c.lon() + 6.2).abs() < 1e-12);
        assert!((bb.lat_span() - 0.4).abs() < 1e-12);
        assert!((bb.lon_span() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn expanded_grows_and_clamps() {
        let bb = BoundingBox::new(89.5, 179.5, 90.0, 180.0)
            .unwrap()
            .expanded(1.0);
        assert_eq!(bb.max_lat(), 90.0);
        assert_eq!(bb.max_lon(), 180.0);
        assert!((bb.min_lat() - 88.5).abs() < 1e-12);
    }

    #[test]
    fn intersection_logic() {
        let a = BoundingBox::new(53.0, -6.4, 53.2, -6.2).unwrap();
        let b = BoundingBox::new(53.1, -6.3, 53.3, -6.1).unwrap();
        let c = BoundingBox::new(53.25, -6.1, 53.4, -6.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn boundary_points_are_contained() {
        let bb = BoundingBox::new(53.0, -6.4, 53.2, -6.2).unwrap();
        assert!(bb.contains(p(53.0, -6.4)));
        assert!(bb.contains(p(53.2, -6.2)));
    }
}
