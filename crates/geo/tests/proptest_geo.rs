//! Property-based tests for the geospatial primitives.

use moby_geo::{
    destination_point, equirectangular_m, haversine_m, BoundingBox, GeoPoint, GridIndex, KdTree,
};
use proptest::prelude::*;

/// Strategy producing points inside the greater Dublin bounding box, the
/// domain every pipeline component operates in.
fn dublin_point() -> impl Strategy<Value = GeoPoint> {
    (53.20f64..53.46, -6.55f64..-6.03)
        .prop_map(|(lat, lon)| GeoPoint::new(lat, lon).expect("in range"))
}

/// Strategy producing arbitrary valid points anywhere on Earth.
fn any_point() -> impl Strategy<Value = GeoPoint> {
    (-89.9f64..89.9, -179.9f64..179.9)
        .prop_map(|(lat, lon)| GeoPoint::new(lat, lon).expect("in range"))
}

proptest! {
    #[test]
    fn haversine_is_symmetric(a in any_point(), b in any_point()) {
        let ab = haversine_m(a, b);
        let ba = haversine_m(b, a);
        prop_assert!((ab - ba).abs() <= 1e-6 * ab.max(1.0));
    }

    #[test]
    fn haversine_is_nonnegative_and_zero_on_identity(a in any_point()) {
        prop_assert_eq!(haversine_m(a, a), 0.0);
    }

    #[test]
    fn haversine_triangle_inequality(a in any_point(), b in any_point(), c in any_point()) {
        // Great-circle distance is a metric; allow a small numeric slack.
        let ab = haversine_m(a, b);
        let bc = haversine_m(b, c);
        let ac = haversine_m(a, c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn haversine_bounded_by_half_circumference(a in any_point(), b in any_point()) {
        let d = haversine_m(a, b);
        let max = std::f64::consts::PI * moby_geo::EARTH_RADIUS_M;
        prop_assert!(d <= max + 1e-3);
    }

    #[test]
    fn equirectangular_close_to_haversine_in_dublin(a in dublin_point(), b in dublin_point()) {
        let h = haversine_m(a, b);
        let e = equirectangular_m(a, b);
        // Within 0.5% (or 1 m absolute for tiny distances).
        prop_assert!((h - e).abs() <= (h * 5e-3).max(1.0));
    }

    #[test]
    fn destination_point_distance_round_trip(
        start in dublin_point(),
        bearing in 0.0f64..360.0,
        dist in 0.0f64..20_000.0,
    ) {
        let dest = destination_point(start, bearing, dist);
        let d = haversine_m(start, dest);
        prop_assert!((d - dist).abs() < 0.5, "wanted {dist}, got {d}");
    }

    #[test]
    fn bbox_from_points_contains_all(points in prop::collection::vec(dublin_point(), 1..50)) {
        let bb = BoundingBox::from_points(&points).unwrap();
        for p in &points {
            prop_assert!(bb.contains(*p));
        }
    }

    #[test]
    fn centroid_inside_bounding_box(points in prop::collection::vec(dublin_point(), 1..50)) {
        let bb = BoundingBox::from_points(&points).unwrap();
        let c = GeoPoint::centroid(&points).unwrap();
        prop_assert!(bb.contains(c));
    }

    #[test]
    fn kdtree_nearest_equals_brute_force(
        points in prop::collection::vec(dublin_point(), 1..120),
        query in dublin_point(),
    ) {
        let items: Vec<(GeoPoint, usize)> =
            points.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = KdTree::build(items);
        let (_, _, got) = tree.nearest(query).unwrap();
        let want = points
            .iter()
            .map(|p| haversine_m(query, *p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn grid_within_radius_equals_brute_force(
        points in prop::collection::vec(dublin_point(), 1..120),
        query in dublin_point(),
        radius in 10.0f64..5_000.0,
    ) {
        let mut grid = GridIndex::new(250.0, 53.35).unwrap();
        for (i, p) in points.iter().enumerate() {
            grid.insert(*p, i);
        }
        let mut got: Vec<usize> = grid
            .within_radius(query, radius)
            .unwrap()
            .iter()
            .map(|(_, i, _)| **i)
            .collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| haversine_m(query, **p) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_k_nearest_sorted(
        points in prop::collection::vec(dublin_point(), 1..80),
        query in dublin_point(),
        k in 1usize..10,
    ) {
        let items: Vec<(GeoPoint, usize)> =
            points.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = KdTree::build(items);
        let got = tree.k_nearest(query, k).unwrap();
        prop_assert_eq!(got.len(), k.min(points.len()));
        for w in got.windows(2) {
            prop_assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn kdtree_k_nearest_distances_equal_brute_force(
        points in prop::collection::vec(dublin_point(), 1..100),
        query in dublin_point(),
        k in 1usize..12,
    ) {
        // Full top-k agreement, not just sortedness: the k-th nearest
        // distance must match a brute-force scan (the pruning bound must
        // never drop a true neighbour).
        let items: Vec<(GeoPoint, usize)> =
            points.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = KdTree::build(items);
        let got = tree.k_nearest(query, k).unwrap();
        let mut want: Vec<f64> = points.iter().map(|p| haversine_m(query, *p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), k.min(points.len()));
        for (i, (_, _, d)) in got.iter().enumerate() {
            prop_assert!(
                (d - want[i]).abs() < 1e-6,
                "rank {} distance {} vs brute force {}", i, d, want[i]
            );
        }
    }

    #[test]
    fn kdtree_within_radius_equals_brute_force(
        points in prop::collection::vec(dublin_point(), 1..100),
        query in dublin_point(),
        radius in 10.0f64..8_000.0,
    ) {
        let items: Vec<(GeoPoint, usize)> =
            points.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = KdTree::build(items);
        let mut got: Vec<usize> = tree
            .within_radius(query, radius)
            .unwrap()
            .iter()
            .map(|(_, i, _)| **i)
            .collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| haversine_m(query, **p) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_survives_degenerate_point_sets(
        cells in prop::collection::vec((0u32..4, 0u32..4), 1..60),
        query_cell in (0u32..4, 0u32..4),
        k in 1usize..8,
    ) {
        // Adversarial geometry: every point snapped to a tiny 4×4 lattice,
        // so duplicates, collinear runs and ties on the split axes are the
        // norm rather than the exception.
        let snap = |(i, j): (u32, u32)| {
            GeoPoint::new(53.30 + f64::from(i) * 0.01, -6.30 + f64::from(j) * 0.01).unwrap()
        };
        let points: Vec<GeoPoint> = cells.iter().map(|&c| snap(c)).collect();
        let query = snap(query_cell);
        let items: Vec<(GeoPoint, usize)> =
            points.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
        let tree = KdTree::build(items);
        // Nearest agrees with brute force even with exact ties.
        let (_, _, got) = tree.nearest(query).unwrap();
        let want = points
            .iter()
            .map(|p| haversine_m(query, *p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got - want).abs() < 1e-6);
        // k-nearest distances agree rank by rank.
        let knn = tree.k_nearest(query, k).unwrap();
        let mut all: Vec<f64> = points.iter().map(|p| haversine_m(query, *p)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(knn.len(), k.min(points.len()));
        for (i, (_, _, d)) in knn.iter().enumerate() {
            prop_assert!((d - all[i]).abs() < 1e-6);
        }
        // Zero-radius query returns exactly the duplicates of the query cell.
        let zero = tree.within_radius(query, 0.5).unwrap();
        let dups = points.iter().filter(|p| haversine_m(query, **p) <= 0.5).count();
        prop_assert_eq!(zero.len(), dups);
    }
}
