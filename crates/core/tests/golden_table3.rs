//! Golden snapshot of the paper's Table III on the seeded synthetic
//! dataset.
//!
//! The `small_test` synthetic config is fully seeded and the construction
//! path is deterministic at any thread count, so the rendered table is a
//! fixed artefact. Ingest/construction refactors that silently shift the
//! reported metrics — trip conservation, group breakdowns, distinct edge
//! counts — fail this test instead of slipping through; update the
//! snapshot only when a change to the *pipeline semantics* is intended.

use moby_core::candidate::build_candidate_network;
use moby_core::reassign::build_selected_network;
use moby_core::report::render_table3;
use moby_core::selection::select_stations;
use moby_core::ExpansionConfig;
use moby_data::clean::clean_dataset;
use moby_data::synth::{generate, SynthConfig};
use moby_data::trips::TripBatch;

/// The exact rendering (modulo line-trailing padding, which depends only
/// on the column widths, not the data).
const GOLDEN: &str = "\
TABLE III — SELECTED GRAPH
Stations           Count   Trips From     Trips To  Edges From    Edges To
Pre-existing          92         1471         1450        1137        1127
Selected              83          529          550         488         498
Total                175         2000                     1625
";

#[test]
fn table3_matches_golden_snapshot() {
    let ds = clean_dataset(&generate(&SynthConfig::small_test())).dataset;
    let cfg = ExpansionConfig::default();
    let net = build_candidate_network(&ds, &cfg).unwrap();
    let sel = select_stations(&net, &cfg).unwrap();
    let out = build_selected_network(&ds, &net, &sel).unwrap();
    let rendered = render_table3(&out.table);
    let got: Vec<&str> = rendered.lines().map(str::trim_end).collect();
    let want: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        got, want,
        "Table III drifted from the golden snapshot — if the pipeline \
         semantics changed intentionally, update GOLDEN"
    );
}

#[test]
fn table3_after_ingest_matches_full_rebuild_rendering() {
    // Ingesting a batch and re-rendering must agree with the table a
    // from-scratch network over the same rentals would report: replaying
    // every rental once more exactly doubles the trip counters and keeps
    // the distinct-edge counts fixed.
    let ds = clean_dataset(&generate(&SynthConfig::small_test())).dataset;
    let cfg = ExpansionConfig::default();
    let net = build_candidate_network(&ds, &cfg).unwrap();
    let sel = select_stations(&net, &cfg).unwrap();
    let mut out = build_selected_network(&ds, &net, &sel).unwrap();
    let before = out.table.clone();

    let mut batch = TripBatch::new();
    for k in 0..out.trips.len() {
        batch.push_keyed(
            out.trips.station_id(out.trips.src()[k]),
            out.trips.station_id(out.trips.dst()[k]),
            out.trips.day()[k],
            out.trips.hour()[k],
            out.trips.weights()[k],
        );
    }
    out.ingest_batch(&batch, Some(2)).unwrap();

    assert_eq!(out.table.total_trips, 2 * before.total_trips);
    assert_eq!(out.table.total_edges, before.total_edges);
    assert_eq!(
        out.table.pre_existing.trips_from,
        2 * before.pre_existing.trips_from
    );
    assert_eq!(out.table.selected.trips_to, 2 * before.selected.trips_to);
    assert_eq!(
        out.table.pre_existing.edges_from,
        before.pre_existing.edges_from
    );
    assert_eq!(out.table.selected.edges_to, before.selected.edges_to);
    let rendered = render_table3(&out.table);
    assert!(rendered.contains("4000"));
    assert!(rendered.contains("1625"));
}
