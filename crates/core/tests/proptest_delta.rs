//! Differential proptests for the incremental ingestion path.
//!
//! The contract under test (PR 4's tentpole): appending random trip
//! batches to a [`TripTable`] and advancing the frozen graphs via
//! `CsrDelta` / `apply_delta` / `apply_batch_all` is **bitwise equal** —
//! node table, offsets, targets, weights, cached degrees, edge counts,
//! total weight — to rebuilding everything in one shot from the
//! concatenated table via `build_dense_csr` / `build_all_from_trips`, at
//! 1/2/4 threads. Random cases are supplemented by the named edge cases:
//! empty batches, batches of only-duplicate edges, and batches
//! introducing only-new stations.

use moby_core::temporal::{apply_batch_all, build_all_from_trips, TemporalGraph};
use moby_data::trips::{TripBatch, TripTable};
use moby_graph::{build_dense_csr, CsrGraph};
use proptest::prelude::*;

/// A generated trip row: external endpoints, temporal keys, weight.
type Row = (u64, u64, u8, u8, f64);

/// Base-table station pool: ids 100..140 (even only, so "odd" ids can act
/// as never-seen stations in batches).
const BASE_POOL: [u64; 20] = [
    100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130, 132, 134, 136,
    138,
];

/// Strategy for one trip row. `wide` draws endpoints from a pool twice
/// the base table's, so batches routinely introduce new stations.
fn row(wide: bool) -> impl Strategy<Value = Row> {
    let ids = if wide { 40u64 } else { 20 };
    (0..ids, 0..ids, 0u8..7, 0u8..24, 0u32..1000).prop_map(move |(s, d, day, hour, w)| {
        (
            100 + 2 * (s % 20) + u64::from(s >= 20),
            100 + 2 * (d % 20) + u64::from(d >= 20),
            day,
            hour,
            w as f64 / 64.0 + 0.25,
        )
    })
}

/// Bit-strict equality between two frozen graphs.
fn assert_identical(got: &CsrGraph, want: &CsrGraph, what: &str) {
    assert_eq!(got.node_ids(), want.node_ids(), "{what}: node table");
    assert_eq!(got.offsets(), want.offsets(), "{what}: offsets");
    assert_eq!(got.edge_count(), want.edge_count(), "{what}: edge count");
    assert_eq!(
        got.total_weight().to_bits(),
        want.total_weight().to_bits(),
        "{what}: total weight"
    );
    for u in 0..want.node_count() {
        let (gt, gw) = got.row(u);
        let (wt, ww) = want.row(u);
        assert_eq!(gt, wt, "{what}: row {u} targets");
        for (a, b) in gw.iter().zip(ww) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: row {u} weights");
        }
        let (git, giw) = got.in_row(u);
        let (wit, wiw) = want.in_row(u);
        assert_eq!(git, wit, "{what}: in-row {u} targets");
        for (a, b) in giw.iter().zip(wiw) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: in-row {u} weights");
        }
        assert_eq!(
            got.strength(u).to_bits(),
            want.strength(u).to_bits(),
            "{what}: strength {u}"
        );
        assert_eq!(
            got.weighted_degree(u).to_bits(),
            want.weighted_degree(u).to_bits(),
            "{what}: weighted degree {u}"
        );
        assert_eq!(
            got.self_loop(u).to_bits(),
            want.self_loop(u).to_bits(),
            "{what}: self-loop {u}"
        );
    }
}

/// Build the base table over [`BASE_POOL`] (isolated stations included)
/// and push the base rows.
fn base_table(base_rows: &[Row]) -> TripTable {
    let mut table = TripTable::new(BASE_POOL.to_vec());
    for &(s, d, day, hour, w) in base_rows {
        let si = table.station_index(s).expect("base row in pool");
        let di = table.station_index(d).expect("base row in pool");
        table.push_keyed(si, di, day, hour, w);
    }
    table
}

/// Run the full differential check: incrementally apply `batches` on top
/// of `base_rows` at the given thread count, asserting after every batch
/// that the trip table, both trip graphs and all three temporal graphs
/// are bitwise equal to one-shot rebuilds from the concatenated data.
fn check_chain(base_rows: &[Row], batches: &[Vec<Row>], threads: usize) {
    let threads = Some(threads);
    let mut table = base_table(base_rows);
    let mut directed = build_dense_csr(
        true,
        table.station_ids().to_vec(),
        table.src(),
        table.dst(),
        table.weights(),
        threads,
    );
    let mut undirected = build_dense_csr(
        false,
        table.station_ids().to_vec(),
        table.src(),
        table.dst(),
        table.weights(),
        threads,
    );
    let mut temporals: Vec<TemporalGraph> = build_all_from_trips(&table, None, threads);
    let mut all_rows: Vec<Row> = base_rows.to_vec();

    for rows in batches {
        let mut batch = TripBatch::new();
        for &(s, d, day, hour, w) in rows {
            batch.push_keyed(s, d, day, hour, w);
        }
        let outcome = table.append_batch(&batch);
        all_rows.extend_from_slice(rows);

        // The incrementally appended table equals one built from scratch
        // over the union station set with every row pushed in order.
        let mut scratch_ids: Vec<u64> = BASE_POOL.to_vec();
        scratch_ids.extend(all_rows.iter().flat_map(|&(s, d, ..)| [s, d]));
        let mut scratch = TripTable::new(scratch_ids);
        for &(s, d, day, hour, w) in &all_rows {
            let si = scratch.station_index(s).unwrap();
            let di = scratch.station_index(d).unwrap();
            scratch.push_keyed(si, di, day, hour, w);
        }
        assert_eq!(table, scratch, "appended table diverged from scratch");

        // Graph deltas vs one-shot rebuilds.
        let bs = outcome.batch_start;
        let delta = moby_graph::CsrDelta::from_dense(
            true,
            table.station_ids().to_vec(),
            outcome.old_to_new.clone(),
            &table.src()[bs..],
            &table.dst()[bs..],
            &table.weights()[bs..],
        );
        directed = directed.apply_delta(&delta, threads);
        let delta = moby_graph::CsrDelta::from_dense(
            false,
            table.station_ids().to_vec(),
            outcome.old_to_new.clone(),
            &table.src()[bs..],
            &table.dst()[bs..],
            &table.weights()[bs..],
        );
        undirected = undirected.apply_delta(&delta, threads);
        temporals = apply_batch_all(temporals, &table, &outcome, None, threads);

        let want_directed = build_dense_csr(
            true,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            Some(1),
        );
        assert_identical(&directed, &want_directed, "directed");
        let want_undirected = build_dense_csr(
            false,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            Some(1),
        );
        assert_identical(&undirected, &want_undirected, "undirected");
        let want_temporals = build_all_from_trips(&table, None, Some(1));
        for (got, want) in temporals.iter().zip(&want_temporals) {
            assert_eq!(got.granularity, want.granularity);
            let name = got.granularity.graph_name();
            assert_identical(&got.csr, &want.csr, name);
            assert_eq!(got.layer_map, want.layer_map, "{name}: layer map");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn delta_chain_is_bitwise_equal_to_rebuild(
        base in prop::collection::vec(row(false), 0..120),
        batch1 in prop::collection::vec(row(true), 0..40),
        batch2 in prop::collection::vec(row(true), 0..40),
        batch3 in prop::collection::vec(row(true), 0..40),
    ) {
        for threads in [1usize, 2, 4] {
            check_chain(&base, &[batch1.clone(), batch2.clone(), batch3.clone()], threads);
        }
    }
}

#[test]
fn empty_batches_are_identity() {
    let base: Vec<Row> = vec![(100, 102, 0, 8, 1.0), (102, 104, 3, 17, 2.5)];
    for threads in [1usize, 2, 4] {
        check_chain(&base, &[vec![], vec![], vec![]], threads);
    }
}

#[test]
fn only_duplicate_edge_batches_merge_in_fold_order() {
    // Every batch row repeats an edge the base already has, at the same
    // temporal key — merged weights must continue the rebuild's fold.
    let base: Vec<Row> = vec![
        (100, 102, 0, 8, 1.0),
        (100, 102, 0, 8, 0.125),
        (104, 104, 6, 23, 2.0), // self-loop
    ];
    let dup: Vec<Row> = vec![
        (100, 102, 0, 8, 0.3),
        (100, 102, 0, 8, 0.7),
        (104, 104, 6, 23, 0.001),
        (100, 102, 0, 8, 1e-9),
    ];
    for threads in [1usize, 2, 4] {
        check_chain(&base, &[dup.clone(), dup.clone()], threads);
    }
}

#[test]
fn only_new_station_batches_interleave_into_the_intern_table() {
    // Batch endpoints are entirely disjoint from the base pool: odd ids
    // interleave between the even base ids, plus ids sorting before and
    // after the whole pool.
    let base: Vec<Row> = vec![(100, 102, 0, 8, 1.0), (136, 138, 4, 12, 3.0)];
    let fresh1: Vec<Row> = vec![(101, 103, 1, 9, 1.5), (1, 103, 2, 10, 0.5)];
    let fresh2: Vec<Row> = vec![(999, 1, 5, 20, 2.25), (101, 999, 6, 21, 0.75)];
    for threads in [1usize, 2, 4] {
        check_chain(&base, &[fresh1.clone(), fresh2.clone()], threads);
    }
}

#[test]
fn empty_base_table_accepts_batches() {
    let batches = vec![
        vec![(100u64, 101, 0, 8, 1.0), (101, 102, 1, 9, 2.0)],
        vec![],
        vec![(102u64, 100, 2, 10, 0.5)],
    ];
    for threads in [1usize, 2, 4] {
        check_chain(&[], &batches, threads);
    }
}
