//! Differential proptests for the windowed delta lifecycle.
//!
//! The contract under test (PR 7's tentpole): interleaving random trip
//! batches and window evictions over a [`TripTable`] — advancing the
//! frozen graphs via `CsrDelta` / `CsrEvict` / `apply_batch_all` /
//! `apply_evict_all` — is **bitwise equal** — node table, offsets,
//! targets, weights, cached degrees, edge counts, total weight, layer
//! maps — to rebuilding everything in one shot from the surviving table,
//! at 1/2/4 threads and 1/4 construction shards. Random chains are
//! supplemented by the named edge cases: evicting everything, evicting
//! nothing, pinned evictions that leave isolated stations, and a batch
//! re-adding a station the previous eviction compacted away.

use moby_core::detect::{
    detect_communities, refresh_communities, refresh_communities_active, DetectConfig,
};
use moby_core::temporal::{
    apply_batch_all, apply_evict_all, build_all_from_trips, build_all_from_trips_sharded,
    TemporalGraph,
};
use moby_data::trips::{TripBatch, TripTable, WindowStart};
use moby_graph::{build_dense_csr, CsrDelta, CsrEvict, CsrGraph};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

/// A generated trip row: external endpoints, temporal keys, weight.
type Row = (u64, u64, u8, u8, f64);

/// One step of a windowed chain.
#[derive(Clone, Debug)]
enum Op {
    /// Append a batch of rows.
    Ingest(Vec<Row>),
    /// Evict every row before the window start.
    Evict(WindowStart),
}

/// Base-table station pool: ids 100..140 (even only, so "odd" ids can act
/// as never-seen stations in batches).
const BASE_POOL: [u64; 20] = [
    100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130, 132, 134, 136,
    138,
];

/// Strategy for one trip row. `wide` draws endpoints from a pool twice
/// the base table's, so batches routinely introduce new stations.
fn row(wide: bool) -> impl Strategy<Value = Row> {
    let ids = if wide { 40u64 } else { 20 };
    (0..ids, 0..ids, 0u8..7, 0u8..24, 0u32..1000).prop_map(move |(s, d, day, hour, w)| {
        (
            100 + 2 * (s % 20) + u64::from(s >= 20),
            100 + 2 * (d % 20) + u64::from(d >= 20),
            day,
            hour,
            w as f64 / 64.0 + 0.25,
        )
    })
}

/// Strategy for one chain step: mostly ingests, with evictions mixed in
/// (the vendored proptest has no `prop_oneof`, so the branch is encoded
/// as a drawn selector).
fn op() -> impl Strategy<Value = Op> {
    (
        0u8..3,
        prop::collection::vec(row(true), 0..30),
        0u8..7,
        0u8..24,
    )
        .prop_map(|(kind, rows, d, h)| {
            if kind < 2 {
                Op::Ingest(rows)
            } else {
                Op::Evict(WindowStart::new(d, h))
            }
        })
}

/// Bit-strict equality between two frozen graphs.
fn assert_identical(got: &CsrGraph, want: &CsrGraph, what: &str) {
    assert_eq!(got.node_ids(), want.node_ids(), "{what}: node table");
    assert_eq!(got.offsets(), want.offsets(), "{what}: offsets");
    assert_eq!(got.edge_count(), want.edge_count(), "{what}: edge count");
    assert_eq!(
        got.total_weight().to_bits(),
        want.total_weight().to_bits(),
        "{what}: total weight"
    );
    for u in 0..want.node_count() {
        let (gt, gw) = got.row(u);
        let (wt, ww) = want.row(u);
        assert_eq!(gt, wt, "{what}: row {u} targets");
        for (a, b) in gw.iter().zip(ww) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: row {u} weights");
        }
        let (git, giw) = got.in_row(u);
        let (wit, wiw) = want.in_row(u);
        assert_eq!(git, wit, "{what}: in-row {u} targets");
        for (a, b) in giw.iter().zip(wiw) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: in-row {u} weights");
        }
        assert_eq!(
            got.strength(u).to_bits(),
            want.strength(u).to_bits(),
            "{what}: strength {u}"
        );
    }
}

/// Build the base table over [`BASE_POOL`] (isolated stations included)
/// and push the base rows.
fn base_table(base_rows: &[Row]) -> TripTable {
    let mut table = TripTable::new(BASE_POOL.to_vec());
    for &(s, d, day, hour, w) in base_rows {
        let si = table.station_index(s).expect("base row in pool");
        let di = table.station_index(d).expect("base row in pool");
        table.push_keyed(si, di, day, hour, w);
    }
    table
}

/// Assert the incrementally-advanced state equals one-shot rebuilds from
/// the model: scratch table over `stations` + `rows`, fresh CSRs, fresh
/// temporal graphs.
fn assert_matches_model(
    table: &TripTable,
    directed: &CsrGraph,
    undirected: &CsrGraph,
    temporals: &[TemporalGraph],
    stations: &BTreeSet<u64>,
    rows: &[Row],
) {
    let mut scratch = TripTable::new(stations.iter().copied().collect());
    for &(s, d, day, hour, w) in rows {
        let si = scratch.station_index(s).expect("model station");
        let di = scratch.station_index(d).expect("model station");
        scratch.push_keyed(si, di, day, hour, w);
    }
    assert_eq!(table, &scratch, "advanced table diverged from model");

    for (dir, got, what) in [
        (true, directed, "directed"),
        (false, undirected, "undirected"),
    ] {
        let want = build_dense_csr(
            dir,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            Some(1),
        );
        assert_identical(got, &want, what);
    }
    let want_temporals = build_all_from_trips(table, None, Some(1));
    for (got, want) in temporals.iter().zip(&want_temporals) {
        assert_eq!(got.granularity, want.granularity);
        let name = got.granularity.graph_name();
        assert_identical(&got.csr, &want.csr, name);
        assert_eq!(got.layer_map, want.layer_map, "{name}: layer map");
    }
}

/// Run the full differential check: starting from `base_rows`, apply the
/// chain of ingest/evict ops at the given thread and shard counts,
/// asserting after every step that the table, both station graphs and
/// all three temporal graphs are bitwise equal to one-shot rebuilds.
///
/// `pinned` selects `evict_before_pinned` (fixed station set, isolated
/// rows survive) over the compacting `evict_before`.
fn check_chain(base_rows: &[Row], ops: &[Op], threads: usize, shards: usize, pinned: bool) {
    let threads = Some(threads);
    let mut table = base_table(base_rows);
    let mut directed = build_dense_csr(
        true,
        table.station_ids().to_vec(),
        table.src(),
        table.dst(),
        table.weights(),
        threads,
    );
    let mut undirected = build_dense_csr(
        false,
        table.station_ids().to_vec(),
        table.src(),
        table.dst(),
        table.weights(),
        threads,
    );
    let mut temporals = build_all_from_trips_sharded(&table, None, Some(shards), threads);

    // The model: surviving rows in order, plus the station set the intern
    // table must hold (always sorted — both append and compaction keep
    // the dense order sorted by external id).
    let mut rows: Vec<Row> = base_rows.to_vec();
    let mut stations: BTreeSet<u64> = BASE_POOL.iter().copied().collect();

    for op in ops {
        match op {
            Op::Ingest(batch_rows) => {
                let mut batch = TripBatch::new();
                for &(s, d, day, hour, w) in batch_rows {
                    batch.push_keyed(s, d, day, hour, w);
                }
                let outcome = table.append_batch(&batch);
                rows.extend_from_slice(batch_rows);
                stations.extend(batch_rows.iter().flat_map(|&(s, d, ..)| [s, d]));

                let bs = outcome.batch_start;
                for (dir, graph) in [(true, &mut directed), (false, &mut undirected)] {
                    let delta = CsrDelta::from_dense(
                        dir,
                        table.station_ids().to_vec(),
                        outcome.old_to_new.clone(),
                        &table.src()[bs..],
                        &table.dst()[bs..],
                        &table.weights()[bs..],
                    );
                    *graph = graph.apply_delta(&delta, threads);
                }
                temporals = apply_batch_all(temporals, &table, &outcome, None, threads);
            }
            Op::Evict(window) => {
                let outcome = if pinned {
                    table.evict_before_pinned(*window)
                } else {
                    table.evict_before(*window)
                };
                rows.retain(|&(_, _, day, hour, _)| window.keeps(day, hour));
                if !pinned && !outcome.is_noop() {
                    stations = rows.iter().flat_map(|&(s, d, ..)| [s, d]).collect();
                }

                if !outcome.is_noop() {
                    for (dir, graph) in [(true, &mut directed), (false, &mut undirected)] {
                        let evict = CsrEvict::from_dense(
                            dir,
                            table.station_ids().to_vec(),
                            outcome.new_to_old.clone(),
                            outcome.touched_stations(),
                            table.src(),
                            table.dst(),
                            table.weights(),
                        );
                        *graph = graph.apply_evict(&evict, threads);
                    }
                }
                temporals = apply_evict_all(temporals, &table, &outcome, None, threads);
            }
        }
        assert_matches_model(&table, &directed, &undirected, &temporals, &stations, &rows);
    }
}

/// Run a chain and, after every step, refresh the previous detections
/// twice — whole-graph [`refresh_communities`] and the active-set
/// [`refresh_communities_active`] (PR 8) — asserting the two are
/// bit-identical at every temporal granularity. The active-set sweep is
/// a pure performance policy: whatever the ingest/evict history did to
/// the seed partition, it must land on the same bits.
fn check_active_refresh_chain(base_rows: &[Row], ops: &[Op], threads: usize) {
    let cfg = DetectConfig {
        threads: Some(threads),
        ..Default::default()
    };
    let build_directed = |table: &TripTable| {
        build_dense_csr(
            true,
            table.station_ids().to_vec(),
            table.src(),
            table.dst(),
            table.weights(),
            Some(1),
        )
    };
    let mut table = base_table(base_rows);
    let mut directed = build_directed(&table);
    let mut temporals = build_all_from_trips(&table, None, Some(1));
    let old: HashSet<u64> = table.station_ids().iter().copied().collect();
    let mut previous: Vec<_> = temporals
        .iter()
        .map(|t| detect_communities(t, &directed, &old, &cfg))
        .collect();

    for op in ops {
        let snapshot: HashSet<u64> = table.station_ids().iter().copied().collect();
        match op {
            Op::Ingest(batch_rows) => {
                let mut batch = TripBatch::new();
                for &(s, d, day, hour, w) in batch_rows {
                    batch.push_keyed(s, d, day, hour, w);
                }
                table.append_batch(&batch);
            }
            Op::Evict(window) => {
                table.evict_before(*window);
            }
        }
        // The delta paths are proven bitwise-equal to rebuilds above, so
        // the refresh property can rebuild one-shot and focus on the
        // seeded-sweep equivalence alone.
        directed = build_directed(&table);
        temporals = build_all_from_trips(&table, None, Some(1));
        previous = temporals
            .iter()
            .zip(&previous)
            .map(|(t, prev)| {
                let whole = refresh_communities(t, &directed, &snapshot, prev, &cfg);
                let active = refresh_communities_active(t, &directed, &snapshot, prev, &cfg);
                let g = t.granularity;
                assert_eq!(
                    whole.raw_partition, active.raw_partition,
                    "{g:?}: raw partition diverged"
                );
                assert_eq!(
                    whole.station_partition, active.station_partition,
                    "{g:?}: station partition diverged"
                );
                assert_eq!(
                    whole.modularity.to_bits(),
                    active.modularity.to_bits(),
                    "{g:?}: modularity diverged"
                );
                whole
            })
            .collect();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn window_chain_is_bitwise_equal_to_rebuild(
        base in prop::collection::vec(row(false), 0..80),
        ops in prop::collection::vec(op(), 1..5),
        pinned in 0u8..2,
    ) {
        for threads in [1usize, 2, 4] {
            for shards in [1usize, 4] {
                check_chain(&base, &ops, threads, shards, pinned == 1);
            }
        }
    }

    #[test]
    fn active_seeded_refresh_matches_whole_graph_over_chains(
        base in prop::collection::vec(row(false), 10..80),
        ops in prop::collection::vec(op(), 1..4),
    ) {
        for threads in [1usize, 4] {
            check_active_refresh_chain(&base, &ops, threads);
        }
    }
}

#[test]
fn evicting_everything_leaves_empty_graphs() {
    // All base rows sit before day 6; the window expires every one.
    let base: Vec<Row> = vec![
        (100, 102, 0, 8, 1.0),
        (102, 104, 3, 17, 2.5),
        (104, 104, 5, 23, 0.75),
    ];
    let ops = vec![
        Op::Evict(WindowStart::new(6, 0)),
        // And the emptied network accepts a fresh batch afterwards.
        Op::Ingest(vec![(101, 103, 6, 12, 1.5)]),
    ];
    for threads in [1usize, 2, 4] {
        for pinned in [false, true] {
            check_chain(&base, &ops, threads, 1, pinned);
        }
    }
}

#[test]
fn evicting_nothing_is_identity() {
    let base: Vec<Row> = vec![(100, 102, 2, 8, 1.0), (102, 104, 3, 17, 2.5)];
    let ops = vec![
        Op::Evict(WindowStart::new(0, 0)),
        Op::Evict(WindowStart::new(2, 8)), // boundary: slot 56 keeps row at (2, 8)
    ];
    for threads in [1usize, 2, 4] {
        for pinned in [false, true] {
            check_chain(&base, &ops, threads, 1, pinned);
        }
    }
}

#[test]
fn pinned_eviction_keeps_isolated_stations() {
    // Station 106's only trips expire: pinned eviction must keep its
    // (now isolated) row in every graph rather than compacting it away.
    let base: Vec<Row> = vec![
        (106, 100, 0, 3, 1.0),
        (102, 106, 1, 5, 2.0),
        (100, 102, 6, 20, 0.5),
    ];
    let ops = vec![Op::Evict(WindowStart::new(4, 0))];
    for threads in [1usize, 2, 4] {
        check_chain(&base, &ops, threads, 1, true);
    }
}

#[test]
fn batch_re_adds_a_just_evicted_station() {
    // The compacting eviction drops station 106 entirely; the next batch
    // re-interns it (same external id, new dense slot) and the chain must
    // still match a one-shot rebuild.
    let base: Vec<Row> = vec![(106, 100, 0, 3, 1.0), (100, 102, 6, 20, 0.5)];
    let ops = vec![
        Op::Evict(WindowStart::new(4, 0)),
        Op::Ingest(vec![(106, 102, 6, 21, 3.0), (106, 106, 6, 22, 0.25)]),
    ];
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 4] {
            check_chain(&base, &ops, threads, shards, false);
        }
    }
}
