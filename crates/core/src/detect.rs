//! Step 3b — community detection on the temporal graphs (§IV-C / §V-C).
//!
//! Louvain runs on the (possibly layered) temporal graph; the resulting
//! partition is folded down to a **station-level** assignment (each station
//! joins the community in which it carries the most trip weight) and the
//! paper's per-community trip accounting (Tables IV–VI) is produced from the
//! directed trip graph.

use crate::temporal::{TemporalGranularity, TemporalGraph};
use moby_community::stats::{community_table, CommunityTable};
use moby_community::{
    label_propagation_csr, labelprop_permuted, louvain_csr, louvain_permuted, louvain_seeded,
    louvain_seeded_active, modularity_csr_threads, modularity_permuted,
};
use moby_community::{LabelPropagationConfig, LouvainConfig, Partition};
use moby_graph::{par, CsrGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which community detector to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// The Louvain algorithm (the paper's choice).
    Louvain,
    /// Label propagation (the paper's named future-work comparison).
    LabelPropagation,
}

/// Configuration for a detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectConfig {
    /// Which detector to run.
    pub detector: Detector,
    /// Seed for the detector's node-visiting order.
    pub seed: Option<u64>,
    /// Worker-thread override for the detector sweeps and modularity
    /// scoring. `None` resolves the `MOBY_THREADS` environment variable,
    /// then the machine's parallelism (see
    /// [`moby_graph::par::thread_count`]). Detection results are
    /// bit-identical at any thread count, so this only tunes speed.
    pub threads: Option<usize>,
    /// Run the detector through a **degree-permuted layout**
    /// ([`moby_graph::CsrGraph::permute_by_degree`]): hub rows and their
    /// neighbour state cluster at low indices, which speeds up the
    /// detection sweeps on detection-heavy workloads at the cost of one
    /// permutation pass per detection. Applies to both Louvain and the
    /// label-propagation detector. The detected partition and the
    /// reported modularity are **bit-identical** either way, so this is
    /// purely a performance policy.
    pub permute: bool,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            detector: Detector::Louvain,
            seed: None,
            threads: None,
            permute: false,
        }
    }
}

/// The result of community detection at one temporal granularity.
#[derive(Debug, Clone)]
pub struct CommunityDetection {
    /// The granularity the detection ran at.
    pub granularity: TemporalGranularity,
    /// Modularity of the detected partition on the graph it was detected on
    /// (the layered graph for `GDay`/`GHour`), which is the score the paper
    /// reports alongside each table.
    pub modularity: f64,
    /// The raw partition on the detection graph (layered node ids for
    /// `GDay`/`GHour`).
    pub raw_partition: Partition,
    /// The folded station-level assignment.
    pub station_partition: Partition,
    /// The paper's per-community table (stations old/new, trips within /
    /// out / in).
    pub table: CommunityTable,
}

impl CommunityDetection {
    /// Number of detected (station-level) communities.
    pub fn community_count(&self) -> usize {
        self.table.community_count()
    }
}

/// Fold a partition over layered `(station, key)` nodes down to stations:
/// each station joins the community in which its layer nodes carry the most
/// strength (trip weight); ties break towards the smaller community label.
fn fold_to_stations(temporal: &TemporalGraph, raw: &Partition) -> Partition {
    match &temporal.layer_map {
        None => raw.clone(),
        Some(map) => {
            // station -> community -> accumulated strength
            let mut weights: HashMap<NodeId, HashMap<usize, f64>> = HashMap::new();
            for (layered_node, community) in raw.iter() {
                let Some(&(station, _)) = map.get(&layered_node) else {
                    continue;
                };
                let strength = temporal
                    .csr
                    .strength_of(layered_node)
                    .unwrap_or(0.0)
                    // Every layer node should keep some influence even if it
                    // only has zero-weight presence.
                    .max(1e-9);
                *weights
                    .entry(station)
                    .or_default()
                    .entry(community)
                    .or_insert(0.0) += strength;
            }
            let assignment: HashMap<NodeId, usize> = weights
                .into_iter()
                .map(|(station, by_comm)| {
                    let mut entries: Vec<(usize, f64)> = by_comm.into_iter().collect();
                    entries.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .expect("finite weights")
                            .then(a.0.cmp(&b.0))
                    });
                    (station, entries[0].0)
                })
                .collect();
            Partition::from_assignment(assignment).renumbered()
        }
    }
}

/// Run community detection on a temporal graph and produce the paper-style
/// table against the directed trip graph.
///
/// Everything here consumes frozen CSR graphs: the temporal graph was
/// frozen once at build time, and `directed_trips` should be frozen once
/// by the caller and shared across all three granularities.
///
/// * `temporal` — the graph built by [`crate::temporal::build_temporal_graph`];
/// * `directed_trips` — the station-level directed weighted trip graph,
///   frozen to CSR;
/// * `old_stations` — ids of pre-existing stations (for the old/new station
///   columns).
pub fn detect_communities(
    temporal: &TemporalGraph,
    directed_trips: &CsrGraph,
    old_stations: &HashSet<NodeId>,
    config: &DetectConfig,
) -> CommunityDetection {
    let (raw_partition, q) = match config.detector {
        Detector::Louvain if config.permute => {
            // Permute the undirected projection once and run both the
            // detector and the modularity score through the mapped sweeps
            // — same bits as the natural path (see the `moby-community`
            // bit-identity tests), better locality on the hot rows.
            let undirected;
            let base = if temporal.csr.is_directed() {
                undirected = temporal.csr.to_undirected();
                &undirected
            } else {
                &temporal.csr
            };
            let pg = base.permute_by_degree(par::thread_count(config.threads));
            let raw = louvain_permuted(
                &pg,
                &LouvainConfig {
                    seed: config.seed,
                    threads: config.threads,
                    ..Default::default()
                },
            );
            let q = modularity_permuted(&pg, &raw, config.threads);
            (raw, q)
        }
        Detector::Louvain => {
            let raw = louvain_csr(
                &temporal.csr,
                &LouvainConfig {
                    seed: config.seed,
                    threads: config.threads,
                    ..Default::default()
                },
            );
            let q = modularity_csr_threads(&temporal.csr, &raw, config.threads);
            (raw, q)
        }
        Detector::LabelPropagation if config.permute => {
            // Same scheme as the permuted Louvain arm: permute the
            // undirected projection once, then run both the sweeps and
            // the score through the mapped layout — identical bits.
            let undirected;
            let base = if temporal.csr.is_directed() {
                undirected = temporal.csr.to_undirected();
                &undirected
            } else {
                &temporal.csr
            };
            let pg = base.permute_by_degree(par::thread_count(config.threads));
            let raw = labelprop_permuted(
                &pg,
                &LabelPropagationConfig {
                    seed: config.seed.unwrap_or(1),
                    threads: config.threads,
                    ..Default::default()
                },
            );
            let q = modularity_permuted(&pg, &raw, config.threads);
            (raw, q)
        }
        Detector::LabelPropagation => {
            let raw = label_propagation_csr(
                &temporal.csr,
                &LabelPropagationConfig {
                    seed: config.seed.unwrap_or(1),
                    threads: config.threads,
                    ..Default::default()
                },
            );
            let q = modularity_csr_threads(&temporal.csr, &raw, config.threads);
            (raw, q)
        }
    };
    finish_detection(temporal, directed_trips, old_stations, raw_partition, q)
}

/// Shared tail of every detection path: fold the raw partition to
/// stations and produce the paper-style table.
fn finish_detection(
    temporal: &TemporalGraph,
    directed_trips: &CsrGraph,
    old_stations: &HashSet<NodeId>,
    raw_partition: Partition,
    q: f64,
) -> CommunityDetection {
    let station_partition = fold_to_stations(temporal, &raw_partition);
    let table = community_table(directed_trips, &station_partition, old_stations, q);
    CommunityDetection {
        granularity: temporal.granularity,
        modularity: q,
        raw_partition,
        station_partition,
        table,
    }
}

/// Re-detect communities after a windowed update, **seeding** from the
/// previous detection instead of starting cold — the incremental-refresh
/// half of the windowed lifecycle.
///
/// For the Louvain detector the first local-moving phase starts from
/// `previous.raw_partition` ([`louvain_seeded`]): nodes that entered with
/// the latest batch begin as singletons, entries for evicted layered
/// nodes are ignored, and only neighbourhoods the window actually changed
/// move — O(touched rows) in practice instead of a full re-run. Label
/// propagation has no usable seed state, so it re-runs cold.
///
/// The refreshed modularity is never below the seed partition's on the
/// updated graph (local moving never commits a losing move); the windowed
/// bench additionally gates it against a cold re-run.
pub fn refresh_communities(
    temporal: &TemporalGraph,
    directed_trips: &CsrGraph,
    old_stations: &HashSet<NodeId>,
    previous: &CommunityDetection,
    config: &DetectConfig,
) -> CommunityDetection {
    refresh_impl(
        temporal,
        directed_trips,
        old_stations,
        previous,
        config,
        false,
    )
}

/// [`refresh_communities`] with **active-set** local moving
/// ([`louvain_seeded_active`]): after the first whole-graph sweep, only
/// the nodes a committed move invalidated are re-examined, so sweeps
/// shrink towards the rows the window actually touched. The refreshed
/// detection is **bit-identical** to [`refresh_communities`] for the same
/// inputs; callers switch on it purely as a performance policy — the
/// windowed pipeline does when the delta touched a minority of stations
/// (see `WindowConfig::active_refresh_threshold`). Label propagation has
/// no seeded path, so it falls back to a cold re-run exactly as
/// [`refresh_communities`] does.
pub fn refresh_communities_active(
    temporal: &TemporalGraph,
    directed_trips: &CsrGraph,
    old_stations: &HashSet<NodeId>,
    previous: &CommunityDetection,
    config: &DetectConfig,
) -> CommunityDetection {
    refresh_impl(
        temporal,
        directed_trips,
        old_stations,
        previous,
        config,
        true,
    )
}

fn refresh_impl(
    temporal: &TemporalGraph,
    directed_trips: &CsrGraph,
    old_stations: &HashSet<NodeId>,
    previous: &CommunityDetection,
    config: &DetectConfig,
    active: bool,
) -> CommunityDetection {
    assert_eq!(
        temporal.granularity, previous.granularity,
        "seed detection is for a different granularity"
    );
    let louvain_cfg = LouvainConfig {
        seed: config.seed,
        threads: config.threads,
        ..Default::default()
    };
    let raw_partition = match config.detector {
        Detector::Louvain if active => {
            louvain_seeded_active(&temporal.csr, &previous.raw_partition, &louvain_cfg)
        }
        Detector::Louvain => louvain_seeded(&temporal.csr, &previous.raw_partition, &louvain_cfg),
        Detector::LabelPropagation => {
            return detect_communities(temporal, directed_trips, old_stations, config);
        }
    };
    let q = modularity_csr_threads(&temporal.csr, &raw_partition, config.threads);
    finish_detection(temporal, directed_trips, old_stations, raw_partition, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::TRIP_LABEL;
    use crate::temporal::build_temporal_graph;
    use moby_graph::aggregate;
    use moby_graph::{props, GraphStore, PropMap, PropValue};

    /// Two station groups {1,2} and {3,4}. Group A trips happen on weekday
    /// mornings, group B trips at weekend middays; a couple of cross trips
    /// bridge them.
    fn store() -> GraphStore {
        let mut s = GraphStore::new();
        for id in 1..=4u64 {
            s.add_node(id, "Station", PropMap::new());
        }
        let mut add = |src: u64, dst: u64, day: i64, hour: i64, n: usize| {
            for _ in 0..n {
                s.add_edge(
                    src,
                    dst,
                    TRIP_LABEL,
                    props([
                        ("day", PropValue::from(day)),
                        ("hour", PropValue::from(hour)),
                    ]),
                )
                .unwrap();
            }
        };
        add(1, 2, 1, 8, 20);
        add(2, 1, 2, 17, 18);
        add(1, 1, 0, 9, 5);
        add(3, 4, 5, 12, 20);
        add(4, 3, 6, 13, 18);
        add(4, 4, 5, 14, 5);
        add(1, 3, 3, 11, 2);
        add(4, 2, 6, 15, 2);
        s
    }

    fn old() -> HashSet<NodeId> {
        [1, 3].into_iter().collect()
    }

    #[test]
    fn basic_granularity_splits_station_groups() {
        let s = store();
        let temporal = build_temporal_graph(&s, TemporalGranularity::TNull);
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let det = detect_communities(&temporal, &directed, &old(), &DetectConfig::default());
        assert_eq!(det.granularity, TemporalGranularity::TNull);
        assert_eq!(det.community_count(), 2);
        assert_eq!(
            det.station_partition.community_of(1),
            det.station_partition.community_of(2)
        );
        assert_ne!(
            det.station_partition.community_of(1),
            det.station_partition.community_of(3)
        );
        assert!(det.modularity > 0.2);
        // Old/new station accounting: one old station per community.
        for row in &det.table.rows {
            assert_eq!(row.old_stations, 1);
            assert_eq!(row.new_stations, 1);
        }
    }

    #[test]
    fn layered_granularities_fold_back_to_all_stations() {
        let s = store();
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        for g in [TemporalGranularity::TDay, TemporalGranularity::THour] {
            let temporal = build_temporal_graph(&s, g);
            let det = detect_communities(&temporal, &directed, &old(), &DetectConfig::default());
            // Every station receives a community.
            assert_eq!(det.station_partition.len(), 4, "{g:?}");
            // Trip accounting covers every trip.
            assert_eq!(det.table.total_trips(), 90.0, "{g:?}");
            assert!(det.modularity > 0.0, "{g:?}");
        }
    }

    #[test]
    fn finer_granularity_does_not_reduce_modularity_here() {
        // With temporally disjoint groups, layering increases (or maintains)
        // modularity — the trend the paper reports (0.25 -> 0.32 -> 0.54).
        let s = store();
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let q: Vec<f64> = TemporalGranularity::ALL
            .iter()
            .map(|&g| {
                let t = build_temporal_graph(&s, g);
                detect_communities(&t, &directed, &old(), &DetectConfig::default()).modularity
            })
            .collect();
        assert!(q[1] >= q[0] - 1e-9, "TDay {} vs TNull {}", q[1], q[0]);
        assert!(q[2] >= q[1] - 1e-9, "THour {} vs TDay {}", q[2], q[1]);
    }

    #[test]
    fn label_propagation_detector_runs() {
        let s = store();
        let temporal = build_temporal_graph(&s, TemporalGranularity::TNull);
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let det = detect_communities(
            &temporal,
            &directed,
            &old(),
            &DetectConfig {
                detector: Detector::LabelPropagation,
                seed: Some(5),
                ..Default::default()
            },
        );
        assert!(det.community_count() >= 1);
        assert_eq!(det.station_partition.len(), 4);
    }

    #[test]
    fn detection_is_deterministic() {
        let s = store();
        let temporal = build_temporal_graph(&s, TemporalGranularity::THour);
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let a = detect_communities(&temporal, &directed, &old(), &DetectConfig::default());
        let b = detect_communities(&temporal, &directed, &old(), &DetectConfig::default());
        assert_eq!(a.station_partition, b.station_partition);
        assert_eq!(a.modularity, b.modularity);
    }

    #[test]
    fn refresh_from_previous_detection_never_loses_modularity() {
        let s = store();
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        for g in TemporalGranularity::ALL {
            let temporal = build_temporal_graph(&s, g);
            let cfg = DetectConfig::default();
            let cold = detect_communities(&temporal, &directed, &old(), &cfg);
            // Same graph, seeded from its own detection: a fixed point or
            // better, never worse.
            let refreshed = refresh_communities(&temporal, &directed, &old(), &cold, &cfg);
            assert!(
                refreshed.modularity >= cold.modularity - 1e-12,
                "{g:?}: {} < {}",
                refreshed.modularity,
                cold.modularity
            );
            assert_eq!(refreshed.granularity, g);
            assert_eq!(refreshed.station_partition.len(), 4);
        }
    }

    #[test]
    fn refresh_with_label_propagation_falls_back_to_cold() {
        let s = store();
        let temporal = build_temporal_graph(&s, TemporalGranularity::TNull);
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let cfg = DetectConfig {
            detector: Detector::LabelPropagation,
            seed: Some(5),
            ..Default::default()
        };
        let cold = detect_communities(&temporal, &directed, &old(), &cfg);
        let refreshed = refresh_communities(&temporal, &directed, &old(), &cold, &cfg);
        assert_eq!(refreshed.station_partition, cold.station_partition);
    }

    #[test]
    fn permuted_detection_is_bit_identical() {
        let s = store();
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        for g in TemporalGranularity::ALL {
            let temporal = build_temporal_graph(&s, g);
            for detector in [Detector::Louvain, Detector::LabelPropagation] {
                for threads in [Some(1), Some(4)] {
                    let natural = detect_communities(
                        &temporal,
                        &directed,
                        &old(),
                        &DetectConfig {
                            detector,
                            threads,
                            ..Default::default()
                        },
                    );
                    let permuted = detect_communities(
                        &temporal,
                        &directed,
                        &old(),
                        &DetectConfig {
                            detector,
                            threads,
                            permute: true,
                            ..Default::default()
                        },
                    );
                    assert_eq!(
                        natural.raw_partition, permuted.raw_partition,
                        "{g:?} {detector:?}"
                    );
                    assert_eq!(
                        natural.station_partition, permuted.station_partition,
                        "{g:?} {detector:?}"
                    );
                    assert_eq!(
                        natural.modularity.to_bits(),
                        permuted.modularity.to_bits(),
                        "{g:?} {detector:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn active_refresh_is_bit_identical_to_seeded_refresh() {
        let s = store();
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        for g in TemporalGranularity::ALL {
            let temporal = build_temporal_graph(&s, g);
            let cfg = DetectConfig::default();
            let cold = detect_communities(&temporal, &directed, &old(), &cfg);
            let whole = refresh_communities(&temporal, &directed, &old(), &cold, &cfg);
            let active = refresh_communities_active(&temporal, &directed, &old(), &cold, &cfg);
            assert_eq!(whole.raw_partition, active.raw_partition, "{g:?}");
            assert_eq!(whole.station_partition, active.station_partition, "{g:?}");
            assert_eq!(whole.modularity.to_bits(), active.modularity.to_bits());
        }
    }

    #[test]
    fn self_containment_is_high_for_separated_groups() {
        let s = store();
        let temporal = build_temporal_graph(&s, TemporalGranularity::TNull);
        let directed = aggregate::project_directed(&s, TRIP_LABEL).freeze();
        let det = detect_communities(&temporal, &directed, &old(), &DetectConfig::default());
        // 86 of 90 trips stay within their group.
        assert!(det.table.self_contained_share() > 0.9);
    }
}
