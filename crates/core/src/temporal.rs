//! Step 3a — temporal graph construction (§IV-C, "Network Structures").
//!
//! Three graphs over the selected station set, one per temporal granularity:
//!
//! * `GBasic` (granularity `TNull`) — stations are nodes, trips are merged
//!   into weighted edges;
//! * `GDay` (granularity `TDay`) — every trip carries the day of the week it
//!   took place;
//! * `GHour` (granularity `THour`) — every trip carries the hour of day it
//!   started.
//!
//! The paper stores the temporal feature as an edge property and lets the
//! Neo4j GDS Louvain see temporally distinct interaction patterns. We
//! reproduce that with a **layered projection**: for `GDay`/`GHour` each
//! node is a `(station, temporal key)` pair and a trip links the two
//! stations *within its own temporal layer*. Louvain then groups stations
//! that exchange many trips **and** do so at similar times; the final
//! station-level community is the station's dominant layer community
//! (weighted by trip volume). This is the interpretation documented in
//! DESIGN.md; the observable consequences match the paper — community count
//! and modularity both rise with granularity.

use crate::candidate::TRIP_LABEL;
use moby_graph::aggregate;
use moby_graph::{CsrGraph, GraphStore, NodeId, WeightedGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Temporal granularity of a station graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalGranularity {
    /// No temporal feature (`GBasic`).
    TNull,
    /// Day of the week the trip took place (`GDay`).
    TDay,
    /// Hour of the day the trip began (`GHour`).
    THour,
}

impl TemporalGranularity {
    /// All granularities in the order the paper evaluates them.
    pub const ALL: [TemporalGranularity; 3] = [
        TemporalGranularity::TNull,
        TemporalGranularity::TDay,
        TemporalGranularity::THour,
    ];

    /// The layer stride used to encode `(station, key)` pairs as node ids.
    /// Must exceed the largest key (7 days / 24 hours).
    pub fn stride(&self) -> u64 {
        match self {
            TemporalGranularity::TNull => 1,
            TemporalGranularity::TDay => 8,
            TemporalGranularity::THour => 32,
        }
    }

    /// The edge-property name carrying this granularity's key.
    pub fn property(&self) -> Option<&'static str> {
        match self {
            TemporalGranularity::TNull => None,
            TemporalGranularity::TDay => Some("day"),
            TemporalGranularity::THour => Some("hour"),
        }
    }

    /// The graph name the paper uses.
    pub fn graph_name(&self) -> &'static str {
        match self {
            TemporalGranularity::TNull => "GBasic",
            TemporalGranularity::TDay => "GDay",
            TemporalGranularity::THour => "GHour",
        }
    }
}

/// A station graph at a given temporal granularity.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    /// The granularity this graph was built for.
    pub granularity: TemporalGranularity,
    /// The undirected weighted **builder** graph. For `TNull` the nodes
    /// are station ids; for `TDay`/`THour` they are layered
    /// `(station, key)` ids.
    pub graph: WeightedGraph,
    /// The frozen CSR projection of [`TemporalGraph::graph`], produced
    /// once at build time. Louvain, modularity and the station folding all
    /// consume this — the temporal layer owns freezing, so detection never
    /// re-derives adjacency.
    pub csr: CsrGraph,
    /// For layered graphs: layered node id → `(station id, temporal key)`.
    /// `None` for `TNull`.
    pub layer_map: Option<HashMap<NodeId, (NodeId, u32)>>,
}

impl TemporalGraph {
    /// Wrap a built (possibly layered) station graph, freezing its CSR
    /// projection once.
    pub fn new(
        granularity: TemporalGranularity,
        graph: WeightedGraph,
        layer_map: Option<HashMap<NodeId, (NodeId, u32)>>,
    ) -> TemporalGraph {
        let csr = graph.freeze();
        TemporalGraph {
            granularity,
            graph,
            csr,
            layer_map,
        }
    }

    /// The station id behind a (possibly layered) node id.
    pub fn station_of(&self, node: NodeId) -> NodeId {
        match &self.layer_map {
            None => node,
            Some(map) => map.get(&node).map(|&(s, _)| s).unwrap_or(node),
        }
    }

    /// Number of distinct stations represented in the graph.
    pub fn station_count(&self) -> usize {
        match &self.layer_map {
            None => self.graph.node_count(),
            Some(map) => {
                let mut stations: Vec<NodeId> = map.values().map(|&(s, _)| s).collect();
                stations.sort_unstable();
                stations.dedup();
                stations.len()
            }
        }
    }
}

/// Build the station graph for a granularity from the selected network's
/// trip store.
pub fn build_temporal_graph(store: &GraphStore, granularity: TemporalGranularity) -> TemporalGraph {
    match granularity {
        TemporalGranularity::TNull => TemporalGraph::new(
            granularity,
            aggregate::project_undirected(store, TRIP_LABEL),
            None,
        ),
        TemporalGranularity::TDay | TemporalGranularity::THour => {
            let property = granularity.property().expect("layered granularity");
            let stride = granularity.stride();
            let (graph, layer_map) = aggregate::project_layered(store, TRIP_LABEL, stride, |e| {
                e.props
                    .get(property)
                    .and_then(|v| v.as_int())
                    .map(|v| v as u32)
            });
            TemporalGraph::new(granularity, graph, Some(layer_map))
        }
    }
}

/// Build all three temporal graphs.
pub fn build_all(store: &GraphStore) -> Vec<TemporalGraph> {
    TemporalGranularity::ALL
        .iter()
        .map(|&g| build_temporal_graph(store, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_graph::{props, PropMap, PropValue};

    fn store() -> GraphStore {
        let mut s = GraphStore::new();
        for id in 1..=3u64 {
            s.add_node(id, "Station", PropMap::new());
        }
        // (src, dst, day, hour)
        let trips = [
            (1u64, 2u64, 0i64, 8i64),
            (1, 2, 0, 9),
            (2, 1, 4, 17),
            (2, 3, 5, 12),
            (3, 3, 6, 13),
        ];
        for (src, dst, day, hour) in trips {
            s.add_edge(
                src,
                dst,
                TRIP_LABEL,
                props([
                    ("day", PropValue::from(day)),
                    ("hour", PropValue::from(hour)),
                ]),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn granularity_metadata() {
        assert_eq!(TemporalGranularity::TNull.graph_name(), "GBasic");
        assert_eq!(TemporalGranularity::TDay.graph_name(), "GDay");
        assert_eq!(TemporalGranularity::THour.graph_name(), "GHour");
        assert_eq!(TemporalGranularity::TDay.stride(), 8);
        assert_eq!(TemporalGranularity::THour.stride(), 32);
        assert_eq!(TemporalGranularity::TNull.property(), None);
        assert_eq!(TemporalGranularity::TDay.property(), Some("day"));
    }

    #[test]
    fn basic_graph_merges_all_trips() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TNull);
        assert!(g.layer_map.is_none());
        assert_eq!(g.graph.node_count(), 3);
        assert_eq!(g.graph.edge_weight(1, 2), Some(3.0)); // both directions merged
        assert_eq!(g.graph.self_loop_weight(3), 1.0);
        assert_eq!(g.station_of(2), 2);
        assert_eq!(g.station_count(), 3);
    }

    #[test]
    fn day_graph_separates_layers() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TDay);
        let map = g.layer_map.as_ref().unwrap();
        // Day-0 edge between stations 1 and 2 carries two trips.
        assert_eq!(g.graph.edge_weight(1 * 8, 2 * 8), Some(2.0));
        // Day-4 edge carries one.
        assert_eq!(g.graph.edge_weight(2 * 8 + 4, 1 * 8 + 4), Some(1.0));
        // Layer map points back at stations.
        assert_eq!(map[&(2 * 8 + 4)], (2, 4));
        assert_eq!(g.station_of(2 * 8 + 4), 2);
        assert_eq!(g.station_count(), 3);
        // Total weight equals the number of trips.
        assert_eq!(g.graph.total_weight(), 5.0);
    }

    #[test]
    fn hour_graph_uses_hour_keys() {
        let g = build_temporal_graph(&store(), TemporalGranularity::THour);
        assert_eq!(g.graph.edge_weight(1 * 32 + 8, 2 * 32 + 8), Some(1.0));
        assert_eq!(g.graph.edge_weight(1 * 32 + 9, 2 * 32 + 9), Some(1.0));
        assert_eq!(g.graph.self_loop_weight(3 * 32 + 13), 1.0);
    }

    #[test]
    fn build_all_covers_every_granularity() {
        let all = build_all(&store());
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].granularity, TemporalGranularity::TNull);
        assert_eq!(all[2].granularity, TemporalGranularity::THour);
        // Finer granularity never has fewer nodes.
        assert!(all[1].graph.node_count() >= all[0].graph.node_count());
        assert!(all[2].graph.node_count() >= all[1].graph.node_count());
    }

    #[test]
    fn frozen_csr_matches_builder_at_every_granularity() {
        let s = store();
        for granularity in TemporalGranularity::ALL {
            let t = build_temporal_graph(&s, granularity);
            assert_eq!(t.csr.node_count(), t.graph.node_count(), "{granularity:?}");
            assert_eq!(t.csr.edge_count(), t.graph.edge_count(), "{granularity:?}");
            assert_eq!(t.csr.total_weight(), t.graph.total_weight());
            for &id in t.graph.node_ids() {
                assert_eq!(t.csr.strength_of(id), t.graph.strength_of(id));
            }
        }
    }

    #[test]
    fn station_of_unknown_node_is_identity() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TDay);
        assert_eq!(g.station_of(999), 999);
    }
}
