//! Step 3a — temporal graph construction (§IV-C, "Network Structures").
//!
//! Three graphs over the selected station set, one per temporal granularity:
//!
//! * `GBasic` (granularity `TNull`) — stations are nodes, trips are merged
//!   into weighted edges;
//! * `GDay` (granularity `TDay`) — every trip carries the day of the week it
//!   took place;
//! * `GHour` (granularity `THour`) — every trip carries the hour of day it
//!   started.
//!
//! The paper stores the temporal feature as an edge property and lets the
//! Neo4j GDS Louvain see temporally distinct interaction patterns. We
//! reproduce that with a **layered projection**: for `GDay`/`GHour` each
//! node is a `(station, temporal key)` pair and a trip links the two
//! stations *within its own temporal layer*. Louvain then groups stations
//! that exchange many trips **and** do so at similar times; the final
//! station-level community is the station's dominant layer community
//! (weighted by trip volume). This is the interpretation documented in
//! `DESIGN.md` at the repository root; the observable consequences match
//! the paper — community count and modularity both rise with granularity.
//!
//! ## Two construction paths
//!
//! * **Columnar (hot path)** — [`build_all_from_trips`] makes **one pass**
//!   over the cleaned [`TripTable`] columns, emitting the edge lists of
//!   all three granularities against the table's shared station-intern
//!   table (layer keys computed inline), then freezes each through the
//!   sort-merge [`CsrBuilder`]. No per-edge hash operation anywhere,
//!   parallel yet bit-identical at any thread count.
//! * **Store projection (compatibility / equivalence baseline)** —
//!   [`build_temporal_graph`] re-scans the property store once per
//!   granularity through the `WeightedGraph` hash-map builders and
//!   freezes the result. The equivalence suites assert both paths produce
//!   *identical* frozen graphs; benchmarks keep it around to measure what
//!   the columnar path buys.

use crate::candidate::TRIP_LABEL;
use crate::CoreError;
use moby_data::spool::TripSpool;
use moby_data::trips::{AppendOutcome, EvictOutcome, TripTable};
use moby_graph::{aggregate, spill};
use moby_graph::{CsrBuilder, CsrDelta, CsrEvict, CsrGraph, GraphStore, NodeId, WeightedGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Temporal granularity of a station graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalGranularity {
    /// No temporal feature (`GBasic`).
    TNull,
    /// Day of the week the trip took place (`GDay`).
    TDay,
    /// Hour of the day the trip began (`GHour`).
    THour,
}

impl TemporalGranularity {
    /// All granularities in the order the paper evaluates them.
    pub const ALL: [TemporalGranularity; 3] = [
        TemporalGranularity::TNull,
        TemporalGranularity::TDay,
        TemporalGranularity::THour,
    ];

    /// The layer stride used to encode `(station, key)` pairs as node ids.
    /// Must exceed the largest key (7 days / 24 hours).
    pub fn stride(&self) -> u64 {
        match self {
            TemporalGranularity::TNull => 1,
            TemporalGranularity::TDay => 8,
            TemporalGranularity::THour => 32,
        }
    }

    /// The edge-property name carrying this granularity's key.
    pub fn property(&self) -> Option<&'static str> {
        match self {
            TemporalGranularity::TNull => None,
            TemporalGranularity::TDay => Some("day"),
            TemporalGranularity::THour => Some("hour"),
        }
    }

    /// The graph name the paper uses.
    pub fn graph_name(&self) -> &'static str {
        match self {
            TemporalGranularity::TNull => "GBasic",
            TemporalGranularity::TDay => "GDay",
            TemporalGranularity::THour => "GHour",
        }
    }
}

/// A station graph at a given temporal granularity.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    /// The granularity this graph was built for.
    pub granularity: TemporalGranularity,
    /// The legacy undirected **builder** graph, populated only by the
    /// store-projection path ([`build_temporal_graph`]) where it serves as
    /// the equivalence baseline. The columnar path
    /// ([`build_all_from_trips`]) never materialises it. For `TNull` the
    /// nodes are station ids; for `TDay`/`THour` they are layered
    /// `(station, key)` ids.
    pub builder: Option<WeightedGraph>,
    /// The frozen CSR graph, produced once at build time. Louvain,
    /// modularity and the station folding all consume this — the temporal
    /// layer owns freezing, so detection never re-derives adjacency.
    pub csr: CsrGraph,
    /// For layered graphs: layered node id → `(station id, temporal key)`.
    /// `None` for `TNull`.
    pub layer_map: Option<HashMap<NodeId, (NodeId, u32)>>,
}

impl TemporalGraph {
    /// Wrap a built (possibly layered) station builder graph, freezing its
    /// CSR projection once and keeping the builder as the equivalence
    /// baseline.
    pub fn new(
        granularity: TemporalGranularity,
        graph: WeightedGraph,
        layer_map: Option<HashMap<NodeId, (NodeId, u32)>>,
    ) -> TemporalGraph {
        let csr = graph.freeze();
        TemporalGraph {
            granularity,
            builder: Some(graph),
            csr,
            layer_map,
        }
    }

    /// Wrap an already-frozen graph produced by the columnar build path —
    /// no builder graph exists on the hot path.
    pub fn from_csr(
        granularity: TemporalGranularity,
        csr: CsrGraph,
        layer_map: Option<HashMap<NodeId, (NodeId, u32)>>,
    ) -> TemporalGraph {
        TemporalGraph {
            granularity,
            builder: None,
            csr,
            layer_map,
        }
    }

    /// The station id behind a (possibly layered) node id.
    pub fn station_of(&self, node: NodeId) -> NodeId {
        match &self.layer_map {
            None => node,
            Some(map) => map.get(&node).map(|&(s, _)| s).unwrap_or(node),
        }
    }

    /// Number of distinct stations represented in the graph.
    pub fn station_count(&self) -> usize {
        match &self.layer_map {
            None => self.csr.node_count(),
            Some(map) => {
                let mut stations: Vec<NodeId> = map.values().map(|&(s, _)| s).collect();
                stations.sort_unstable();
                stations.dedup();
                stations.len()
            }
        }
    }
}

/// Build the station graph for a granularity from the selected network's
/// trip store.
pub fn build_temporal_graph(store: &GraphStore, granularity: TemporalGranularity) -> TemporalGraph {
    match granularity {
        TemporalGranularity::TNull => TemporalGraph::new(
            granularity,
            aggregate::project_undirected(store, TRIP_LABEL),
            None,
        ),
        TemporalGranularity::TDay | TemporalGranularity::THour => {
            let property = granularity.property().expect("layered granularity");
            let stride = granularity.stride();
            let (graph, layer_map) = aggregate::project_layered(store, TRIP_LABEL, stride, |e| {
                e.props
                    .get(property)
                    .and_then(|v| v.as_int())
                    .map(|v| v as u32)
            });
            TemporalGraph::new(granularity, graph, Some(layer_map))
        }
    }
}

/// Build all three temporal graphs.
pub fn build_all(store: &GraphStore) -> Vec<TemporalGraph> {
    TemporalGranularity::ALL
        .iter()
        .map(|&g| build_temporal_graph(store, g))
        .collect()
}

/// Decode a layered graph's node table back into the
/// `layered id → (station, key)` map. Layered ids are
/// `station * stride + key` by construction, so the map is pure
/// arithmetic over the nodes the build actually touched.
fn decode_layer_map(csr: &CsrGraph, stride: u64) -> HashMap<NodeId, (NodeId, u32)> {
    csr.node_ids()
        .iter()
        .map(|&id| (id, (id / stride, (id % stride) as u32)))
        .collect()
}

/// Extend a layer map (taken by value — the delta path moves it out of
/// the consumed [`TemporalGraph`]) with only the layered nodes a delta
/// appended (dense indices `n_old..`) — the incremental counterpart of
/// [`decode_layer_map`], with an identical result at O(batch) cost.
fn extend_layer_map(
    old: Option<HashMap<NodeId, (NodeId, u32)>>,
    csr: &CsrGraph,
    stride: u64,
    n_old: usize,
) -> HashMap<NodeId, (NodeId, u32)> {
    let mut map = old.unwrap_or_default();
    for &id in &csr.node_ids()[n_old..] {
        map.insert(id, (id / stride, (id % stride) as u32));
    }
    map
}

/// Build all three temporal graphs from the columnar [`TripTable`] — the
/// hot construction path.
///
/// **One pass** over the trip columns emits the edge lists for every
/// granularity against the table's shared station-intern table: `GBasic`
/// edges are the station pairs themselves, `GDay`/`GHour` edges carry the
/// layer key folded into the node id inline
/// (`station * stride + key`). Each list then freezes through the
/// sort-merge [`CsrBuilder`] — zero per-edge hash operations end to end,
/// and (per the scheduler contract) bit-identical results at any
/// `threads` setting.
///
/// `basic` optionally supplies an already-built station-level undirected
/// CSR (the pipeline shares the selected network's
/// [`undirected`](crate::reassign::SelectedNetwork::undirected) graph so
/// `GBasic` is built exactly once); pass `None` to build it from the
/// table here.
///
/// The frozen graphs are **identical** to what the legacy store
/// projection ([`build_temporal_graph`]) produces — the synthetic-dataset
/// equivalence suite asserts this bitwise — because both paths intern
/// nodes in the same first-appearance order and merge duplicate edges in
/// the same insertion order. That baseline weights every trip at 1.0, so
/// the equivalence claim covers the unit-weight tables cleaning produces;
/// a table with explicit
/// [`push_weighted`](moby_data::trips::TripTable::push_weighted) weights
/// builds the weighted generalisation the store projection cannot
/// represent.
pub fn build_all_from_trips(
    trips: &TripTable,
    basic: Option<&CsrGraph>,
    threads: Option<usize>,
) -> Vec<TemporalGraph> {
    build_all_from_trips_sharded(trips, basic, None, threads)
}

/// [`build_all_from_trips`] with explicit control over the number of
/// construction shards — the city-scale entry point.
///
/// Every frozen graph routes through the sharded sort-merge assembly
/// (`GBasic` via
/// [`build_dense_csr_sharded`](moby_graph::build_dense_csr_sharded),
/// `GDay`/`GHour` via [`CsrBuilder::shards`]), so the per-shard scatter
/// buffers bound peak construction memory to roughly a shard's worth of
/// half-edges per worker instead of the full edge list. Results are
/// **bit-identical** to [`build_all_from_trips`] at any `(shards,
/// threads)` combination — shard boundaries are a pure function of the
/// row structure and the shard count, never of scheduling (see
/// `DESIGN.md`, "Sharded construction"). `shards: None` defers to the
/// `MOBY_SHARDS` environment knob and then to 1.
pub fn build_all_from_trips_sharded(
    trips: &TripTable,
    basic: Option<&CsrGraph>,
    shards: Option<usize>,
    threads: Option<usize>,
) -> Vec<TemporalGraph> {
    let m = trips.len();
    let mut day_builder = CsrBuilder::undirected().threads(threads).shards(shards);
    let mut hour_builder = CsrBuilder::undirected().threads(threads).shards(shards);
    day_builder.reserve(m);
    hour_builder.reserve(m);
    let day_stride = TemporalGranularity::TDay.stride();
    let hour_stride = TemporalGranularity::THour.stride();

    let (src, dst) = (trips.src(), trips.dst());
    let (day, hour, weight) = (trips.day(), trips.hour(), trips.weights());
    for k in 0..m {
        let s = trips.station_id(src[k]);
        let d = trips.station_id(dst[k]);
        let w = weight[k];
        let dk = day[k] as u64;
        day_builder.push(s * day_stride + dk, d * day_stride + dk, w);
        let hk = hour[k] as u64;
        hour_builder.push(s * hour_stride + hk, d * hour_stride + hk, w);
    }

    let basic_csr = match basic {
        Some(csr) => csr.clone(),
        None => {
            // The station-level graph builds straight from the dense trip
            // columns; seeding the full sorted node table keeps every
            // station visible, like the legacy store projection.
            moby_graph::build_dense_csr_sharded(
                false,
                trips.station_ids().to_vec(),
                trips.src(),
                trips.dst(),
                trips.weights(),
                shards,
                threads,
            )
        }
    };
    let day_csr = day_builder.build();
    let hour_csr = hour_builder.build();

    let day_map = decode_layer_map(&day_csr, day_stride);
    let hour_map = decode_layer_map(&hour_csr, hour_stride);
    vec![
        TemporalGraph::from_csr(TemporalGranularity::TNull, basic_csr, None),
        TemporalGraph::from_csr(TemporalGranularity::TDay, day_csr, Some(day_map)),
        TemporalGraph::from_csr(TemporalGranularity::THour, hour_csr, Some(hour_map)),
    ]
}

/// A replayable stream of cleaned, interned trips — the abstraction that
/// lets the spilled temporal builds consume either the in-memory
/// [`TripTable`] columns or a disk-backed [`TripSpool`] through one code
/// path. Rows are `(src, dst, day, hour, weight)` with dense station
/// indices, replayed in insertion order on every call.
trait TripSource {
    /// The sorted station intern table the dense indices refer to.
    fn stations(&self) -> &[NodeId];
    /// Replay every row in insertion order.
    fn replay(
        &self,
        f: &mut dyn FnMut(u32, u32, u8, u8, f64),
    ) -> std::result::Result<(), moby_graph::GraphError>;
}

impl TripSource for TripTable {
    fn stations(&self) -> &[NodeId] {
        self.station_ids()
    }

    fn replay(
        &self,
        f: &mut dyn FnMut(u32, u32, u8, u8, f64),
    ) -> std::result::Result<(), moby_graph::GraphError> {
        let (src, dst) = (self.src(), self.dst());
        let (day, hour, weight) = (self.day(), self.hour(), self.weights());
        for k in 0..self.len() {
            f(src[k], dst[k], day[k], hour[k], weight[k]);
        }
        Ok(())
    }
}

impl TripSource for TripSpool {
    fn stations(&self) -> &[NodeId] {
        self.station_ids()
    }

    fn replay(
        &self,
        f: &mut dyn FnMut(u32, u32, u8, u8, f64),
    ) -> std::result::Result<(), moby_graph::GraphError> {
        // City trips are unit-weight by construction (the spool stores no
        // weight column); I/O failures surface as spill errors.
        self.for_each(&mut |s, d, day, hour| f(s, d, day, hour, 1.0))
            .map_err(|e| moby_graph::GraphError::Spill(format!("replaying trip spool: {e}")))
    }
}

/// [`build_all_from_trips_sharded`] with an out-of-core **spill budget**
/// — the bounded-memory city-scale entry point.
///
/// `budget_mb = None` resolves the `MOBY_SPILL_BUDGET_MB` environment
/// knob (via [`spill::budget_bytes`]); when the resolved budget exists
/// and a granularity's estimated scatter footprint exceeds it, that
/// build routes through
/// [`build_dense_csr_spilled`](moby_graph::build_dense_csr_spilled):
/// half-edges partition to per-shard disk runs under `spill_dir`
/// (default: the system temp dir) instead of in-memory scatter columns.
/// The frozen graphs and layer maps are **bit-identical** to
/// [`build_all_from_trips_sharded`] at any shard count × thread count ×
/// budget — the fourth independence axis; see `DESIGN.md`,
/// "Out-of-core construction". Spill I/O failures surface as
/// [`CoreError::Spill`].
pub fn build_all_from_trips_spilled(
    trips: &TripTable,
    basic: Option<&CsrGraph>,
    shards: Option<usize>,
    threads: Option<usize>,
    budget_mb: Option<u64>,
    spill_dir: Option<&Path>,
) -> crate::Result<Vec<TemporalGraph>> {
    // Every granularity is undirected with one edge per trip: 2m halves.
    let est_halves = 2 * trips.len();
    if !spill::should_spill(est_halves, spill::budget_bytes(budget_mb)) {
        return Ok(build_all_from_trips_sharded(trips, basic, shards, threads));
    }
    build_all_spilled(trips, basic, shards, threads, spill_dir)
}

/// Build all three temporal graphs straight from a disk-backed
/// [`TripSpool`] — the fully streaming arm: the city generator's rows
/// flow through
/// [`clean_trip_stream_spooled`](moby_data::clean::clean_trip_stream_spooled)
/// to one spool, and that **single spill pass per granularity** feeds
/// `GBasic`, `GDay` and `GHour` without the full `TripTable` edge
/// columns ever materialising in memory.
///
/// `GBasic` seeds the full station table (isolated stations stay
/// visible, like every other build path). The result is bit-identical
/// to [`build_all_from_trips`] over the equivalent in-memory table.
pub fn build_all_from_spool(
    spool: &TripSpool,
    shards: Option<usize>,
    threads: Option<usize>,
    spill_dir: Option<&Path>,
) -> crate::Result<Vec<TemporalGraph>> {
    build_all_spilled(spool, None, shards, threads, spill_dir)
}

/// Shared body of the spilled builds: `GBasic` over the station table,
/// `GDay`/`GHour` through the layered candidate intern — all three via
/// [`build_dense_csr_spilled`](moby_graph::build_dense_csr_spilled).
fn build_all_spilled(
    source: &dyn TripSource,
    basic: Option<&CsrGraph>,
    shards: Option<usize>,
    threads: Option<usize>,
    spill_dir: Option<&Path>,
) -> crate::Result<Vec<TemporalGraph>> {
    let basic_csr = match basic {
        Some(csr) => csr.clone(),
        None => moby_graph::build_dense_csr_spilled(
            false,
            source.stations().to_vec(),
            |f| source.replay(&mut |s, d, _, _, w| f(s, d, w)),
            shards,
            threads,
            spill_dir,
        )?,
    };
    let day_csr = build_layered_spilled(
        source,
        TemporalGranularity::TDay,
        shards,
        threads,
        spill_dir,
    )?;
    let hour_csr = build_layered_spilled(
        source,
        TemporalGranularity::THour,
        shards,
        threads,
        spill_dir,
    )?;
    let day_map = decode_layer_map(&day_csr, TemporalGranularity::TDay.stride());
    let hour_map = decode_layer_map(&hour_csr, TemporalGranularity::THour.stride());
    Ok(vec![
        TemporalGraph::from_csr(TemporalGranularity::TNull, basic_csr, None),
        TemporalGraph::from_csr(TemporalGranularity::TDay, day_csr, Some(day_map)),
        TemporalGraph::from_csr(TemporalGranularity::THour, hour_csr, Some(hour_map)),
    ])
}

/// One layered granularity, spilled. The node table must match what
/// [`CsrBuilder`] would intern over the same layered edge pushes —
/// **first-appearance order** (src before dst within each trip) — so the
/// spilled graph stays bit-identical to the in-memory build. The intern
/// runs over the **dense candidate space** `station_index * stride + key`
/// (bounded by the station table, never by the trip count): a forward
/// replay records each present candidate's first slot (`2k` for trip
/// `k`'s src, `2k + 1` for its dst, set-if-absent = minimum), and
/// ordering present candidates by that slot reproduces the builder's
/// sort-dedup-resort intern exactly — slots are unique, and no seeds
/// exist on this path.
fn build_layered_spilled(
    source: &dyn TripSource,
    granularity: TemporalGranularity,
    shards: Option<usize>,
    threads: Option<usize>,
    spill_dir: Option<&Path>,
) -> crate::Result<CsrGraph> {
    debug_assert!(
        granularity != TemporalGranularity::TNull,
        "TNull has no layers"
    );
    let stride = granularity.stride();
    let pick_day = granularity == TemporalGranularity::TDay;
    let stations = source.stations();
    let n_cand = stations.len() * stride as usize;
    const ABSENT: u64 = u64::MAX;
    let mut first: Vec<u64> = vec![ABSENT; n_cand];
    let mut k: u64 = 0;
    source.replay(&mut |s, d, day, hour, _| {
        let key = usize::from(if pick_day { day } else { hour });
        let cs = s as usize * stride as usize + key;
        let cd = d as usize * stride as usize + key;
        if first[cs] == ABSENT {
            first[cs] = 2 * k;
        }
        if first[cd] == ABSENT {
            first[cd] = 2 * k + 1;
        }
        k += 1;
    })?;
    let mut order: Vec<(u64, u32)> = first
        .iter()
        .enumerate()
        .filter(|&(_, &slot)| slot != ABSENT)
        .map(|(cand, &slot)| (slot, cand as u32))
        .collect();
    order.sort_unstable();
    let mut node_ids: Vec<NodeId> = Vec::with_capacity(order.len());
    let mut dense: Vec<u32> = vec![u32::MAX; n_cand];
    for (i, &(_, cand)) in order.iter().enumerate() {
        let station_idx = cand as usize / stride as usize;
        let key = u64::from(cand) % stride;
        node_ids.push(stations[station_idx] * stride + key);
        dense[cand as usize] = i as u32;
    }
    moby_graph::build_dense_csr_spilled(
        false,
        node_ids,
        |f| {
            source.replay(&mut |s, d, day, hour, w| {
                let key = usize::from(if pick_day { day } else { hour });
                f(
                    dense[s as usize * stride as usize + key],
                    dense[d as usize * stride as usize + key],
                    w,
                )
            })
        },
        shards,
        threads,
        spill_dir,
    )
    .map_err(CoreError::from)
}

/// Advance all three temporal graphs by one ingested trip batch — the
/// incremental counterpart of [`build_all_from_trips`].
///
/// `trips` is the table **after**
/// [`TripTable::append_batch`](moby_data::trips::TripTable::append_batch)
/// and `outcome` is what that append returned; **one pass** over the
/// appended rows (`outcome.batch_start..`) emits the per-granularity edge
/// deltas (layer keys folded into node ids inline, as in the full build),
/// which merge into the existing frozen graphs via
/// [`CsrGraph::apply_delta`] — untouched rows are copied, never re-merged
/// from trips.
///
/// The three graphs are **consumed**: their frozen CSRs seed the deltas
/// and the layered maps move into the results (no per-batch clone of
/// state the batch didn't touch) — call as
/// `temporals = apply_batch_all(temporals, ..)`. `basic` optionally
/// supplies the already-delta-updated station-level undirected CSR (the
/// pipeline clones
/// [`SelectedNetwork::undirected`](crate::reassign::SelectedNetwork::undirected)
/// in after [`ingest_batch`](crate::reassign::SelectedNetwork::ingest_batch),
/// so `GBasic` is advanced exactly once); pass `None` to delta `GBasic`
/// from the batch here.
///
/// **Equivalence contract:** the returned graphs (and layer maps) are
/// bit-identical to [`build_all_from_trips`] over the full appended
/// table, at any thread count — new layered nodes intern exactly where a
/// full rebuild would place them (first batch appearance, after all
/// existing nodes) and new stations shift the `GBasic` node table through
/// `outcome.old_to_new`. The differential proptest suite
/// (`crates/core/tests/proptest_delta.rs`) asserts this for random batch
/// chains at 1/2/4 threads.
///
/// # Panics
///
/// If `temporals` is not the three-granularity slice the build functions
/// produce, in granularity order.
pub fn apply_batch_all(
    temporals: Vec<TemporalGraph>,
    trips: &TripTable,
    outcome: &AppendOutcome,
    basic: Option<CsrGraph>,
    threads: Option<usize>,
) -> Vec<TemporalGraph> {
    assert_eq!(temporals.len(), 3, "expected GBasic/GDay/GHour");
    for (t, g) in temporals.iter().zip(TemporalGranularity::ALL) {
        assert_eq!(t.granularity, g, "temporal graphs out of order");
    }
    let day_stride = TemporalGranularity::TDay.stride();
    let hour_stride = TemporalGranularity::THour.stride();

    // One pass over the appended rows: layered edge lists per granularity.
    let rows = outcome.batch_start..trips.len();
    let (src, dst) = (trips.src(), trips.dst());
    let (day, hour, weight) = (trips.day(), trips.hour(), trips.weights());
    let mut day_edges = Vec::with_capacity(rows.len());
    let mut hour_edges = Vec::with_capacity(rows.len());
    for k in rows {
        let s = trips.station_id(src[k]);
        let d = trips.station_id(dst[k]);
        let w = weight[k];
        let dk = day[k] as u64;
        day_edges.push((s * day_stride + dk, d * day_stride + dk, w));
        let hk = hour[k] as u64;
        hour_edges.push((s * hour_stride + hk, d * hour_stride + hk, w));
    }

    let mut temporals = temporals;
    let hour_t = temporals.pop().expect("three granularities");
    let day_t = temporals.pop().expect("three granularities");
    let basic_t = temporals.pop().expect("three granularities");

    let basic_csr = match basic {
        Some(csr) => csr,
        None => {
            // Station-level delta over the (possibly extended) sorted
            // intern table, dense columns straight from the appended rows.
            let bs = outcome.batch_start;
            let delta = CsrDelta::from_dense(
                false,
                trips.station_ids().to_vec(),
                outcome.old_to_new.clone(),
                &trips.src()[bs..],
                &trips.dst()[bs..],
                &trips.weights()[bs..],
            );
            basic_t.csr.apply_delta(&delta, threads)
        }
    };
    let (day_old_n, hour_old_n) = (day_t.csr.node_count(), hour_t.csr.node_count());
    let day_delta = CsrDelta::extend_by_id(&day_t.csr, day_edges);
    let day_csr = day_t.csr.apply_delta(&day_delta, threads);
    let hour_delta = CsrDelta::extend_by_id(&hour_t.csr, hour_edges);
    let hour_csr = hour_t.csr.apply_delta(&hour_delta, threads);

    // Layer maps are moved out of the consumed graphs and extended with
    // only the layered nodes the deltas appended — O(batch) hash inserts
    // and no re-decode of the full node table.
    let day_map = extend_layer_map(day_t.layer_map, &day_csr, day_stride, day_old_n);
    let hour_map = extend_layer_map(hour_t.layer_map, &hour_csr, hour_stride, hour_old_n);
    vec![
        TemporalGraph::from_csr(TemporalGranularity::TNull, basic_csr, None),
        TemporalGraph::from_csr(TemporalGranularity::TDay, day_csr, Some(day_map)),
        TemporalGraph::from_csr(TemporalGranularity::THour, hour_csr, Some(hour_map)),
    ]
}

/// Retreat all three temporal graphs past an eviction — the removal
/// counterpart of [`apply_batch_all`] and the other half of the windowed
/// lifecycle.
///
/// `trips` is the table **after**
/// [`TripTable::evict_before`](moby_data::trips::TripTable::evict_before)
/// (or its pinned variant) and `outcome` is what that eviction returned.
/// `GBasic` retreats through [`CsrEvict::from_dense`] over the surviving
/// dense columns (the station intern stays sorted, so the compaction
/// remap is monotone); `GDay`/`GHour` retreat through
/// [`CsrEvict::retrench_by_id`] over the surviving layered edge lists —
/// their first-appearance intern order is *not* stable under row removal
/// (a layer first interned by an evicted trip moves to its next surviving
/// appearance), so the retrench recomputes the builder's intern. Touched
/// rows come straight from the evicted rows' endpoint columns; untouched
/// rows copy bit-for-bit.
///
/// As with [`apply_batch_all`], the graphs are consumed and `basic` can
/// supply an already-evicted station-level CSR so the pipeline advances
/// `GBasic` exactly once.
///
/// **Equivalence contract:** the returned graphs and layer maps are
/// bit-identical to [`build_all_from_trips`] over the surviving table, at
/// any thread count (and against bases built at any shard count) — the
/// windowed differential suite (`crates/core/tests/proptest_window.rs`)
/// asserts this for interleaved ingest/evict chains.
///
/// # Panics
///
/// If `temporals` is not the three-granularity slice the build functions
/// produce, in granularity order.
pub fn apply_evict_all(
    temporals: Vec<TemporalGraph>,
    trips: &TripTable,
    outcome: &EvictOutcome,
    basic: Option<CsrGraph>,
    threads: Option<usize>,
) -> Vec<TemporalGraph> {
    assert_eq!(temporals.len(), 3, "expected GBasic/GDay/GHour");
    for (t, g) in temporals.iter().zip(TemporalGranularity::ALL) {
        assert_eq!(t.granularity, g, "temporal graphs out of order");
    }
    if outcome.is_noop() {
        // Nothing expired: the layered graphs are untouched; an
        // already-shared `GBasic` still swaps in.
        let mut temporals = temporals;
        if let Some(csr) = basic {
            temporals[0] = TemporalGraph::from_csr(TemporalGranularity::TNull, csr, None);
        }
        return temporals;
    }
    let mut temporals = temporals;
    let hour_t = temporals.pop().expect("three granularities");
    let day_t = temporals.pop().expect("three granularities");
    let basic_t = temporals.pop().expect("three granularities");

    let basic_csr = match basic {
        Some(csr) => csr,
        None => {
            let evict = CsrEvict::from_dense(
                false,
                trips.station_ids().to_vec(),
                outcome.new_to_old.clone(),
                outcome.touched_stations(),
                trips.src(),
                trips.dst(),
                trips.weights(),
            );
            basic_t.csr.apply_evict(&evict, threads)
        }
    };
    let (day_t, hour_t) = evict_layered_pair(day_t, hour_t, trips, trips.len(), outcome, threads);
    vec![
        TemporalGraph::from_csr(TemporalGranularity::TNull, basic_csr, None),
        day_t,
        hour_t,
    ]
}

/// The layered (`GDay`/`GHour`) half of an eviction: surviving layered
/// edge lists come from one pass over the leading `rows_end` table rows
/// (the surviving prefix — a trailing batch may already sit behind it),
/// touched layered ids fold the evicted rows' temporal keys into their
/// endpoints exactly as the build folded them in, and each graph retreats
/// through [`CsrEvict::retrench_by_id`]. Layer maps re-decode from the
/// new tables — eviction can permute a first-appearance intern (see
/// [`apply_evict_all`]), and the decode is exactly what a full rebuild
/// would produce.
fn evict_layered_pair(
    day_t: TemporalGraph,
    hour_t: TemporalGraph,
    trips: &TripTable,
    rows_end: usize,
    outcome: &EvictOutcome,
    threads: Option<usize>,
) -> (TemporalGraph, TemporalGraph) {
    let day_stride = TemporalGranularity::TDay.stride();
    let hour_stride = TemporalGranularity::THour.stride();

    let (src, dst) = (trips.src(), trips.dst());
    let (day, hour, weight) = (trips.day(), trips.hour(), trips.weights());
    let mut day_edges = Vec::with_capacity(rows_end);
    let mut hour_edges = Vec::with_capacity(rows_end);
    for k in 0..rows_end {
        let s = trips.station_id(src[k]);
        let d = trips.station_id(dst[k]);
        let w = weight[k];
        let dk = day[k] as u64;
        day_edges.push((s * day_stride + dk, d * day_stride + dk, w));
        let hk = hour[k] as u64;
        hour_edges.push((s * hour_stride + hk, d * hour_stride + hk, w));
    }
    let mut day_touched = Vec::with_capacity(2 * outcome.evicted_rows());
    let mut hour_touched = Vec::with_capacity(2 * outcome.evicted_rows());
    for k in 0..outcome.evicted_rows() {
        let (s, d) = (outcome.evicted_src[k], outcome.evicted_dst[k]);
        let dk = outcome.evicted_day[k] as u64;
        let hk = outcome.evicted_hour[k] as u64;
        day_touched.push(s * day_stride + dk);
        day_touched.push(d * day_stride + dk);
        hour_touched.push(s * hour_stride + hk);
        hour_touched.push(d * hour_stride + hk);
    }
    day_touched.sort_unstable();
    day_touched.dedup();
    hour_touched.sort_unstable();
    hour_touched.dedup();

    let day_evict = CsrEvict::retrench_by_id(&day_t.csr, day_edges, day_touched);
    let day_csr = day_t.csr.apply_evict(&day_evict, threads);
    let hour_evict = CsrEvict::retrench_by_id(&hour_t.csr, hour_edges, hour_touched);
    let hour_csr = hour_t.csr.apply_evict(&hour_evict, threads);

    let day_map = decode_layer_map(&day_csr, day_stride);
    let hour_map = decode_layer_map(&hour_csr, hour_stride);
    (
        TemporalGraph::from_csr(TemporalGranularity::TDay, day_csr, Some(day_map)),
        TemporalGraph::from_csr(TemporalGranularity::THour, hour_csr, Some(hour_map)),
    )
}

/// Carry all three temporal graphs through one **window step** — the
/// eviction then the batch, matching what
/// [`SelectedNetwork::advance_window`](crate::reassign::SelectedNetwork::advance_window)
/// did to the station-level state.
///
/// `trips` is the table *after* `advance_window` (surviving rows first,
/// then the appended batch — appends only ever extend, so the leading
/// `outcome.appended.batch_start` rows are exactly the post-evict
/// survivors the retreat must see). `basic` optionally supplies the
/// network's already-advanced undirected graph, in which case `GBasic`
/// skips both phases and swaps it in.
///
/// Composes the equivalence contracts of [`apply_evict_all`] and
/// [`apply_batch_all`]: the result is bit-identical to
/// [`build_all_from_trips`] over the post-window table at any thread
/// count.
pub fn apply_window_all(
    temporals: Vec<TemporalGraph>,
    trips: &TripTable,
    outcome: &crate::reassign::WindowOutcome,
    basic: Option<CsrGraph>,
    threads: Option<usize>,
) -> Vec<TemporalGraph> {
    assert_eq!(temporals.len(), 3, "expected GBasic/GDay/GHour");
    for (t, g) in temporals.iter().zip(TemporalGranularity::ALL) {
        assert_eq!(t.granularity, g, "temporal graphs out of order");
    }
    let evicted = &outcome.evicted;
    let bs = outcome.appended.batch_start;

    let mut temporals = temporals;
    let hour_t = temporals.pop().expect("three granularities");
    let day_t = temporals.pop().expect("three granularities");
    let mut basic_t = temporals.pop().expect("three granularities");

    let (day_t, hour_t) = if evicted.is_noop() {
        (day_t, hour_t)
    } else {
        evict_layered_pair(day_t, hour_t, trips, bs, evicted, threads)
    };
    // GBasic retreats over the surviving prefix unless the caller shares
    // an already-advanced graph (then the ingest phase swaps it in and no
    // station-level pass runs here at all). `advance_window` pins the
    // station table, so the eviction's remap is always `None`.
    if basic.is_none() && !evicted.is_noop() {
        let evict = CsrEvict::from_dense(
            false,
            trips.station_ids().to_vec(),
            evicted.new_to_old.clone(),
            evicted.touched_stations(),
            &trips.src()[..bs],
            &trips.dst()[..bs],
            &trips.weights()[..bs],
        );
        basic_t = TemporalGraph::from_csr(
            TemporalGranularity::TNull,
            basic_t.csr.apply_evict(&evict, threads),
            None,
        );
    }
    apply_batch_all(
        vec![basic_t, day_t, hour_t],
        trips,
        &outcome.appended,
        basic,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_data::trips::TripBatch;
    use moby_graph::{props, PropMap, PropValue};

    fn store() -> GraphStore {
        let mut s = GraphStore::new();
        for id in 1..=3u64 {
            s.add_node(id, "Station", PropMap::new());
        }
        // (src, dst, day, hour)
        let trips = [
            (1u64, 2u64, 0i64, 8i64),
            (1, 2, 0, 9),
            (2, 1, 4, 17),
            (2, 3, 5, 12),
            (3, 3, 6, 13),
        ];
        for (src, dst, day, hour) in trips {
            s.add_edge(
                src,
                dst,
                TRIP_LABEL,
                props([
                    ("day", PropValue::from(day)),
                    ("hour", PropValue::from(hour)),
                ]),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn granularity_metadata() {
        assert_eq!(TemporalGranularity::TNull.graph_name(), "GBasic");
        assert_eq!(TemporalGranularity::TDay.graph_name(), "GDay");
        assert_eq!(TemporalGranularity::THour.graph_name(), "GHour");
        assert_eq!(TemporalGranularity::TDay.stride(), 8);
        assert_eq!(TemporalGranularity::THour.stride(), 32);
        assert_eq!(TemporalGranularity::TNull.property(), None);
        assert_eq!(TemporalGranularity::TDay.property(), Some("day"));
    }

    /// The columnar trip table matching [`store`] (same station set, same
    /// trip order).
    fn trip_table() -> TripTable {
        let mut t = TripTable::new(vec![1, 2, 3]);
        let trips = [
            (1u64, 2u64, 0u8, 8u8),
            (1, 2, 0, 9),
            (2, 1, 4, 17),
            (2, 3, 5, 12),
            (3, 3, 6, 13),
        ];
        for (src, dst, day, hour) in trips {
            // 2020-06-01 is a Monday; day 1 + `day` keeps the weekday key,
            // `hour` the hour key.
            let ts = moby_data::timeparse::Timestamp::from_ymd_hms(
                2020,
                6,
                1 + day as u32,
                hour as u32,
                0,
                0,
            )
            .unwrap();
            t.push(
                t.station_index(src).unwrap(),
                t.station_index(dst).unwrap(),
                ts,
            );
        }
        t
    }

    #[test]
    fn basic_graph_merges_all_trips() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TNull);
        assert!(g.layer_map.is_none());
        assert_eq!(g.csr.node_count(), 3);
        assert_eq!(g.csr.edge_weight(1, 2), Some(3.0)); // both directions merged
        let builder = g.builder.as_ref().expect("legacy path keeps the builder");
        assert_eq!(builder.self_loop_weight(3), 1.0);
        assert_eq!(g.station_of(2), 2);
        assert_eq!(g.station_count(), 3);
    }

    #[test]
    fn day_graph_separates_layers() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TDay);
        let map = g.layer_map.as_ref().unwrap();
        // Day-0 edge between stations 1 and 2 carries two trips.
        assert_eq!(g.csr.edge_weight(1 * 8, 2 * 8), Some(2.0));
        // Day-4 edge carries one.
        assert_eq!(g.csr.edge_weight(2 * 8 + 4, 1 * 8 + 4), Some(1.0));
        // Layer map points back at stations.
        assert_eq!(map[&(2 * 8 + 4)], (2, 4));
        assert_eq!(g.station_of(2 * 8 + 4), 2);
        assert_eq!(g.station_count(), 3);
        // Total weight equals the number of trips.
        assert_eq!(g.csr.total_weight(), 5.0);
    }

    #[test]
    fn hour_graph_uses_hour_keys() {
        let g = build_temporal_graph(&store(), TemporalGranularity::THour);
        assert_eq!(g.csr.edge_weight(1 * 32 + 8, 2 * 32 + 8), Some(1.0));
        assert_eq!(g.csr.edge_weight(1 * 32 + 9, 2 * 32 + 9), Some(1.0));
        let i = g.csr.index_of(3 * 32 + 13).unwrap() as usize;
        assert_eq!(g.csr.self_loop(i), 1.0);
    }

    #[test]
    fn build_all_covers_every_granularity() {
        let all = build_all(&store());
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].granularity, TemporalGranularity::TNull);
        assert_eq!(all[2].granularity, TemporalGranularity::THour);
        // Finer granularity never has fewer nodes.
        assert!(all[1].csr.node_count() >= all[0].csr.node_count());
        assert!(all[2].csr.node_count() >= all[1].csr.node_count());
    }

    #[test]
    fn frozen_csr_matches_builder_at_every_granularity() {
        let s = store();
        for granularity in TemporalGranularity::ALL {
            let t = build_temporal_graph(&s, granularity);
            let builder = t.builder.as_ref().expect("legacy path keeps the builder");
            assert_eq!(t.csr.node_count(), builder.node_count(), "{granularity:?}");
            assert_eq!(t.csr.edge_count(), builder.edge_count(), "{granularity:?}");
            assert_eq!(t.csr.total_weight(), builder.total_weight());
            for &id in builder.node_ids() {
                assert_eq!(t.csr.strength_of(id), builder.strength_of(id));
            }
        }
    }

    #[test]
    fn station_of_unknown_node_is_identity() {
        let g = build_temporal_graph(&store(), TemporalGranularity::TDay);
        assert_eq!(g.station_of(999), 999);
    }

    #[test]
    fn columnar_build_is_identical_to_store_projection() {
        let s = store();
        let trips = trip_table();
        for threads in [Some(1), Some(2), Some(4)] {
            let columnar = build_all_from_trips(&trips, None, threads);
            assert_eq!(columnar.len(), 3);
            for (temporal, granularity) in columnar.iter().zip(TemporalGranularity::ALL) {
                assert_eq!(temporal.granularity, granularity);
                assert!(temporal.builder.is_none(), "hot path has no builder");
                let legacy = build_temporal_graph(&s, granularity);
                assert_eq!(temporal.csr, legacy.csr, "{granularity:?} CSR diverged");
                assert_eq!(temporal.layer_map, legacy.layer_map, "{granularity:?} map");
            }
        }
    }

    #[test]
    fn apply_batch_all_matches_full_rebuild() {
        let mut trips = trip_table();
        let base = build_all_from_trips(&trips, None, Some(1));
        let mut batch = TripBatch::new();
        // Existing stations at new times, a repeated edge, and a brand-new
        // station (id 2, which sorts between 1 and 3).
        let t = |day: u32, hour: u32| {
            moby_data::timeparse::Timestamp::from_ymd_hms(2020, 6, 1 + day, hour, 0, 0).unwrap()
        };
        batch.push(1, 0, t(0, 8)); // station 0 is new and sorts first,
                                   // shifting every old dense index
        batch.push(1, 0, t(0, 8)); // duplicate layered edge
        batch.push(3, 1, t(3, 21));
        let outcome = trips.append_batch(&batch);
        assert_eq!(outcome.new_stations, vec![0]);
        for threads in [Some(1), Some(2), Some(4)] {
            let got = apply_batch_all(base.clone(), &trips, &outcome, None, threads);
            let want = build_all_from_trips(&trips, None, threads);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.granularity, w.granularity);
                assert_eq!(g.csr, w.csr, "{:?} diverged from rebuild", g.granularity);
                assert_eq!(g.layer_map, w.layer_map, "{:?} map", g.granularity);
            }
        }
        // Sharing an already-updated GBasic skips the station-level delta.
        let updated = build_all_from_trips(&trips, None, Some(1));
        let shared = apply_batch_all(
            base,
            &trips,
            &outcome,
            Some(updated[0].csr.clone()),
            Some(1),
        );
        assert_eq!(shared[0].csr, updated[0].csr);
        assert_eq!(shared[1].csr, updated[1].csr);
    }

    #[test]
    fn apply_evict_all_matches_rebuild_over_survivors() {
        use moby_data::trips::WindowStart;
        // Compacting eviction: day-0..4 rows expire, station 1 loses every
        // trip and leaves the intern table.
        let mut trips = trip_table();
        let base = build_all_from_trips(&trips, None, Some(1));
        let outcome = trips.evict_before(WindowStart::new(5, 0));
        assert_eq!(outcome.evicted_rows(), 3);
        assert!(outcome.new_to_old.is_some(), "station 1 must drop");
        for threads in [Some(1), Some(2), Some(4)] {
            let got = apply_evict_all(base.clone(), &trips, &outcome, None, threads);
            let want = build_all_from_trips(&trips, None, threads);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.granularity, w.granularity);
                assert_eq!(g.csr, w.csr, "{:?} diverged from rebuild", g.granularity);
                assert_eq!(g.layer_map, w.layer_map, "{:?} map", g.granularity);
            }
        }
        // Sharing an already-evicted GBasic skips the station-level pass.
        let want = build_all_from_trips(&trips, None, Some(1));
        let shared = apply_evict_all(base, &trips, &outcome, Some(want[0].csr.clone()), Some(1));
        assert_eq!(shared[0].csr, want[0].csr);
        assert_eq!(shared[2].csr, want[2].csr);
    }

    #[test]
    fn pinned_evict_keeps_isolated_stations_in_gbasic() {
        use moby_data::trips::WindowStart;
        let mut trips = trip_table();
        let base = build_all_from_trips(&trips, None, Some(1));
        let outcome = trips.evict_before_pinned(WindowStart::new(5, 0));
        assert!(outcome.new_to_old.is_none(), "pinned table never compacts");
        let got = apply_evict_all(base, &trips, &outcome, None, Some(2));
        // GBasic keeps station 1 as an isolated row, exactly as a rebuild
        // seeded with the full pinned station table would.
        let want = build_all_from_trips(&trips, None, Some(1));
        assert_eq!(got[0].csr, want[0].csr);
        assert_eq!(got[0].csr.node_count(), 3);
        let row1 = got[0].csr.index_of(1).unwrap() as usize;
        assert_eq!(got[0].csr.degree(row1), 0);
        assert_eq!(got[1].csr, want[1].csr);
        assert_eq!(got[2].csr, want[2].csr);
    }

    #[test]
    fn noop_evict_returns_graphs_unchanged() {
        use moby_data::trips::WindowStart;
        let mut trips = trip_table();
        let base = build_all_from_trips(&trips, None, Some(1));
        let outcome = trips.evict_before(WindowStart::new(0, 0));
        assert!(outcome.is_noop());
        let got = apply_evict_all(base.clone(), &trips, &outcome, None, Some(2));
        for (g, b) in got.iter().zip(&base) {
            assert_eq!(g.csr, b.csr);
        }
    }

    #[test]
    fn sharded_columnar_build_matches_unsharded() {
        let trips = trip_table();
        let baseline = build_all_from_trips(&trips, None, Some(1));
        for shards in [Some(1), Some(2), Some(4)] {
            for threads in [Some(1), Some(2), Some(4)] {
                let sharded = build_all_from_trips_sharded(&trips, None, shards, threads);
                for (g, b) in sharded.iter().zip(&baseline) {
                    assert_eq!(g.csr, b.csr, "{:?} @ {shards:?} shards", g.granularity);
                    assert_eq!(g.layer_map, b.layer_map);
                }
            }
        }
    }

    #[test]
    fn spilled_build_matches_in_memory_build_bitwise() {
        let trips = trip_table();
        let baseline = build_all_from_trips(&trips, None, Some(1));
        // Budget 0 forces every granularity through the disk runs.
        for shards in [Some(1), Some(2), Some(4)] {
            for threads in [Some(1), Some(2)] {
                let spilled =
                    build_all_from_trips_spilled(&trips, None, shards, threads, Some(0), None)
                        .unwrap();
                for (g, b) in spilled.iter().zip(&baseline) {
                    assert_eq!(g.granularity, b.granularity);
                    assert_eq!(g.csr, b.csr, "{:?} @ {shards:?} shards", g.granularity);
                    assert_eq!(
                        g.csr.total_weight().to_bits(),
                        b.csr.total_weight().to_bits()
                    );
                    assert_eq!(g.layer_map, b.layer_map, "{:?} map", g.granularity);
                }
            }
        }
        // A huge budget takes the in-memory arm; same bits either way.
        let unspilled =
            build_all_from_trips_spilled(&trips, None, Some(2), Some(2), Some(1 << 20), None)
                .unwrap();
        for (g, b) in unspilled.iter().zip(&baseline) {
            assert_eq!(g.csr, b.csr);
        }
        // A shared GBasic swaps in untouched.
        let shared =
            build_all_from_trips_spilled(&trips, Some(&baseline[0].csr), None, None, Some(0), None)
                .unwrap();
        assert_eq!(shared[0].csr, baseline[0].csr);
        assert_eq!(shared[2].csr, baseline[2].csr);
    }

    #[test]
    fn spool_build_matches_table_build_bitwise() {
        let trips = trip_table();
        let mut spool = TripSpool::create(vec![1, 2, 3], None).unwrap();
        let (day, hour) = (trips.day(), trips.hour());
        for k in 0..trips.len() {
            spool.push_keyed(trips.src()[k], trips.dst()[k], day[k], hour[k]);
        }
        spool.finish().unwrap();
        let got = build_all_from_spool(&spool, Some(2), Some(2), None).unwrap();
        let want = build_all_from_trips(&trips, None, Some(1));
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.granularity, w.granularity);
            assert_eq!(
                g.csr, w.csr,
                "{:?} diverged from table build",
                g.granularity
            );
            assert_eq!(
                g.csr.total_weight().to_bits(),
                w.csr.total_weight().to_bits()
            );
            assert_eq!(g.layer_map, w.layer_map, "{:?} map", g.granularity);
        }
    }

    #[test]
    fn spilled_build_surfaces_unwritable_dir_as_error() {
        let trips = trip_table();
        let file = std::env::temp_dir().join(format!("moby-core-spill-f-{}", std::process::id()));
        std::fs::write(&file, b"not a dir").unwrap();
        let err = build_all_from_trips_spilled(
            &trips,
            None,
            Some(2),
            Some(1),
            Some(0),
            Some(&file.join("sub")),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::Spill(_)),
            "expected Spill: {err:?}"
        );
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn columnar_build_reuses_a_shared_basic_graph() {
        let trips = trip_table();
        let built = build_all_from_trips(&trips, None, None);
        let shared = built[0].csr.clone();
        let reused = build_all_from_trips(&trips, Some(&shared), None);
        assert_eq!(reused[0].csr, shared);
        assert_eq!(reused[1].csr, built[1].csr);
        assert_eq!(reused[2].csr, built[2].csr);
    }
}
