//! The prior-work baseline and the access-quality comparison against it.
//!
//! The paper's earlier system (reference \[17\], "Analyzing shared bike usage
//! through graph-based spatio-temporal modelling") reassigned every
//! non-station rental/return location to its **closest fixed station**
//! without creating any new stations; the contribution of this paper is the
//! controlled expansion that removes the resulting bottlenecks. This module
//! implements that baseline and quantifies what the expansion buys:
//!
//! * how far users are from the network (walk distance from each trip
//!   endpoint to its assigned station);
//! * what share of demand is covered within the paper's 250 m threshold;
//! * how evenly the load spreads over stations (Gini coefficient), the
//!   equity metric the related work uses.

use crate::pipeline::ExpansionOutcome;
use moby_cluster::assign::StationAssigner;
use moby_geo::GeoPoint;
use moby_graph::metrics::gini_coefficient;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Access-quality statistics of one network variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of stations in the variant.
    pub stations: usize,
    /// Mean walk distance from a trip endpoint to its assigned station (m).
    pub mean_walk_m: f64,
    /// Median walk distance (m).
    pub median_walk_m: f64,
    /// 90th-percentile walk distance (m).
    pub p90_walk_m: f64,
    /// Share of trip endpoints within 100 m of a station.
    pub within_100m: f64,
    /// Share of trip endpoints within 250 m of a station (the paper's
    /// secondary-distance threshold).
    pub within_250m: f64,
    /// Gini coefficient of per-station endpoint load (0 = perfectly even).
    pub load_gini: f64,
}

/// The baseline-vs-expanded comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkComparison {
    /// Fixed stations only (the prior-work baseline).
    pub baseline: AccessStats,
    /// Fixed plus newly selected stations (this paper's expansion).
    pub expanded: AccessStats,
}

impl NetworkComparison {
    /// Relative reduction of the mean walk distance achieved by the
    /// expansion (0.25 = 25 % shorter walks).
    pub fn mean_walk_reduction(&self) -> f64 {
        if self.baseline.mean_walk_m <= 0.0 {
            0.0
        } else {
            1.0 - self.expanded.mean_walk_m / self.baseline.mean_walk_m
        }
    }

    /// Absolute gain in 250 m coverage (percentage points / 100).
    pub fn coverage_gain_250m(&self) -> f64 {
        self.expanded.within_250m - self.baseline.within_250m
    }

    /// Render an aligned text table for reports.
    pub fn render(&self) -> String {
        let mut out = String::from("BASELINE COMPARISON — nearest-station access\n");
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12}",
            "measure", "baseline", "expanded"
        );
        let rows: [(&str, f64, f64); 6] = [
            (
                "stations",
                self.baseline.stations as f64,
                self.expanded.stations as f64,
            ),
            (
                "mean walk (m)",
                self.baseline.mean_walk_m,
                self.expanded.mean_walk_m,
            ),
            (
                "median walk (m)",
                self.baseline.median_walk_m,
                self.expanded.median_walk_m,
            ),
            (
                "p90 walk (m)",
                self.baseline.p90_walk_m,
                self.expanded.p90_walk_m,
            ),
            (
                "coverage <=250 m (%)",
                self.baseline.within_250m * 100.0,
                self.expanded.within_250m * 100.0,
            ),
            (
                "load gini",
                self.baseline.load_gini,
                self.expanded.load_gini,
            ),
        ];
        for (label, b, e) in rows {
            let _ = writeln!(out, "{label:<22} {b:>12.1} {e:>12.1}");
        }
        let _ = writeln!(
            out,
            "mean-walk reduction: {:.1}%   coverage gain: {:+.1} pp",
            self.mean_walk_reduction() * 100.0,
            self.coverage_gain_250m() * 100.0
        );
        out
    }
}

/// Compute access statistics for a set of station positions, evaluated over
/// every trip endpoint in the outcome's cleaned dataset. Returns `None` when
/// the station set is empty or there are no trips.
pub fn access_stats(outcome: &ExpansionOutcome, stations: &[GeoPoint]) -> Option<AccessStats> {
    let assigner = StationAssigner::new(stations)?;
    let location_positions: HashMap<u64, GeoPoint> = outcome
        .dataset
        .locations
        .iter()
        .map(|l| (l.id, l.position))
        .collect();

    let mut walks: Vec<f64> = Vec::with_capacity(outcome.dataset.rentals.len() * 2);
    let mut load: HashMap<usize, f64> = HashMap::new();
    for rental in &outcome.dataset.rentals {
        for loc in [rental.rental_location_id, rental.return_location_id] {
            let Some(&pos) = location_positions.get(&loc) else {
                continue;
            };
            let assignment = assigner.assign(pos);
            walks.push(assignment.distance_m);
            *load.entry(assignment.station_index).or_insert(0.0) += 1.0;
        }
    }
    if walks.is_empty() {
        return None;
    }
    walks.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let n = walks.len();
    let percentile = |p: f64| walks[((n - 1) as f64 * p).round() as usize];
    // Stations with no assigned endpoints still count for the Gini.
    let mut loads: Vec<f64> = (0..stations.len())
        .map(|i| load.get(&i).copied().unwrap_or(0.0))
        .collect();
    loads.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(AccessStats {
        stations: stations.len(),
        mean_walk_m: walks.iter().sum::<f64>() / n as f64,
        median_walk_m: percentile(0.5),
        p90_walk_m: percentile(0.9),
        within_100m: walks.iter().filter(|d| **d <= 100.0).count() as f64 / n as f64,
        within_250m: walks.iter().filter(|d| **d <= 250.0).count() as f64 / n as f64,
        load_gini: gini_coefficient(&loads),
    })
}

/// Compare the prior-work baseline (fixed stations only) against the
/// expanded network produced by the pipeline. Returns `None` for degenerate
/// outcomes (no stations or no trips).
pub fn compare_with_baseline(outcome: &ExpansionOutcome) -> Option<NetworkComparison> {
    let fixed: Vec<GeoPoint> = outcome
        .selected
        .stations
        .iter()
        .filter(|s| s.is_fixed)
        .map(|s| s.position)
        .collect();
    let all: Vec<GeoPoint> = outcome
        .selected
        .stations
        .iter()
        .map(|s| s.position)
        .collect();
    Some(NetworkComparison {
        baseline: access_stats(outcome, &fixed)?,
        expanded: access_stats(outcome, &all)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ExpansionPipeline, PipelineConfig};
    use moby_data::synth::{generate, SynthConfig};

    fn outcome() -> ExpansionOutcome {
        let raw = generate(&SynthConfig::small_test());
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .unwrap()
    }

    #[test]
    fn expansion_improves_access() {
        let out = outcome();
        let cmp = compare_with_baseline(&out).expect("comparison computes");
        // More stations, never worse walks, never worse coverage.
        assert!(cmp.expanded.stations > cmp.baseline.stations);
        assert!(cmp.expanded.mean_walk_m <= cmp.baseline.mean_walk_m);
        assert!(cmp.expanded.median_walk_m <= cmp.baseline.median_walk_m);
        assert!(cmp.expanded.within_250m >= cmp.baseline.within_250m);
        assert!(cmp.mean_walk_reduction() >= 0.0);
        assert!(cmp.coverage_gain_250m() >= 0.0);
    }

    #[test]
    fn stats_are_well_formed() {
        let out = outcome();
        let cmp = compare_with_baseline(&out).expect("comparison computes");
        for stats in [&cmp.baseline, &cmp.expanded] {
            assert!(stats.mean_walk_m >= 0.0);
            assert!(stats.median_walk_m <= stats.p90_walk_m);
            assert!((0.0..=1.0).contains(&stats.within_100m));
            assert!((0.0..=1.0).contains(&stats.within_250m));
            assert!(stats.within_100m <= stats.within_250m);
            assert!((0.0..=1.0).contains(&stats.load_gini));
        }
    }

    #[test]
    fn render_contains_both_columns() {
        let out = outcome();
        let cmp = compare_with_baseline(&out).expect("comparison computes");
        let text = cmp.render();
        assert!(text.contains("baseline"));
        assert!(text.contains("expanded"));
        assert!(text.contains("coverage"));
        assert!(text.lines().count() >= 8);
    }

    #[test]
    fn empty_station_set_gives_none() {
        let out = outcome();
        assert!(access_stats(&out, &[]).is_none());
    }

    #[test]
    fn access_stats_against_single_far_station_have_long_walks() {
        let out = outcome();
        let far = vec![moby_geo::GeoPoint::new(53.20, -6.53).unwrap()];
        let stats = access_stats(&out, &far).expect("computes");
        assert_eq!(stats.stations, 1);
        assert!(stats.mean_walk_m > 1_000.0);
        assert!(stats.within_250m < 0.1);
    }
}
