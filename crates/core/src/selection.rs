//! Step 2 — station ranking and selection (§IV-B, Algorithm 1).
//!
//! Candidates are scored by their degree in the candidate graph and pruned
//! by the paper's rules:
//!
//! * **Rule 3, Degree-Threshold** — a candidate whose degree is below the
//!   minimum degree of the pre-existing stations scores 0 (Algorithm 1,
//!   lines 4–5);
//! * **Rule 4, Secondary-Distance** — a candidate within 250 m of a
//!   pre-existing station scores 0 (lines 6–7);
//! * **mutual proximity** — while any two surviving candidates are within
//!   250 m of each other, the lower-degree one scores 0 (lines 10–16);
//! * **Rule 2, Cluster-Proximity** — centroids may not be within 50 m of
//!   each other; this is implied by the 250 m checks but verified anyway.
//!
//! Candidates with a positive score, sorted by score, become the selected
//! new stations (line 17–18).

use crate::candidate::CandidateNetwork;
use crate::config::DegreeThreshold;
use crate::{CoreError, ExpansionConfig, Result};
use moby_geo::{haversine_m, GeoPoint, KdTree};
use moby_graph::metrics::DegreeSummary;
use moby_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why a candidate was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// Degree below the fixed-station minimum (Rule 3).
    DegreeBelowThreshold,
    /// Within the secondary distance of a pre-existing station (Rule 4).
    TooCloseToFixedStation,
    /// Within the secondary distance of a stronger (higher-degree) candidate.
    TooCloseToStrongerCandidate,
    /// Violates the centroid-separation rule (Rule 2) against an already
    /// selected node.
    CentroidTooClose,
}

/// A newly selected station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectedStation {
    /// The candidate node id (kept as the new station's id).
    pub id: NodeId,
    /// Position (the candidate cluster's centroid).
    pub position: GeoPoint,
    /// Degree in the candidate graph (the selection score).
    pub degree: usize,
    /// 1-based rank by score among the selected stations.
    pub rank: usize,
    /// Distance to the nearest pre-existing station, metres.
    pub nearest_fixed_m: f64,
}

/// The outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// The degree threshold used (Rule 3).
    pub degree_threshold: usize,
    /// Selected new stations, ordered by descending score.
    pub selected: Vec<SelectedStation>,
    /// Rejected candidates with the (first) reason each was rejected.
    pub rejected: HashMap<NodeId, RejectReason>,
}

impl SelectionOutcome {
    /// Number of rejected candidates per reason, for reporting.
    pub fn rejections_by_reason(&self) -> HashMap<RejectReason, usize> {
        let mut out = HashMap::new();
        for reason in self.rejected.values() {
            *out.entry(*reason).or_insert(0) += 1;
        }
        out
    }

    /// Ids of the selected stations.
    pub fn selected_ids(&self) -> Vec<NodeId> {
        self.selected.iter().map(|s| s.id).collect()
    }
}

/// Resolve the degree threshold for Rule 3 from the fixed stations' degrees.
fn resolve_threshold(
    config: &ExpansionConfig,
    network: &CandidateNetwork,
    fixed_ids: &[NodeId],
) -> Result<usize> {
    let summary = DegreeSummary::for_nodes(&network.undirected, fixed_ids)
        .ok_or_else(|| CoreError::Internal("no fixed stations in candidate graph".into()))?;
    Ok(match config.degree_threshold {
        DegreeThreshold::MinFixedStationDegree => summary.min,
        DegreeThreshold::Absolute(v) => v,
        DegreeThreshold::FixedStationPercentile(p) => {
            let mut degrees: Vec<usize> = fixed_ids
                .iter()
                .filter_map(|&id| network.undirected.degree_of(id))
                .collect();
            degrees.sort_unstable();
            let idx = ((p / 100.0) * (degrees.len().saturating_sub(1)) as f64).round() as usize;
            degrees[idx.min(degrees.len() - 1)]
        }
    })
}

/// Run Algorithm 1 over a candidate network.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when the configuration fails validation, or
/// [`CoreError::Internal`] when the network contains no fixed stations.
pub fn select_stations(
    network: &CandidateNetwork,
    config: &ExpansionConfig,
) -> Result<SelectionOutcome> {
    config.validate()?;
    let fixed_ids = network.fixed_ids();
    if fixed_ids.is_empty() {
        return Err(CoreError::Internal(
            "candidate network has no fixed stations".into(),
        ));
    }
    let threshold = resolve_threshold(config, network, &fixed_ids)?;

    // Fixed-station index for Rule 4 distances.
    let fixed_tree = KdTree::build(
        fixed_ids
            .iter()
            .map(|&id| (network.node(id).expect("fixed node exists").position, id))
            .collect::<Vec<_>>(),
    );

    // Line 2–9: initial scores.
    #[derive(Clone)]
    struct Scored {
        id: NodeId,
        position: GeoPoint,
        degree: usize,
        score: usize,
        nearest_fixed_m: f64,
    }
    let mut rejected: HashMap<NodeId, RejectReason> = HashMap::new();
    let mut scored: Vec<Scored> = Vec::new();
    for id in network.candidate_ids() {
        let node = network.node(id).expect("candidate node exists");
        let degree = network.undirected.degree_of(id).unwrap_or(0);
        let (_, _, nearest_fixed_m) = fixed_tree
            .nearest(node.position)
            .expect("fixed tree is non-empty");
        let mut score = degree;
        if degree < threshold {
            score = 0;
            rejected.insert(id, RejectReason::DegreeBelowThreshold);
        } else if nearest_fixed_m <= config.secondary_distance_m {
            score = 0;
            rejected.insert(id, RejectReason::TooCloseToFixedStation);
        }
        scored.push(Scored {
            id,
            position: node.position,
            degree,
            score,
            nearest_fixed_m,
        });
    }

    // Lines 10–16: repeatedly zero the lower-degree member of any pair of
    // surviving candidates that are too close to each other. Processing
    // pairs in ascending-degree order makes one sweep per fixpoint iteration
    // deterministic.
    loop {
        let mut changed = false;
        let mut survivors: Vec<usize> = scored
            .iter()
            .enumerate()
            .filter(|(_, s)| s.score > 0)
            .map(|(i, _)| i)
            .collect();
        survivors.sort_by_key(|&i| (scored[i].degree, scored[i].id));
        'outer: for (a_pos, &i) in survivors.iter().enumerate() {
            for &j in &survivors[a_pos + 1..] {
                let d = haversine_m(scored[i].position, scored[j].position);
                if d <= config.secondary_distance_m {
                    // i has the lower (or equal) degree by sort order.
                    scored[i].score = 0;
                    rejected.insert(scored[i].id, RejectReason::TooCloseToStrongerCandidate);
                    changed = true;
                    continue 'outer;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Rule 2 backstop: enforce the 50 m centroid separation against fixed
    // stations too (normally implied by Rule 4 since 50 < 250).
    for s in scored.iter_mut() {
        if s.score > 0 && s.nearest_fixed_m < config.centroid_min_separation_m {
            s.score = 0;
            rejected.insert(s.id, RejectReason::CentroidTooClose);
        }
    }

    // A candidate can still sit at score 0 without a recorded reason when
    // the fixed-station degree minimum is itself 0 (possible on sparse
    // datasets with isolated stations); Algorithm 1 only returns candidates
    // with score > 0, so account for these as degree rejections.
    for s in &scored {
        if s.score == 0 && !rejected.contains_key(&s.id) {
            rejected.insert(s.id, RejectReason::DegreeBelowThreshold);
        }
    }

    // Lines 17–18: rank the survivors by score.
    let mut winners: Vec<&Scored> = scored.iter().filter(|s| s.score > 0).collect();
    winners.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    let selected: Vec<SelectedStation> = winners
        .iter()
        .enumerate()
        .map(|(rank, s)| SelectedStation {
            id: s.id,
            position: s.position,
            degree: s.degree,
            rank: rank + 1,
            nearest_fixed_m: s.nearest_fixed_m,
        })
        .collect();

    Ok(SelectionOutcome {
        degree_threshold: threshold,
        selected,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::build_candidate_network;
    use moby_data::clean::clean_dataset;
    use moby_data::synth::{generate, SynthConfig};

    fn network() -> CandidateNetwork {
        let ds = clean_dataset(&generate(&SynthConfig::small_test())).dataset;
        build_candidate_network(&ds, &ExpansionConfig::default()).unwrap()
    }

    #[test]
    fn selection_produces_new_stations() {
        let net = network();
        let out = select_stations(&net, &ExpansionConfig::default()).unwrap();
        assert!(!out.selected.is_empty(), "expected some new stations");
        assert!(out.selected.len() < net.candidate_ids().len());
        assert!(!out.rejected.is_empty());
        // Accounting: every candidate is either selected or rejected.
        assert_eq!(
            out.selected.len() + out.rejected.len(),
            net.candidate_ids().len()
        );
    }

    #[test]
    fn selected_stations_respect_rule_4_against_fixed_stations() {
        let net = network();
        let cfg = ExpansionConfig::default();
        let out = select_stations(&net, &cfg).unwrap();
        for s in &out.selected {
            assert!(
                s.nearest_fixed_m > cfg.secondary_distance_m,
                "station {} is only {} m from a fixed station",
                s.id,
                s.nearest_fixed_m
            );
        }
    }

    #[test]
    fn selected_stations_respect_mutual_separation() {
        let net = network();
        let cfg = ExpansionConfig::default();
        let out = select_stations(&net, &cfg).unwrap();
        for (i, a) in out.selected.iter().enumerate() {
            for b in &out.selected[i + 1..] {
                let d = haversine_m(a.position, b.position);
                assert!(
                    d > cfg.secondary_distance_m,
                    "selected stations {} and {} are {} m apart",
                    a.id,
                    b.id,
                    d
                );
            }
        }
    }

    #[test]
    fn selected_stations_meet_degree_threshold() {
        let net = network();
        let out = select_stations(&net, &ExpansionConfig::default()).unwrap();
        for s in &out.selected {
            assert!(s.degree >= out.degree_threshold);
        }
    }

    #[test]
    fn ranks_are_sorted_by_degree() {
        let net = network();
        let out = select_stations(&net, &ExpansionConfig::default()).unwrap();
        for w in out.selected.windows(2) {
            assert!(w[0].degree >= w[1].degree);
            assert!(w[0].rank < w[1].rank);
        }
        assert_eq!(out.selected.first().map(|s| s.rank), Some(1));
    }

    #[test]
    fn absolute_threshold_overrides_fixed_minimum() {
        let net = network();
        let mut cfg = ExpansionConfig::default();
        cfg.degree_threshold = DegreeThreshold::Absolute(usize::MAX);
        let out = select_stations(&net, &cfg).unwrap();
        assert!(out.selected.is_empty());
        assert!(out
            .rejections_by_reason()
            .contains_key(&RejectReason::DegreeBelowThreshold));
    }

    #[test]
    fn percentile_threshold_is_monotone() {
        let net = network();
        let mut low = ExpansionConfig::default();
        low.degree_threshold = DegreeThreshold::FixedStationPercentile(0.0);
        let mut high = ExpansionConfig::default();
        high.degree_threshold = DegreeThreshold::FixedStationPercentile(95.0);
        let selected_low = select_stations(&net, &low).unwrap().selected.len();
        let selected_high = select_stations(&net, &high).unwrap().selected.len();
        assert!(selected_high <= selected_low);
    }

    #[test]
    fn larger_secondary_distance_selects_fewer_stations() {
        let net = network();
        let mut near = ExpansionConfig::default();
        near.secondary_distance_m = 100.0;
        let mut far = ExpansionConfig::default();
        far.secondary_distance_m = 600.0;
        let n_near = select_stations(&net, &near).unwrap().selected.len();
        let n_far = select_stations(&net, &far).unwrap().selected.len();
        assert!(n_far <= n_near, "near {n_near}, far {n_far}");
    }

    #[test]
    fn deterministic() {
        let net = network();
        let a = select_stations(&net, &ExpansionConfig::default()).unwrap();
        let b = select_stations(&net, &ExpansionConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let net = network();
        let mut cfg = ExpansionConfig::default();
        cfg.secondary_distance_m = f64::NAN;
        assert!(select_stations(&net, &cfg).is_err());
    }
}
