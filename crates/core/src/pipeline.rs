//! The end-to-end expansion pipeline.
//!
//! [`ExpansionPipeline::run`] chains the paper's three steps over a raw
//! dataset: clean → construct candidate graph → rank & select new stations →
//! reassign → build temporal graphs → detect communities at the three
//! granularities. The result, [`ExpansionOutcome`], carries every
//! intermediate artefact needed to reproduce Tables I–VI and Figures 1–7.

use crate::candidate::{build_candidate_network, CandidateNetwork};
use crate::detect::{
    detect_communities, refresh_communities, refresh_communities_active, CommunityDetection,
    DetectConfig,
};
use crate::reassign::{build_selected_network, SelectedNetwork, WindowOutcome};
use crate::selection::{select_stations, SelectionOutcome};
use crate::temporal::{apply_window_all, build_all_from_trips_spilled, TemporalGraph};
use crate::{ExpansionConfig, Result};
use moby_data::clean::{clean_dataset, CleaningReport};
use moby_data::schema::{CleanDataset, RawDataset};
use moby_data::stats::DatasetOverview;
use moby_data::trips::{TripBatch, WindowStart};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineConfig {
    /// Station-selection thresholds (§IV).
    pub expansion: ExpansionConfig,
    /// Community-detection settings (§IV-C).
    pub detect: DetectConfig,
    /// Number of construction shards for the temporal graph builds
    /// (`None` defers to the `MOBY_SHARDS` environment knob, then 1).
    /// Sharding changes peak construction memory, never the result —
    /// frozen graphs are bit-identical at any shard count.
    pub build_shards: Option<usize>,
    /// Out-of-core spill budget in megabytes for the temporal graph
    /// builds (`None` defers to the `MOBY_SPILL_BUDGET_MB` environment
    /// knob; no budget anywhere means the builds never spill). When a
    /// granularity's estimated scatter footprint exceeds the budget its
    /// half-edge columns spill to per-shard disk runs instead of
    /// in-memory buffers. Spilling changes peak construction memory,
    /// never the result — frozen graphs are bit-identical at any budget.
    pub spill_budget_mb: Option<u64>,
    /// Windowed-lifecycle settings used by [`WindowedPipeline::advance`].
    pub window: WindowConfig,
}

/// Settings for the windowed delta lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowConfig {
    /// Refresh communities with [`refresh_communities`] (Louvain seeded
    /// from the previous partition) instead of a cold
    /// [`detect_communities`] re-run after each window step. Seeding
    /// never lowers modularity and converges much faster when the window
    /// shifts gently; disable it to reproduce the cold-start baseline.
    pub seeded_refresh: bool,
    /// When a seeded refresh runs and the window step touched at most
    /// this fraction of the network's stations (evicted endpoints plus
    /// the batch's stations, over the post-advance station count), route
    /// the refresh through the **active-set** sweeps
    /// ([`crate::detect::refresh_communities_active`]), which re-examine
    /// only the nodes a committed move invalidated after the first
    /// whole-graph sweep. The refreshed detections are bit-identical
    /// either way — the touched fraction is a *policy* input choosing the
    /// faster path, never a correctness input. `0.0` disables the
    /// active-set route, `1.0` always takes it.
    pub active_refresh_threshold: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            seeded_refresh: true,
            active_refresh_threshold: 0.5,
        }
    }
}

/// Community detection results at the three temporal granularities.
#[derive(Debug, Clone)]
pub struct CommunitySet {
    /// `GBasic` (no temporal feature) — Table IV / Fig. 3.
    pub basic: CommunityDetection,
    /// `GDay` (day of week) — Table V / Figs. 4–5.
    pub day: CommunityDetection,
    /// `GHour` (hour of day) — Table VI / Figs. 6–7.
    pub hour: CommunityDetection,
}

impl CommunitySet {
    /// The detections in granularity order.
    pub fn all(&self) -> [&CommunityDetection; 3] {
        [&self.basic, &self.day, &self.hour]
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct ExpansionOutcome {
    /// Table I — original vs cleaned dataset.
    pub overview: DatasetOverview,
    /// Per-rule cleaning audit.
    pub cleaning: CleaningReport,
    /// The cleaned dataset used downstream.
    pub dataset: CleanDataset,
    /// Step 1 — candidate network (Table II / Fig. 1).
    pub candidate: CandidateNetwork,
    /// Step 2 — Algorithm 1 outcome.
    pub selection: SelectionOutcome,
    /// Step 2b — the expanded network and its trip graph (Table III / Fig. 2).
    pub selected: SelectedNetwork,
    /// Step 3 — community detection at the three granularities
    /// (Tables IV–VI, Figs. 3–7).
    pub communities: CommunitySet,
}

impl ExpansionOutcome {
    /// Convenience: number of newly selected stations.
    pub fn new_station_count(&self) -> usize {
        self.selection.selected.len()
    }

    /// Convenience: total stations in the expanded network.
    pub fn total_station_count(&self) -> usize {
        self.selected.stations.len()
    }
}

/// The pipeline runner.
#[derive(Debug, Clone, Default)]
pub struct ExpansionPipeline {
    config: PipelineConfig,
}

impl ExpansionPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run the full pipeline over a raw dataset.
    ///
    /// # Errors
    ///
    /// Propagates configuration and data errors from the individual steps
    /// (empty station list, no rentals, invalid thresholds).
    pub fn run(&self, raw: &RawDataset) -> Result<ExpansionOutcome> {
        let (outcome, _temporals) = self.run_parts(raw)?;
        Ok(outcome)
    }

    /// Run the full pipeline and keep it **live**: the returned
    /// [`WindowedPipeline`] retains the frozen temporal graphs so
    /// subsequent [`WindowedPipeline::advance`] calls can slide the trip
    /// window incrementally instead of rebuilding from raw data.
    ///
    /// The initial outcome is bit-identical to what [`Self::run`]
    /// produces for the same input.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::run`].
    pub fn run_windowed(&self, raw: &RawDataset) -> Result<WindowedPipeline> {
        let (outcome, temporals) = self.run_parts(raw)?;
        Ok(WindowedPipeline {
            config: self.config.clone(),
            outcome,
            temporals,
        })
    }

    /// Shared body of [`Self::run`] / [`Self::run_windowed`]: the outcome
    /// plus the temporal graphs the detections ran on.
    fn run_parts(&self, raw: &RawDataset) -> Result<(ExpansionOutcome, Vec<TemporalGraph>)> {
        let cleaning_outcome = clean_dataset(raw);
        let overview = DatasetOverview::from_cleaning(raw, &cleaning_outcome);
        let dataset = cleaning_outcome.dataset;

        let candidate = build_candidate_network(&dataset, &self.config.expansion)?;
        let selection = select_stations(&candidate, &self.config.expansion)?;
        let selected = build_selected_network(&dataset, &candidate, &selection)?;

        // One pass over the columnar trip table emits the edge lists for
        // all three granularities; `GBasic` shares the already-built
        // undirected CSR and the directed trip graph was frozen once at
        // network build — nothing on this path touches a hash-map builder
        // or re-derives adjacency. With a spill budget set (config or
        // `MOBY_SPILL_BUDGET_MB`), oversized builds route through the
        // out-of-core disk runs — bit-identical either way.
        let temporals = build_all_from_trips_spilled(
            &selected.trips,
            Some(&selected.undirected),
            self.config.build_shards,
            self.config.detect.threads,
            self.config.spill_budget_mb,
            None,
        )?;
        let communities = detect_set(&self.config.detect, &temporals, &selected);

        let outcome = ExpansionOutcome {
            overview,
            cleaning: cleaning_outcome.report,
            dataset,
            candidate,
            selection,
            selected,
            communities,
        };
        Ok((outcome, temporals))
    }
}

/// Cold community detection over all three temporal graphs.
fn detect_set(
    config: &DetectConfig,
    temporals: &[TemporalGraph],
    selected: &SelectedNetwork,
) -> CommunitySet {
    let old_ids = selected.fixed_ids();
    let mut detections = Vec::with_capacity(3);
    for temporal in temporals {
        detections.push(detect_communities(
            temporal,
            &selected.directed,
            &old_ids,
            config,
        ));
    }
    let hour = detections.pop().expect("three granularities");
    let day = detections.pop().expect("three granularities");
    let basic = detections.pop().expect("three granularities");
    CommunitySet { basic, day, hour }
}

/// A pipeline outcome kept **live** for windowed operation.
///
/// Produced by [`ExpansionPipeline::run_windowed`]. Each
/// [`advance`](Self::advance) call slides the trip window: expired trips
/// leave through the eviction arm
/// ([`SelectedNetwork::advance_window`]), fresh trips enter through the
/// ingestion arm, all three temporal graphs advance incrementally
/// (bit-identical to full rebuilds over the surviving data), and the
/// community detections refresh — seeded from the previous partitions by
/// default ([`WindowConfig::seeded_refresh`]).
#[derive(Debug, Clone)]
pub struct WindowedPipeline {
    config: PipelineConfig,
    /// The current pipeline artefacts; `selected` (Table III) and
    /// `communities` (Tables IV–VI) track the window, while the
    /// cleaning/candidate/selection artefacts describe the original run.
    pub outcome: ExpansionOutcome,
    temporals: Vec<TemporalGraph>,
}

impl WindowedPipeline {
    /// The configuration this pipeline runs under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The live temporal graphs (`GBasic`, `GDay`, `GHour`), current as
    /// of the last [`advance`](Self::advance).
    pub fn temporals(&self) -> &[TemporalGraph] {
        &self.temporals
    }

    /// Slide the trip window: evict every trip before `window`, ingest
    /// `batch`, advance the temporal graphs incrementally and refresh the
    /// community detections.
    ///
    /// The station-level state is advanced by
    /// [`SelectedNetwork::advance_window`] (Table III updated
    /// incrementally); the temporal graphs advance through
    /// [`apply_window_all`], sharing the already-advanced undirected trip
    /// graph as `GBasic`. Communities refresh seeded from the previous
    /// partitions when [`WindowConfig::seeded_refresh`] is on (modularity
    /// never drops below the seed), or via a cold
    /// [`detect_communities`] re-run when it is off.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::UnknownStation`] if the batch references a
    /// station outside the selected network; the pipeline state is
    /// untouched on error.
    pub fn advance(&mut self, batch: &TripBatch, window: WindowStart) -> Result<WindowOutcome> {
        let threads = self.config.detect.threads;
        let outcome = self
            .outcome
            .selected
            .advance_window(batch, window, threads)?;

        let temporals = std::mem::take(&mut self.temporals);
        self.temporals = apply_window_all(
            temporals,
            &self.outcome.selected.trips,
            &outcome,
            Some(self.outcome.selected.undirected.clone()),
            threads,
        );

        self.outcome.communities = if self.config.window.seeded_refresh {
            let selected = &self.outcome.selected;
            let old_ids = selected.fixed_ids();
            // Policy gate for the active-set sweeps: the fraction of
            // stations this step touched (evicted endpoints ∪ batch
            // stations). Purely a performance decision — both refresh
            // paths return identical detections.
            let mut touched = outcome.evicted.touched_stations();
            touched.extend(batch.station_ids());
            touched.sort_unstable();
            touched.dedup();
            let stations = selected.trips.station_ids().len().max(1);
            let active = (touched.len() as f64 / stations as f64)
                <= self.config.window.active_refresh_threshold;
            let mut refreshed = Vec::with_capacity(3);
            for (temporal, previous) in self.temporals.iter().zip(self.outcome.communities.all()) {
                let refresh = if active {
                    refresh_communities_active
                } else {
                    refresh_communities
                };
                refreshed.push(refresh(
                    temporal,
                    &selected.directed,
                    &old_ids,
                    previous,
                    &self.config.detect,
                ));
            }
            let hour = refreshed.pop().expect("three granularities");
            let day = refreshed.pop().expect("three granularities");
            let basic = refreshed.pop().expect("three granularities");
            CommunitySet { basic, day, hour }
        } else {
            detect_set(&self.config.detect, &self.temporals, &self.outcome.selected)
        };
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_data::synth::{generate, SynthConfig};

    fn outcome() -> ExpansionOutcome {
        let raw = generate(&SynthConfig::small_test());
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .unwrap()
    }

    #[test]
    fn pipeline_produces_all_artifacts() {
        let out = outcome();
        // Table I shape.
        assert!(out.overview.rentals.0 > out.overview.rentals.1);
        assert!(out.overview.stations.0 > out.overview.stations.1);
        // Candidate graph is much larger than the station set.
        assert!(out.candidate.nodes.len() > out.dataset.stations.len());
        assert_eq!(out.candidate.summary.trips, out.dataset.rentals.len());
        // Selection produced new stations but fewer than the candidates.
        assert!(out.new_station_count() > 0);
        assert!(out.new_station_count() < out.candidate.candidate_ids().len());
        // Selected network contains both groups and conserves trips.
        assert_eq!(
            out.total_station_count(),
            out.dataset.stations.len() + out.new_station_count()
        );
        assert_eq!(out.selected.table.total_trips, out.dataset.rentals.len());
        // Community detection ran at all three granularities.
        assert!(out.communities.basic.community_count() >= 2);
        assert!(out.communities.day.community_count() >= 2);
        assert!(out.communities.hour.community_count() >= 2);
    }

    #[test]
    fn modularity_trend_matches_paper_shape() {
        // The paper reports Q rising with temporal granularity
        // (0.25 -> 0.32 -> 0.54). Allow slack but require the coarse trend.
        let out = outcome();
        let q_basic = out.communities.basic.modularity;
        let q_day = out.communities.day.modularity;
        let q_hour = out.communities.hour.modularity;
        assert!(q_basic > 0.0);
        assert!(
            q_hour > q_basic,
            "expected GHour modularity ({q_hour:.3}) above GBasic ({q_basic:.3})"
        );
        assert!(
            q_day >= q_basic - 0.05,
            "expected GDay modularity ({q_day:.3}) to be at least near GBasic ({q_basic:.3})"
        );
    }

    #[test]
    fn community_counts_rise_with_granularity() {
        let out = outcome();
        let n_basic = out.communities.basic.community_count();
        let n_hour = out.communities.hour.community_count();
        assert!(
            n_hour >= n_basic,
            "GHour should have at least as many communities ({n_hour} vs {n_basic})"
        );
    }

    #[test]
    fn majority_of_trips_are_self_contained() {
        // Paper: ~74% of trips start and end in the same GBasic community.
        let out = outcome();
        let share = out.communities.basic.table.self_contained_share();
        assert!(
            share > 0.5,
            "expected a majority of self-contained trips, got {share:.2}"
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let raw = generate(&SynthConfig::small_test());
        let pipeline = ExpansionPipeline::new(PipelineConfig::default());
        let a = pipeline.run(&raw).unwrap();
        let b = pipeline.run(&raw).unwrap();
        assert_eq!(a.selection.selected, b.selection.selected);
        assert_eq!(
            a.communities.basic.station_partition,
            b.communities.basic.station_partition
        );
        assert_eq!(a.communities.hour.modularity, b.communities.hour.modularity);
    }

    #[test]
    fn pipeline_result_is_shard_count_independent() {
        let raw = generate(&SynthConfig::small_test());
        let base = ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .unwrap();
        let sharded = ExpansionPipeline::new(PipelineConfig {
            build_shards: Some(4),
            ..PipelineConfig::default()
        })
        .run(&raw)
        .unwrap();
        assert_eq!(base.selection.selected, sharded.selection.selected);
        for (a, b) in base.communities.all().iter().zip(sharded.communities.all()) {
            assert_eq!(a.station_partition, b.station_partition);
            assert_eq!(a.modularity, b.modularity);
        }
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let pipeline = ExpansionPipeline::new(PipelineConfig::default());
        assert!(pipeline.run(&RawDataset::default()).is_err());
    }

    #[test]
    fn run_windowed_matches_run() {
        let raw = generate(&SynthConfig::small_test());
        let pipeline = ExpansionPipeline::new(PipelineConfig::default());
        let plain = pipeline.run(&raw).unwrap();
        let windowed = pipeline.run_windowed(&raw).unwrap();
        assert_eq!(
            plain.selection.selected,
            windowed.outcome.selection.selected
        );
        for (a, b) in plain
            .communities
            .all()
            .iter()
            .zip(windowed.outcome.communities.all())
        {
            assert_eq!(a.station_partition, b.station_partition);
            assert_eq!(a.modularity, b.modularity);
        }
        assert_eq!(windowed.temporals().len(), 3);
    }

    #[test]
    fn windowed_advance_matches_fresh_build_over_surviving_data() {
        let raw = generate(&SynthConfig::small_test());
        let pipeline = ExpansionPipeline::new(PipelineConfig::default());
        let mut live = pipeline.run_windowed(&raw).unwrap();
        // A batch of replayed early rentals rides along with the eviction.
        let mut batch = TripBatch::new();
        {
            let trips = &live.outcome.selected.trips;
            for k in 0..20.min(trips.len()) {
                batch.push(
                    trips.station_id(trips.src()[k]),
                    trips.station_id(trips.dst()[k]),
                    live.outcome.dataset.rentals[k].start_time,
                );
            }
        }
        let outcome = live.advance(&batch, WindowStart::new(3, 0)).unwrap();
        assert!(
            outcome.evicted.evicted_rows() > 0,
            "window must expire rows"
        );

        // The live temporal graphs are bit-identical to one-shot rebuilds
        // over the post-window table.
        let want =
            crate::temporal::build_all_from_trips(&live.outcome.selected.trips, None, Some(1));
        for (got, want) in live.temporals().iter().zip(&want) {
            assert_eq!(got.granularity, want.granularity);
            assert_eq!(got.csr, want.csr, "{}", got.granularity.graph_name());
            assert_eq!(
                got.csr.total_weight().to_bits(),
                want.csr.total_weight().to_bits()
            );
            assert_eq!(got.layer_map, want.layer_map);
        }
        // Refreshed detections cover all three granularities of the new
        // window.
        assert!(live.outcome.communities.basic.community_count() >= 2);
        assert!(live.outcome.communities.hour.community_count() >= 2);
    }

    #[test]
    fn windowed_refresh_toggle_matches_cold_detection() {
        let raw = generate(&SynthConfig::small_test());
        let cold_cfg = PipelineConfig {
            window: WindowConfig {
                seeded_refresh: false,
                ..WindowConfig::default()
            },
            ..PipelineConfig::default()
        };
        let mut cold = ExpansionPipeline::new(cold_cfg).run_windowed(&raw).unwrap();
        let window = WindowStart::new(2, 0);
        cold.advance(&TripBatch::new(), window).unwrap();
        // With seeding off, the refresh IS a fresh cold detection over the
        // advanced graphs.
        let want = detect_set(
            &cold.config().detect,
            cold.temporals(),
            &cold.outcome.selected,
        );
        for (a, b) in cold.outcome.communities.all().iter().zip(want.all()) {
            assert_eq!(a.station_partition, b.station_partition);
            assert_eq!(a.modularity, b.modularity);
        }

        // The seeded refresh runs on identical graphs — the refresh mode
        // never affects graph state — and still produces valid detections.
        // (Seeding guarantees Q ≥ the seed partition's Q on the new graph,
        // covered by the `refresh_communities` tests; a cold restart may
        // legitimately land in a different basin.)
        let mut seeded = ExpansionPipeline::new(PipelineConfig::default())
            .run_windowed(&raw)
            .unwrap();
        seeded.advance(&TripBatch::new(), window).unwrap();
        for (s, (gs, gc)) in seeded
            .outcome
            .communities
            .all()
            .iter()
            .zip(seeded.temporals().iter().zip(cold.temporals()))
        {
            assert_eq!(gs.csr, gc.csr);
            assert!(s.modularity.is_finite() && s.modularity > 0.0);
            assert!(s.community_count() >= 2);
        }
    }

    #[test]
    fn active_refresh_policy_never_changes_detections() {
        // The touched-fraction gate only picks between two bit-identical
        // refresh paths: forcing the active-set route (threshold 1.0) and
        // forbidding it (threshold 0.0) must produce identical outcomes.
        let raw = generate(&SynthConfig::small_test());
        let mut pipes: Vec<WindowedPipeline> = [1.0f64, 0.0]
            .iter()
            .map(|&threshold| {
                ExpansionPipeline::new(PipelineConfig {
                    window: WindowConfig {
                        active_refresh_threshold: threshold,
                        ..WindowConfig::default()
                    },
                    ..PipelineConfig::default()
                })
                .run_windowed(&raw)
                .unwrap()
            })
            .collect();
        let mut batch = TripBatch::new();
        {
            let trips = &pipes[0].outcome.selected.trips;
            for k in 0..20.min(trips.len()) {
                batch.push(
                    trips.station_id(trips.src()[k]),
                    trips.station_id(trips.dst()[k]),
                    pipes[0].outcome.dataset.rentals[k].start_time,
                );
            }
        }
        for window in [WindowStart::new(2, 0), WindowStart::new(4, 12)] {
            for pipe in pipes.iter_mut() {
                pipe.advance(&batch, window).unwrap();
            }
            let (always, never) = (&pipes[0], &pipes[1]);
            for (a, b) in always
                .outcome
                .communities
                .all()
                .iter()
                .zip(never.outcome.communities.all())
            {
                assert_eq!(a.raw_partition, b.raw_partition);
                assert_eq!(a.station_partition, b.station_partition);
                assert_eq!(a.modularity.to_bits(), b.modularity.to_bits());
            }
        }
    }
}
