//! Step 2b — folding rejected candidates back into the network and building
//! the *selected graph* (§IV-B step 3, Table III, Fig. 2).
//!
//! After Algorithm 1 picks the new stations, every location that belonged to
//! a rejected candidate is "reassigned to the nearest station" — nearest
//! among the union of pre-existing and newly selected stations. The total
//! number of trips is unchanged by construction, which is the invariant the
//! paper calls out under Table III.

use crate::candidate::{CandidateNetwork, TRIP_LABEL};
use crate::selection::SelectionOutcome;
use crate::{CoreError, Result};
use moby_cluster::assign::StationAssigner;
use moby_data::schema::{CleanDataset, LocationId};
use moby_data::trips::{AppendOutcome, EvictOutcome, TripBatch, TripTable, WindowStart};
use moby_geo::GeoPoint;
use moby_graph::{
    build_dense_csr, props, CsrDelta, CsrEvict, CsrGraph, GraphStore, NodeId, PropValue,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A station of the final (expanded) network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinalStation {
    /// Node id (original station id, or the candidate id for new stations).
    pub id: NodeId,
    /// Display name.
    pub name: String,
    /// Position.
    pub position: GeoPoint,
    /// Whether the station pre-existed (as opposed to newly selected).
    pub is_fixed: bool,
}

/// One group row of Table III (pre-existing or selected stations).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupRow {
    /// Number of stations in the group.
    pub stations: usize,
    /// Trips departing from the group's stations.
    pub trips_from: usize,
    /// Trips arriving at the group's stations.
    pub trips_to: usize,
    /// Distinct directed edges departing from the group's stations.
    pub edges_from: usize,
    /// Distinct directed edges arriving at the group's stations.
    pub edges_to: usize,
}

/// The paper's Table III: the selected graph broken down by station group.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SelectedGraphTable {
    /// Pre-existing stations row.
    pub pre_existing: GroupRow,
    /// Newly selected stations row.
    pub selected: GroupRow,
    /// Total number of stations.
    pub total_stations: usize,
    /// Total number of trips.
    pub total_trips: usize,
    /// Total number of distinct directed edges.
    pub total_edges: usize,
}

/// What one [`SelectedNetwork::advance_window`] call did: the eviction's
/// remap (always `None` — the station table is pinned) and evicted rows,
/// plus the append the new batch produced. Feed both to
/// [`temporal::apply_evict_all`](crate::temporal::apply_evict_all) /
/// [`temporal::apply_batch_all`](crate::temporal::apply_batch_all), in
/// that order, to advance the temporal graphs through the same window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// The expired rows dropped by the leading eviction.
    pub evicted: EvictOutcome,
    /// The append the trailing batch produced.
    pub appended: AppendOutcome,
}

/// The final expanded network with its trip graph.
///
/// The station directory and both frozen graphs are `Arc`-backed, so a
/// `clone()` intended as a read snapshot shares them instead of deep
/// copying; only the mutable parts (trip table, property store, Table III
/// counters) are copied. The serving layer
/// (`moby_server`) leans on this: publishing a snapshot per ingested
/// batch costs O(trip table), never O(adjacency slabs).
#[derive(Debug, Clone)]
pub struct SelectedNetwork {
    /// All stations (pre-existing first, then selected, each sorted by id).
    /// Behind an `Arc` because the station set is pinned for the lifetime
    /// of the network (eviction never drops stations), so every snapshot
    /// shares one directory.
    pub stations: std::sync::Arc<Vec<FinalStation>>,
    /// Mapping from cleaned location id to its final station.
    pub location_to_station: HashMap<LocationId, NodeId>,
    /// Property-graph store with one `TRIP` relationship per rental — the
    /// full-fidelity record (the Neo4j analogue) behind the reporting
    /// layer's profiles; graph construction no longer reads it.
    pub store: GraphStore,
    /// The columnar trip table: one row per rental over the shared sorted
    /// station-intern table. One pass over these columns feeds every
    /// graph the pipeline builds.
    pub trips: TripTable,
    /// Frozen directed trip graph, built straight from
    /// [`SelectedNetwork::trips`] by sort-merge — shared by every
    /// downstream consumer; nothing re-freezes it.
    pub directed: CsrGraph,
    /// Frozen undirected trip graph (`GBasic` before temporal splitting),
    /// also built by sort-merge from the trip table.
    pub undirected: CsrGraph,
    /// Table III counts.
    pub table: SelectedGraphTable,
}

impl SelectedNetwork {
    /// Ids of the pre-existing stations.
    pub fn fixed_ids(&self) -> HashSet<NodeId> {
        self.stations
            .iter()
            .filter(|s| s.is_fixed)
            .map(|s| s.id)
            .collect()
    }

    /// Ids of the newly selected stations.
    pub fn new_ids(&self) -> HashSet<NodeId> {
        self.stations
            .iter()
            .filter(|s| !s.is_fixed)
            .map(|s| s.id)
            .collect()
    }

    /// Positions of all stations keyed by id.
    pub fn positions(&self) -> HashMap<NodeId, GeoPoint> {
        self.stations.iter().map(|s| (s.id, s.position)).collect()
    }

    /// Look up a station by id.
    pub fn station(&self, id: NodeId) -> Option<&FinalStation> {
        self.stations.iter().find(|s| s.id == id)
    }

    /// Ingest a batch of new trips — the streaming entry point of the
    /// construction layer.
    ///
    /// Appends the batch to the columnar [`trips`](SelectedNetwork::trips)
    /// table, advances the frozen
    /// [`directed`](SelectedNetwork::directed) /
    /// [`undirected`](SelectedNetwork::undirected) graphs by
    /// [`CsrGraph::apply_delta`] (bit-identical to rebuilding them from
    /// the concatenated table, untouched rows copied rather than
    /// re-merged), records the trips in the property store for the
    /// reporting layer, and updates Table III — trip counters
    /// incrementally from the batch, edge counters from the merged rows.
    /// Feed the returned [`AppendOutcome`] to
    /// [`temporal::apply_batch_all`](crate::temporal::apply_batch_all) to
    /// advance the `GBasic`/`GDay`/`GHour` graphs from the same batch.
    ///
    /// The station set of a selected network is fixed by the expansion
    /// run, so every batch endpoint must be a known station.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownStation`] when a batch endpoint is not a
    /// station of this network — in the trip table *or* in the property
    /// store. Validation happens before any mutation, so a failed ingest
    /// leaves the network untouched.
    pub fn ingest_batch(
        &mut self,
        batch: &TripBatch,
        threads: Option<usize>,
    ) -> Result<AppendOutcome> {
        // Validate every endpoint against both stateful sinks up front:
        // everything after this loop is infallible, so the network never
        // ends up with a half-applied batch.
        for (src, dst, ..) in batch.iter() {
            for id in [src, dst] {
                if self.trips.station_index(id).is_none() || !self.store.contains_node(id) {
                    return Err(CoreError::UnknownStation(id));
                }
            }
        }
        let outcome = self.trips.append_batch(batch);
        debug_assert!(
            outcome.old_to_new.is_none(),
            "validated batches never intern new stations"
        );

        // Advance the frozen trip graphs row-by-row from the batch columns.
        let bs = outcome.batch_start;
        let (src, dst, w) = (
            &self.trips.src()[bs..],
            &self.trips.dst()[bs..],
            &self.trips.weights()[bs..],
        );
        let station_ids = self.trips.station_ids().to_vec();
        let delta = CsrDelta::from_dense(true, station_ids.clone(), None, src, dst, w);
        self.directed = self.directed.apply_delta(&delta, threads);
        let delta = CsrDelta::from_dense(false, station_ids, None, src, dst, w);
        self.undirected = self.undirected.apply_delta(&delta, threads);

        // Full-fidelity record for the reporting layer's profiles. Both
        // endpoints were validated against the store above, so adding the
        // edge cannot fail.
        for (src, dst, day, hour, _) in batch.iter() {
            self.store
                .add_edge(
                    src,
                    dst,
                    TRIP_LABEL,
                    props([
                        ("day", PropValue::from(i64::from(day))),
                        ("hour", PropValue::from(i64::from(hour))),
                    ]),
                )
                .expect("endpoints validated against the store");
        }

        // Table III: trip counters advance from the batch rows alone;
        // edge counters re-tally from the merged directed rows (distinct
        // edges can only be counted there).
        let fixed_dense = fixed_flags(&self.stations, &self.trips);
        for k in bs..self.trips.len() {
            tally_trip(
                &fixed_dense,
                self.trips.src()[k],
                self.trips.dst()[k],
                &mut self.table.pre_existing,
                &mut self.table.selected,
            );
        }
        self.table.total_trips = self.trips.len();
        self.table.total_edges = tally_edges(
            &fixed_dense,
            &self.trips,
            &self.directed,
            &mut self.table.pre_existing,
            &mut self.table.selected,
        );
        Ok(outcome)
    }

    /// Advance the network by one window step: **evict** every trip that
    /// started before `window`, then **ingest** `batch` — the composed
    /// sliding-window verb of the delta lifecycle.
    ///
    /// The station set of a selected network is fixed by the expansion
    /// run, so the eviction is *pinned*
    /// ([`TripTable::evict_before_pinned`]): a station whose last trip
    /// expires stays in the intern table as an isolated row, dense
    /// indices never shift, and the frozen
    /// [`directed`](SelectedNetwork::directed) /
    /// [`undirected`](SelectedNetwork::undirected) graphs retreat through
    /// [`CsrGraph::apply_evict`] — bit-identical to rebuilding them from
    /// the surviving table. Expired `TRIP` relationships leave the
    /// property store, and Table III advances incrementally: evicted rows
    /// decrement the per-group trip counters, the batch increments them,
    /// and distinct-edge counts re-tally from the merged rows (inside
    /// [`ingest_batch`](SelectedNetwork::ingest_batch)).
    ///
    /// The eviction runs **before** the ingest, so batch rows predating
    /// `window` are accepted and survive until the *next* window step —
    /// late-arriving trips are data, not errors; the caller chooses each
    /// step's horizon.
    ///
    /// Feed the returned [`WindowOutcome`] halves to
    /// [`temporal::apply_evict_all`](crate::temporal::apply_evict_all)
    /// and
    /// [`temporal::apply_batch_all`](crate::temporal::apply_batch_all)
    /// (in that order) to carry `GBasic`/`GDay`/`GHour` through the same
    /// step, or use
    /// [`WindowedPipeline`](crate::pipeline::WindowedPipeline) which
    /// composes all of it with a seeded community refresh.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownStation`] when a batch endpoint is not a
    /// station of this network. Validation happens before the eviction,
    /// so a failed call leaves the network *completely* untouched — no
    /// half-applied window.
    pub fn advance_window(
        &mut self,
        batch: &TripBatch,
        window: WindowStart,
        threads: Option<usize>,
    ) -> Result<WindowOutcome> {
        for (src, dst, ..) in batch.iter() {
            for id in [src, dst] {
                if self.trips.station_index(id).is_none() || !self.store.contains_node(id) {
                    return Err(CoreError::UnknownStation(id));
                }
            }
        }

        let evicted = self.trips.evict_before_pinned(window);
        if !evicted.is_noop() {
            let touched = evicted.touched_stations();
            let station_ids = self.trips.station_ids().to_vec();
            let ev = CsrEvict::from_dense(
                true,
                station_ids.clone(),
                None,
                touched.clone(),
                self.trips.src(),
                self.trips.dst(),
                self.trips.weights(),
            );
            self.directed = self.directed.apply_evict(&ev, threads);
            let ev = CsrEvict::from_dense(
                false,
                station_ids,
                None,
                touched,
                self.trips.src(),
                self.trips.dst(),
                self.trips.weights(),
            );
            self.undirected = self.undirected.apply_evict(&ev, threads);

            // The full-fidelity store drops the same expired trips (nodes
            // stay — a station with no surviving trips is still a station).
            let removed = self.store.retain_edges(|e| {
                if e.label != TRIP_LABEL {
                    return true;
                }
                let day = e.props.get("day").and_then(|v| v.as_int()).unwrap_or(0) as u8;
                let hour = e.props.get("hour").and_then(|v| v.as_int()).unwrap_or(0) as u8;
                window.keeps(day, hour)
            });
            debug_assert_eq!(removed, evicted.evicted_rows(), "store/table drift");

            // Table III: evicted rows decrement the per-group trip
            // counters (the pinned table keeps dense indices stable, so
            // the evicted endpoints still resolve).
            let fixed_dense = fixed_flags(&self.stations, &self.trips);
            for k in 0..evicted.evicted_rows() {
                let src = self
                    .trips
                    .station_index(evicted.evicted_src[k])
                    .expect("pinned table keeps every station");
                let dst = self
                    .trips
                    .station_index(evicted.evicted_dst[k])
                    .expect("pinned table keeps every station");
                untally_trip(
                    &fixed_dense,
                    src,
                    dst,
                    &mut self.table.pre_existing,
                    &mut self.table.selected,
                );
            }
        }

        // The trailing ingest refreshes total_trips and re-tallies the
        // distinct-edge counters off the post-window merged rows, so the
        // table is fully consistent on return even for an empty batch.
        let appended = self.ingest_batch(batch, threads)?;
        Ok(WindowOutcome { evicted, appended })
    }
}

/// Build the selected network: the expanded station set, the reassigned
/// location mapping, the trip store/graphs and Table III.
pub fn build_selected_network(
    dataset: &CleanDataset,
    network: &CandidateNetwork,
    selection: &SelectionOutcome,
) -> Result<SelectedNetwork> {
    // --- Final station list. ---
    let mut stations: Vec<FinalStation> = network
        .nodes
        .iter()
        .filter(|n| n.kind.is_fixed())
        .map(|n| FinalStation {
            id: n.id,
            name: n.name.clone(),
            position: n.position,
            is_fixed: true,
        })
        .collect();
    stations.sort_by_key(|s| s.id);
    let mut new_stations: Vec<FinalStation> = selection
        .selected
        .iter()
        .map(|s| FinalStation {
            id: s.id,
            name: format!("New station (rank {:03})", s.rank),
            position: s.position,
            is_fixed: false,
        })
        .collect();
    new_stations.sort_by_key(|s| s.id);
    stations.extend(new_stations);
    if stations.is_empty() {
        return Err(CoreError::NoStations);
    }

    let final_ids: HashSet<NodeId> = stations.iter().map(|s| s.id).collect();
    let assigner = StationAssigner::new(&stations.iter().map(|s| s.position).collect::<Vec<_>>())
        .ok_or(CoreError::NoStations)?;
    let station_id_by_index: Vec<NodeId> = stations.iter().map(|s| s.id).collect();

    // --- Location reassignment. ---
    let location_positions: HashMap<LocationId, GeoPoint> = dataset
        .locations
        .iter()
        .map(|l| (l.id, l.position))
        .collect();
    let mut location_to_station: HashMap<LocationId, NodeId> = HashMap::new();
    for (&loc_id, &node) in &network.location_to_node {
        if final_ids.contains(&node) {
            location_to_station.insert(loc_id, node);
        } else {
            let pos = location_positions.get(&loc_id).ok_or_else(|| {
                CoreError::Internal(format!("location {loc_id} missing a position"))
            })?;
            let assignment = assigner.assign(*pos);
            location_to_station.insert(loc_id, station_id_by_index[assignment.station_index]);
        }
    }

    // --- Columnar trip table over the final stations. ---
    // Location endpoints resolve through a sorted lookup table (binary
    // search), so the per-rental hot loop performs zero hash-map
    // operations.
    let mut trips = TripTable::new(stations.iter().map(|s| s.id).collect());
    let mut location_lookup: Vec<(LocationId, u32)> = location_to_station
        .iter()
        .map(|(&loc, &station)| {
            (
                loc,
                trips
                    .station_index(station)
                    .expect("every mapped station is final"),
            )
        })
        .collect();
    location_lookup.sort_unstable();
    let resolve = |loc: LocationId| -> Option<u32> {
        location_lookup
            .binary_search_by_key(&loc, |&(l, _)| l)
            .ok()
            .map(|at| location_lookup[at].1)
    };

    // --- Trip store over final stations (full-fidelity record for the
    //     reporting layer; not on the construction hot path). ---
    let mut store = GraphStore::new();
    for s in &stations {
        store.add_node(
            s.id,
            if s.is_fixed { "Station" } else { "NewStation" },
            props([
                ("name", PropValue::from(s.name.as_str())),
                ("lat", PropValue::from(s.position.lat())),
                ("lon", PropValue::from(s.position.lon())),
                ("fixed", PropValue::from(s.is_fixed)),
            ]),
        );
    }
    for r in &dataset.rentals {
        let (Some(src), Some(dst)) = (resolve(r.rental_location_id), resolve(r.return_location_id))
        else {
            return Err(CoreError::Internal(format!(
                "rental {} references an unmapped location",
                r.id
            )));
        };
        trips.push(src, dst, r.start_time);
        store
            .add_edge(
                trips.station_id(src),
                trips.station_id(dst),
                TRIP_LABEL,
                props([
                    (
                        "day",
                        PropValue::from(i64::from(r.start_time.weekday().index())),
                    ),
                    ("hour", PropValue::from(i64::from(r.start_time.hour()))),
                ]),
            )
            .map_err(|e| CoreError::Internal(format!("failed to add trip edge: {e}")))?;
    }

    // --- Frozen trip graphs, built by columnar sort-merge straight from
    //     the dense trip columns (one shared station-intern table; no
    //     hash-map builder, no re-interning). ---
    let directed = build_dense_csr(
        true,
        trips.station_ids().to_vec(),
        trips.src(),
        trips.dst(),
        trips.weights(),
        None,
    );
    let undirected = build_dense_csr(
        false,
        trips.station_ids().to_vec(),
        trips.src(),
        trips.dst(),
        trips.weights(),
        None,
    );
    let table = build_table(&stations, &trips, &directed);

    Ok(SelectedNetwork {
        stations: std::sync::Arc::new(stations),
        location_to_station,
        store,
        trips,
        directed,
        undirected,
        table,
    })
}

/// Dense per-station fixed flags (trip table order), so the per-trip
/// tallies are an array index, not a set probe.
fn fixed_flags(stations: &[FinalStation], trips: &TripTable) -> Vec<bool> {
    let mut fixed_dense = vec![false; trips.station_count()];
    for s in stations {
        if s.is_fixed {
            fixed_dense[trips.station_index(s.id).expect("final station interned") as usize] = true;
        }
    }
    fixed_dense
}

/// Count one trip into the per-group from/to counters.
#[inline]
fn tally_trip(fixed_dense: &[bool], src: u32, dst: u32, pre: &mut GroupRow, sel: &mut GroupRow) {
    if fixed_dense[src as usize] {
        pre.trips_from += 1;
    } else {
        sel.trips_from += 1;
    }
    if fixed_dense[dst as usize] {
        pre.trips_to += 1;
    } else {
        sel.trips_to += 1;
    }
}

/// Remove one evicted trip from the per-group from/to counters — the
/// inverse of [`tally_trip`], used by the windowed eviction.
#[inline]
fn untally_trip(fixed_dense: &[bool], src: u32, dst: u32, pre: &mut GroupRow, sel: &mut GroupRow) {
    if fixed_dense[src as usize] {
        pre.trips_from -= 1;
    } else {
        sel.trips_from -= 1;
    }
    if fixed_dense[dst as usize] {
        pre.trips_to -= 1;
    } else {
        sel.trips_to -= 1;
    }
}

/// Re-tally the distinct directed edges per group straight off the frozen
/// rows (resetting the groups' edge counters) and return the total.
fn tally_edges(
    fixed_dense: &[bool],
    trips: &TripTable,
    directed: &CsrGraph,
    pre: &mut GroupRow,
    sel: &mut GroupRow,
) -> usize {
    pre.edges_from = 0;
    pre.edges_to = 0;
    sel.edges_from = 0;
    sel.edges_to = 0;
    let mut total_edges = 0usize;
    let fixed_of_id = |id: NodeId| {
        trips
            .station_index(id)
            .map(|i| fixed_dense[i as usize])
            .unwrap_or(false)
    };
    for (src, dst, _) in directed.edges() {
        total_edges += 1;
        if fixed_of_id(src) {
            pre.edges_from += 1;
        } else {
            sel.edges_from += 1;
        }
        if fixed_of_id(dst) {
            pre.edges_to += 1;
        } else {
            sel.edges_to += 1;
        }
    }
    total_edges
}

fn build_table(
    stations: &[FinalStation],
    trips: &TripTable,
    directed: &CsrGraph,
) -> SelectedGraphTable {
    let fixed_dense = fixed_flags(stations, trips);
    let fixed_count = fixed_dense.iter().filter(|&&f| f).count();
    let mut pre = GroupRow {
        stations: fixed_count,
        ..Default::default()
    };
    let mut sel = GroupRow {
        stations: stations.len() - fixed_count,
        ..Default::default()
    };

    // Trips per group (every rental counted once per endpoint role).
    for (&src, &dst) in trips.src().iter().zip(trips.dst()) {
        tally_trip(&fixed_dense, src, dst, &mut pre, &mut sel);
    }
    let total_edges = tally_edges(&fixed_dense, trips, directed, &mut pre, &mut sel);
    SelectedGraphTable {
        total_stations: stations.len(),
        total_trips: trips.len(),
        total_edges,
        pre_existing: pre,
        selected: sel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::build_candidate_network;
    use crate::selection::select_stations;
    use crate::ExpansionConfig;
    use moby_data::clean::clean_dataset;
    use moby_data::synth::{generate, SynthConfig};

    fn setup() -> (CleanDataset, CandidateNetwork, SelectionOutcome) {
        let ds = clean_dataset(&generate(&SynthConfig::small_test())).dataset;
        let cfg = ExpansionConfig::default();
        let net = build_candidate_network(&ds, &cfg).unwrap();
        let sel = select_stations(&net, &cfg).unwrap();
        (ds, net, sel)
    }

    #[test]
    fn station_counts_add_up() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        assert_eq!(out.stations.len(), ds.stations.len() + sel.selected.len());
        assert_eq!(out.fixed_ids().len(), ds.stations.len());
        assert_eq!(out.new_ids().len(), sel.selected.len());
        assert_eq!(out.table.total_stations, out.stations.len());
    }

    #[test]
    fn trips_are_conserved() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        assert_eq!(out.table.total_trips, ds.rentals.len());
        assert_eq!(out.store.edge_count(), ds.rentals.len());
        // From/To breakdowns each sum to the total trips.
        assert_eq!(
            out.table.pre_existing.trips_from + out.table.selected.trips_from,
            ds.rentals.len()
        );
        assert_eq!(
            out.table.pre_existing.trips_to + out.table.selected.trips_to,
            ds.rentals.len()
        );
    }

    #[test]
    fn edge_breakdown_sums_to_total() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        assert_eq!(
            out.table.pre_existing.edges_from + out.table.selected.edges_from,
            out.table.total_edges
        );
        assert_eq!(
            out.table.pre_existing.edges_to + out.table.selected.edges_to,
            out.table.total_edges
        );
        assert_eq!(out.directed.edge_count(), out.table.total_edges);
    }

    #[test]
    fn every_location_maps_to_a_final_station() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        let ids: HashSet<NodeId> = out.stations.iter().map(|s| s.id).collect();
        for loc in &ds.locations {
            let st = out.location_to_station.get(&loc.id).copied().unwrap();
            assert!(ids.contains(&st));
        }
    }

    #[test]
    fn rejected_candidates_are_not_final_stations() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        let final_ids: HashSet<NodeId> = out.stations.iter().map(|s| s.id).collect();
        for rejected_id in sel.rejected.keys() {
            assert!(!final_ids.contains(rejected_id));
        }
    }

    #[test]
    fn pre_existing_stations_carry_most_trips() {
        // The paper's Table III: the 92 pre-existing stations carry ~88% of
        // trips. The synthetic network should show the same dominance
        // (station endpoints are favoured and rejected candidates fold back
        // onto the nearest station, which is usually a fixed one).
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        let share = out.table.pre_existing.trips_from as f64 / ds.rentals.len() as f64;
        assert!(share > 0.5, "pre-existing share {share}");
    }

    #[test]
    fn ingest_batch_matches_rebuild_from_concatenated_table() {
        let (ds, net, sel) = setup();
        let mut out = build_selected_network(&ds, &net, &sel).unwrap();
        let before_trips = out.trips.len();
        // Replay the first rentals as a fresh batch (their endpoints are
        // guaranteed to be known stations).
        let mut batch = TripBatch::new();
        for k in 0..25.min(before_trips) {
            batch.push(
                out.trips.station_id(out.trips.src()[k]),
                out.trips.station_id(out.trips.dst()[k]),
                ds.rentals[k].start_time,
            );
        }
        let outcome = out.ingest_batch(&batch, Some(2)).unwrap();
        assert_eq!(outcome.batch_start, before_trips);
        assert!(outcome.old_to_new.is_none());
        assert_eq!(out.trips.len(), before_trips + batch.len());
        assert_eq!(out.store.edge_count(), out.trips.len());

        // Both frozen graphs and Table III equal a from-scratch rebuild
        // over the appended table.
        let want_directed = build_dense_csr(
            true,
            out.trips.station_ids().to_vec(),
            out.trips.src(),
            out.trips.dst(),
            out.trips.weights(),
            Some(1),
        );
        assert_eq!(out.directed, want_directed);
        assert_eq!(
            out.directed.total_weight().to_bits(),
            want_directed.total_weight().to_bits()
        );
        let want_undirected = build_dense_csr(
            false,
            out.trips.station_ids().to_vec(),
            out.trips.src(),
            out.trips.dst(),
            out.trips.weights(),
            Some(1),
        );
        assert_eq!(out.undirected, want_undirected);
        assert_eq!(
            out.table,
            build_table(&out.stations, &out.trips, &out.directed)
        );
    }

    #[test]
    fn ingest_batch_rejects_unknown_stations() {
        let (ds, net, sel) = setup();
        let mut out = build_selected_network(&ds, &net, &sel).unwrap();
        let before = out.trips.clone();
        let mut batch = TripBatch::new();
        batch.push(
            u64::MAX - 1, // no such station
            out.trips.station_id(0),
            ds.rentals[0].start_time,
        );
        assert_eq!(
            out.ingest_batch(&batch, None),
            Err(CoreError::UnknownStation(u64::MAX - 1))
        );
        // The failed ingest left the table untouched.
        assert_eq!(out.trips, before);
    }

    #[test]
    fn advance_window_matches_rebuild_over_surviving_table() {
        let (ds, net, sel) = setup();
        let mut out = build_selected_network(&ds, &net, &sel).unwrap();
        // A batch of replayed early rentals rides along with the eviction.
        let mut batch = TripBatch::new();
        for k in 0..20.min(out.trips.len()) {
            batch.push(
                out.trips.station_id(out.trips.src()[k]),
                out.trips.station_id(out.trips.dst()[k]),
                ds.rentals[k].start_time,
            );
        }
        let window = WindowStart::new(3, 0);
        let outcome = out.advance_window(&batch, window, Some(2)).unwrap();
        assert!(
            outcome.evicted.evicted_rows() > 0,
            "window must expire rows"
        );
        assert!(outcome.evicted.new_to_old.is_none(), "pinned table");
        assert_eq!(out.store.edge_count(), out.trips.len());

        // Graphs and Table III equal a from-scratch rebuild over the
        // post-window table (survivors + batch, in table order).
        for (directed, got) in [(true, &out.directed), (false, &out.undirected)] {
            let want = build_dense_csr(
                directed,
                out.trips.station_ids().to_vec(),
                out.trips.src(),
                out.trips.dst(),
                out.trips.weights(),
                Some(1),
            );
            assert_eq!(got, &want);
            assert_eq!(got.total_weight().to_bits(), want.total_weight().to_bits());
        }
        assert_eq!(
            out.table,
            build_table(&out.stations, &out.trips, &out.directed)
        );
    }

    #[test]
    fn advance_window_with_empty_batch_only_evicts() {
        let (ds, net, sel) = setup();
        let mut out = build_selected_network(&ds, &net, &sel).unwrap();
        let stations_before = out.trips.station_count();
        let outcome = out
            .advance_window(&TripBatch::new(), WindowStart::new(6, 0), Some(1))
            .unwrap();
        assert_eq!(outcome.appended.batch_start, out.trips.len());
        assert_eq!(out.trips.station_count(), stations_before, "pinned");
        assert_eq!(
            out.table,
            build_table(&out.stations, &out.trips, &out.directed)
        );
    }

    #[test]
    fn advance_window_rejects_unknown_stations_without_evicting() {
        let (ds, net, sel) = setup();
        let mut out = build_selected_network(&ds, &net, &sel).unwrap();
        let before = out.trips.clone();
        let table_before = out.table.clone();
        let mut batch = TripBatch::new();
        batch.push(
            u64::MAX - 1,
            out.trips.station_id(0),
            ds.rentals[0].start_time,
        );
        // The window would evict rows, but validation runs first: the
        // failed call leaves everything untouched.
        assert_eq!(
            out.advance_window(&batch, WindowStart::new(6, 23), None),
            Err(CoreError::UnknownStation(u64::MAX - 1))
        );
        assert_eq!(out.trips, before);
        assert_eq!(out.table, table_before);
    }

    #[test]
    fn new_station_names_carry_rank() {
        let (ds, net, sel) = setup();
        let out = build_selected_network(&ds, &net, &sel).unwrap();
        let new_station = out
            .stations
            .iter()
            .find(|s| !s.is_fixed)
            .expect("at least one new station");
        assert!(new_station.name.contains("rank"));
        assert!(out.station(new_station.id).is_some());
    }
}
