//! # moby-core
//!
//! The paper's primary contribution: graph-based optimisation of network
//! expansion for a dockless bike-sharing system.
//!
//! The crate composes the substrates (`moby-geo`, `moby-data`,
//! `moby-graph`, `moby-cluster`, `moby-community`) into the three-step
//! methodology of §IV:
//!
//! 1. **Graph construction** ([`candidate`]) — constrained hierarchical
//!    clustering condenses the raw dockless locations into candidate
//!    stations and builds the candidate trip graph (Table II / Fig. 1);
//! 2. **Station ranking and selection** ([`selection`], [`reassign`]) —
//!    Algorithm 1 with Rules 1–4 promotes the strongest candidates to new
//!    stations and folds the rest back onto the nearest station
//!    (Table III / Fig. 2);
//! 3. **Community detection** ([`temporal`], [`detect`]) — Louvain over the
//!    `GBasic` / `GDay` / `GHour` graphs validates that the expanded
//!    network exhibits coherent spatiotemporal communities
//!    (Tables IV–VI, Figs. 3–7).
//!
//! [`pipeline`] wires the full end-to-end run; [`report`] renders every
//! table and figure series as text/CSV; [`validate`] checks that newly
//! selected stations behave like pre-existing ones.
//!
//! ## Quick start
//!
//! ```
//! use moby_core::pipeline::{ExpansionPipeline, PipelineConfig};
//! use moby_data::synth::{generate, SynthConfig};
//!
//! let raw = generate(&SynthConfig::small_test());
//! let outcome = ExpansionPipeline::new(PipelineConfig::default()).run(&raw).unwrap();
//! assert!(outcome.selection.selected.len() > 0);
//! assert!(outcome.communities.basic.table.community_count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod candidate;
pub mod config;
pub mod detect;
pub mod pipeline;
pub mod reassign;
pub mod report;
pub mod selection;
pub mod temporal;
pub mod validate;

pub use config::ExpansionConfig;
pub use pipeline::{
    ExpansionOutcome, ExpansionPipeline, PipelineConfig, WindowConfig, WindowedPipeline,
};

use std::fmt;

/// Errors produced by the expansion pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The cleaned dataset has no usable fixed stations.
    NoStations,
    /// The cleaned dataset has no rentals.
    NoRentals,
    /// A configuration threshold was invalid.
    InvalidConfig(String),
    /// An ingested trip batch referenced a station the selected network
    /// does not contain.
    UnknownStation(u64),
    /// An internal invariant was violated (bug); the message describes it.
    Internal(String),
    /// An out-of-core spilled graph build failed on I/O (temp dir not
    /// writable, disk full). Carries the rendered context + OS error.
    Spill(String),
}

impl From<moby_graph::GraphError> for CoreError {
    fn from(err: moby_graph::GraphError) -> CoreError {
        match err {
            moby_graph::GraphError::Spill(msg) => CoreError::Spill(msg),
            other => CoreError::Internal(other.to_string()),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoStations => write!(f, "dataset contains no usable fixed stations"),
            CoreError::NoRentals => write!(f, "dataset contains no rentals"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnknownStation(id) => {
                write!(f, "trip batch references unknown station {id}")
            }
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
            CoreError::Spill(msg) => write!(f, "spill I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!CoreError::NoStations.to_string().is_empty());
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        assert!(CoreError::Internal("y".into()).to_string().contains('y'));
        assert!(!CoreError::NoRentals.to_string().is_empty());
        assert!(CoreError::UnknownStation(42).to_string().contains("42"));
        assert!(CoreError::Spill("disk full".into())
            .to_string()
            .contains("disk full"));
        assert_eq!(
            CoreError::from(moby_graph::GraphError::Spill("x".into())),
            CoreError::Spill("x".into())
        );
    }
}
