//! Step 1 — graph construction (§IV-A).
//!
//! Raw dockless rental/return locations are condensed into **candidate
//! stations** by constrained hierarchical clustering: pre-existing fixed
//! stations are immovable centroids that absorb everything within 50 m,
//! the remaining locations are clustered with complete linkage and a 100 m
//! boundary, and each resulting cluster becomes a candidate node placed at
//! its centroid. Every trip is then re-expressed as an edge between
//! candidate nodes, giving the *candidate graph* of Table II / Fig. 1.

use crate::{CoreError, ExpansionConfig, Result};
use moby_cluster::constrained::{constrained_clustering, ConstrainedConfig};
use moby_data::schema::{CleanDataset, LocationId, StationId};
use moby_geo::GeoPoint;
use moby_graph::aggregate::{self, AggregateSummary};
use moby_graph::{props, GraphStore, NodeId, PropValue, WeightedGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Candidate node ids are allocated from this base so they never collide
/// with real station ids.
pub const CANDIDATE_ID_BASE: NodeId = 100_000;

/// The relationship label used for trips in every graph store built here.
pub const TRIP_LABEL: &str = "TRIP";

/// What a node in the candidate graph represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A pre-existing fixed station.
    Fixed {
        /// The operator's station id.
        station_id: StationId,
    },
    /// A candidate station produced by clustering free locations.
    Candidate {
        /// Number of raw locations merged into the candidate.
        cluster_size: usize,
        /// Maximum pairwise distance among the merged locations (metres).
        diameter_m: f64,
    },
}

impl NodeKind {
    /// Whether the node is a pre-existing fixed station.
    pub fn is_fixed(&self) -> bool {
        matches!(self, NodeKind::Fixed { .. })
    }
}

/// A node of the candidate graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateNode {
    /// Graph node id (station id for fixed nodes, `CANDIDATE_ID_BASE + i`
    /// for candidates).
    pub id: NodeId,
    /// Display name.
    pub name: String,
    /// Geographic position (station position or cluster centroid).
    pub position: GeoPoint,
    /// Node role.
    pub kind: NodeKind,
}

/// The candidate network: nodes, the location → node mapping, the raw trip
/// store and its weighted projections.
#[derive(Debug, Clone)]
pub struct CandidateNetwork {
    /// Every node (fixed stations first, then candidates).
    pub nodes: Vec<CandidateNode>,
    /// Mapping from cleaned location id to the node that now represents it.
    pub location_to_node: HashMap<LocationId, NodeId>,
    /// Property-graph store with one `TRIP` relationship per rental
    /// (carrying `day` and `hour` properties).
    pub store: GraphStore,
    /// Directed weighted projection (edge weight = number of trips).
    pub directed: WeightedGraph,
    /// Undirected weighted projection.
    pub undirected: WeightedGraph,
    /// Table II-style counts.
    pub summary: AggregateSummary,
}

impl CandidateNetwork {
    /// Ids of the fixed-station nodes.
    pub fn fixed_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_fixed())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of the candidate nodes.
    pub fn candidate_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !n.kind.is_fixed())
            .map(|n| n.id)
            .collect()
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&CandidateNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Positions of every node keyed by id.
    pub fn positions(&self) -> HashMap<NodeId, GeoPoint> {
        self.nodes.iter().map(|n| (n.id, n.position)).collect()
    }
}

/// Build the candidate network from a cleaned dataset.
///
/// # Errors
///
/// * [`CoreError::NoStations`] / [`CoreError::NoRentals`] for unusable data;
/// * [`CoreError::InvalidConfig`] when the configuration fails validation.
pub fn build_candidate_network(
    dataset: &CleanDataset,
    config: &ExpansionConfig,
) -> Result<CandidateNetwork> {
    config.validate()?;
    if dataset.stations.is_empty() {
        return Err(CoreError::NoStations);
    }
    if dataset.rentals.is_empty() {
        return Err(CoreError::NoRentals);
    }

    // --- Split locations into station-bound and free. ---
    let station_by_id: HashMap<StationId, &moby_data::schema::Station> =
        dataset.stations.iter().map(|s| (s.id, s)).collect();
    let mut location_to_node: HashMap<LocationId, NodeId> = HashMap::new();
    let mut free_locations: Vec<(LocationId, GeoPoint)> = Vec::new();
    for loc in &dataset.locations {
        match loc.station_id.filter(|sid| station_by_id.contains_key(sid)) {
            Some(sid) => {
                location_to_node.insert(loc.id, sid);
            }
            None => free_locations.push((loc.id, loc.position)),
        }
    }

    // --- Constrained clustering of the free locations. ---
    let station_points: Vec<GeoPoint> = dataset.stations.iter().map(|s| s.position).collect();
    let free_points: Vec<GeoPoint> = free_locations.iter().map(|(_, p)| *p).collect();
    let clustering = constrained_clustering(
        &station_points,
        &free_points,
        &ConstrainedConfig {
            station_absorb_radius_m: config.station_absorb_radius_m,
            cluster_boundary_m: config.cluster_boundary_m,
            linkage: config.linkage,
        },
    )
    .map_err(|e| CoreError::Internal(format!("constrained clustering failed: {e}")))?;

    // Locations absorbed into fixed stations.
    for group in &clustering.station_groups {
        let station_id = dataset.stations[group.station_index].id;
        for &member in &group.members {
            location_to_node.insert(free_locations[member].0, station_id);
        }
    }

    // --- Nodes. ---
    let mut nodes: Vec<CandidateNode> = dataset
        .stations
        .iter()
        .map(|s| CandidateNode {
            id: s.id,
            name: s.name.clone(),
            position: s.position,
            kind: NodeKind::Fixed { station_id: s.id },
        })
        .collect();
    for (i, cluster) in clustering.candidate_clusters.iter().enumerate() {
        let id = CANDIDATE_ID_BASE + i as NodeId;
        nodes.push(CandidateNode {
            id,
            name: format!("Candidate #{i:04}"),
            position: cluster.centroid,
            kind: NodeKind::Candidate {
                cluster_size: cluster.members.len(),
                diameter_m: cluster.diameter_m,
            },
        });
        for &member in &cluster.members {
            location_to_node.insert(free_locations[member].0, id);
        }
    }

    // --- Trip store over candidate nodes. ---
    let store = build_trip_store(&nodes, &location_to_node, dataset)?;
    let directed = aggregate::project_directed(&store, TRIP_LABEL);
    let undirected = aggregate::project_undirected(&store, TRIP_LABEL);
    let summary = aggregate::summarize(&store, TRIP_LABEL);

    Ok(CandidateNetwork {
        nodes,
        location_to_node,
        store,
        directed,
        undirected,
        summary,
    })
}

/// Build a property-graph store with one node per candidate node and one
/// `TRIP` relationship per rental (properties: `day` 0–6, `hour` 0–23).
///
/// Shared by the candidate network and by the selected network after
/// reassignment.
pub fn build_trip_store(
    nodes: &[CandidateNode],
    location_to_node: &HashMap<LocationId, NodeId>,
    dataset: &CleanDataset,
) -> Result<GraphStore> {
    let mut store = GraphStore::new();
    for n in nodes {
        store.add_node(
            n.id,
            if n.kind.is_fixed() {
                "Station"
            } else {
                "Candidate"
            },
            props([
                ("name", PropValue::from(n.name.as_str())),
                ("lat", PropValue::from(n.position.lat())),
                ("lon", PropValue::from(n.position.lon())),
                ("fixed", PropValue::from(n.kind.is_fixed())),
            ]),
        );
    }
    for r in &dataset.rentals {
        let (Some(&src), Some(&dst)) = (
            location_to_node.get(&r.rental_location_id),
            location_to_node.get(&r.return_location_id),
        ) else {
            return Err(CoreError::Internal(format!(
                "rental {} references a location with no node mapping",
                r.id
            )));
        };
        store
            .add_edge(
                src,
                dst,
                TRIP_LABEL,
                props([
                    (
                        "day",
                        PropValue::from(i64::from(r.start_time.weekday().index())),
                    ),
                    ("hour", PropValue::from(i64::from(r.start_time.hour()))),
                ]),
            )
            .map_err(|e| CoreError::Internal(format!("failed to add trip edge: {e}")))?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_data::clean::clean_dataset;
    use moby_data::synth::{generate, SynthConfig};
    use moby_geo::haversine_m;

    fn small_clean() -> CleanDataset {
        clean_dataset(&generate(&SynthConfig::small_test())).dataset
    }

    #[test]
    fn rejects_empty_inputs() {
        let cfg = ExpansionConfig::default();
        let empty = CleanDataset::default();
        assert!(matches!(
            build_candidate_network(&empty, &cfg),
            Err(CoreError::NoStations)
        ));
        let mut no_rentals = small_clean();
        no_rentals.rentals.clear();
        assert!(matches!(
            build_candidate_network(&no_rentals, &cfg),
            Err(CoreError::NoRentals)
        ));
    }

    #[test]
    fn every_location_is_mapped_to_a_node() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        for loc in &ds.locations {
            assert!(
                net.location_to_node.contains_key(&loc.id),
                "location {} unmapped",
                loc.id
            );
        }
    }

    #[test]
    fn fixed_nodes_match_stations_and_candidates_use_base_ids() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        let fixed = net.fixed_ids();
        assert_eq!(fixed.len(), ds.stations.len());
        for id in net.candidate_ids() {
            assert!(id >= CANDIDATE_ID_BASE);
        }
        assert!(
            net.candidate_ids().len() > ds.stations.len() / 2,
            "expected a healthy candidate pool"
        );
        assert_eq!(
            net.nodes.len(),
            net.fixed_ids().len() + net.candidate_ids().len()
        );
    }

    #[test]
    fn trip_counts_are_preserved() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        assert_eq!(net.summary.trips, ds.rentals.len());
        assert_eq!(net.store.edge_count(), ds.rentals.len());
        // Total directed weight equals the number of trips.
        assert_eq!(net.directed.total_weight() as usize, ds.rentals.len());
        assert_eq!(net.undirected.total_weight() as usize, ds.rentals.len());
    }

    #[test]
    fn candidate_clusters_respect_boundary_rule() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        for n in &net.nodes {
            if let NodeKind::Candidate { diameter_m, .. } = n.kind {
                assert!(diameter_m <= 100.0 + 1e-6, "diameter {diameter_m}");
            }
        }
    }

    #[test]
    fn locations_near_stations_are_absorbed() {
        let ds = small_clean();
        let cfg = ExpansionConfig::default();
        let net = build_candidate_network(&ds, &cfg).unwrap();
        let station_pos: HashMap<NodeId, GeoPoint> =
            ds.stations.iter().map(|s| (s.id, s.position)).collect();
        for loc in &ds.locations {
            let node = net.location_to_node[&loc.id];
            if let Some(sp) = station_pos.get(&node) {
                // Location mapped to a fixed station: either it is the
                // station's own location row or it sits within the absorb
                // radius.
                if loc.station_id != Some(node) {
                    let d = haversine_m(loc.position, *sp);
                    assert!(
                        d <= cfg.station_absorb_radius_m + 1e-6,
                        "location {} absorbed from {d} m away",
                        loc.id
                    );
                }
            }
        }
    }

    #[test]
    fn summary_counts_are_internally_consistent() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        let s = &net.summary;
        assert_eq!(s.nodes, net.nodes.len());
        assert!(s.directed_edges >= s.undirected_edges);
        assert!(s.undirected_edges >= s.undirected_edges_no_loops);
        assert!(s.directed_edges >= s.directed_edges_no_loops);
        assert!(s.trips >= s.directed_edges);
    }

    #[test]
    fn node_lookup_and_positions() {
        let ds = small_clean();
        let net = build_candidate_network(&ds, &ExpansionConfig::default()).unwrap();
        let first_station = ds.stations[0].id;
        assert!(net.node(first_station).is_some());
        assert!(net.node(999_999_999).is_none());
        assert_eq!(net.positions().len(), net.nodes.len());
    }
}
