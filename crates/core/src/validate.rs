//! Validation of the expanded network (the paper's third research
//! question): are the newly selected stations *not* outliers — do they
//! exhibit activity patterns representative of the existing network?
//!
//! The checks mirror how the paper argues validity:
//!
//! * new stations should be spread across the detected communities rather
//!   than forming an isolated cluster of their own;
//! * their degree/strength distribution should be comparable to (not wildly
//!   below) the pre-existing stations';
//! * the community structure of the pre-existing stations should be stable:
//!   detecting communities on the original (fixed-station-only) network and
//!   on the expanded network should assign the old stations to similar
//!   groups (measured with NMI);
//! * the overall partition should be of positive modularity with a majority
//!   of trips self-contained.

use crate::detect::{detect_communities, DetectConfig};
use crate::pipeline::ExpansionOutcome;
use crate::temporal::{build_temporal_graph, TemporalGranularity};
use moby_community::compare::normalized_mutual_information;
use moby_community::Partition;
use moby_graph::metrics::DegreeSummary;
use serde::{Deserialize, Serialize};

/// The validation summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Number of newly selected stations.
    pub new_stations: usize,
    /// Number of communities (GBasic) containing at least one new station.
    pub communities_with_new_stations: usize,
    /// Total number of GBasic communities.
    pub communities_total: usize,
    /// Mean degree of new stations divided by mean degree of old stations in
    /// the selected graph.
    pub degree_ratio_new_to_old: f64,
    /// NMI between the old stations' communities detected on the expanded
    /// network and on the fixed-only network.
    pub old_station_community_stability: f64,
    /// Modularity of the GBasic partition.
    pub modularity_basic: f64,
    /// Share of trips that stay within their GBasic community.
    pub self_contained_share: f64,
}

impl ValidationReport {
    /// Whether the expanded network passes the paper-style sanity criteria:
    /// new stations exist, they are spread over more than one community,
    /// their connectivity is within an order of magnitude of the old
    /// stations', modularity is positive and the majority of trips are
    /// self-contained.
    pub fn passes(&self) -> bool {
        self.new_stations > 0
            && self.communities_with_new_stations >= 2.min(self.communities_total)
            && self.degree_ratio_new_to_old > 0.1
            && self.modularity_basic > 0.0
            && self.self_contained_share > 0.5
    }
}

/// Evaluate the validation checks over a pipeline outcome.
pub fn validate_expansion(outcome: &ExpansionOutcome, detect: &DetectConfig) -> ValidationReport {
    let selected = &outcome.selected;
    let basic = &outcome.communities.basic;
    let old_ids = selected.fixed_ids();
    let new_ids = selected.new_ids();

    // Spread of new stations over communities.
    let mut communities_with_new = std::collections::HashSet::new();
    for &id in &new_ids {
        if let Some(c) = basic.station_partition.community_of(id) {
            communities_with_new.insert(c);
        }
    }

    // Degree comparability on the selected undirected graph.
    let old_vec: Vec<_> = old_ids.iter().copied().collect();
    let new_vec: Vec<_> = new_ids.iter().copied().collect();
    let old_mean = DegreeSummary::for_nodes_csr(&selected.undirected, &old_vec)
        .map(|s| s.mean)
        .unwrap_or(0.0);
    let new_mean = DegreeSummary::for_nodes_csr(&selected.undirected, &new_vec)
        .map(|s| s.mean)
        .unwrap_or(0.0);
    let degree_ratio = if old_mean > 0.0 {
        new_mean / old_mean
    } else {
        0.0
    };

    // Stability of the old stations' communities: detect on the
    // fixed-station-only subgraph and compare with the expanded partition
    // restricted to old stations.
    let fixed_only = selected.undirected.subgraph(|id| old_ids.contains(&id));
    let fixed_store_graph =
        crate::temporal::TemporalGraph::from_csr(TemporalGranularity::TNull, fixed_only, None);
    let fixed_directed = selected.directed.subgraph(|id| old_ids.contains(&id));
    let fixed_detection = detect_communities(&fixed_store_graph, &fixed_directed, &old_ids, detect);
    let expanded_restricted: Partition = basic
        .station_partition
        .iter()
        .filter(|(id, _)| old_ids.contains(id))
        .collect();
    let stability =
        normalized_mutual_information(&fixed_detection.station_partition, &expanded_restricted);

    ValidationReport {
        new_stations: new_ids.len(),
        communities_with_new_stations: communities_with_new.len(),
        communities_total: basic.community_count(),
        degree_ratio_new_to_old: degree_ratio,
        old_station_community_stability: stability,
        modularity_basic: basic.modularity,
        self_contained_share: basic.table.self_contained_share(),
    }
}

/// Convenience: validate using the temporal graph rebuilt from the selected
/// store (exists mainly so callers without a `DetectConfig` use defaults).
pub fn validate_default(outcome: &ExpansionOutcome) -> ValidationReport {
    validate_expansion(outcome, &DetectConfig::default())
}

/// Quick structural check used by tests and examples: rebuilds GBasic from
/// the outcome's store and confirms the stored detection matches it
/// (guards against accidental divergence between pipeline stages).
pub fn gbasic_is_consistent(outcome: &ExpansionOutcome) -> bool {
    let rebuilt = build_temporal_graph(&outcome.selected.store, TemporalGranularity::TNull);
    rebuilt.csr.node_count() == outcome.selected.stations.len()
        && (rebuilt.csr.total_weight() - outcome.selected.undirected.total_weight()).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ExpansionPipeline, PipelineConfig};
    use moby_data::synth::{generate, SynthConfig};

    fn outcome() -> ExpansionOutcome {
        let raw = generate(&SynthConfig::small_test());
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .unwrap()
    }

    #[test]
    fn validation_report_fields_are_populated() {
        let out = outcome();
        let report = validate_default(&out);
        assert_eq!(report.new_stations, out.new_station_count());
        assert!(report.communities_total >= 2);
        assert!(report.communities_with_new_stations >= 1);
        assert!(report.degree_ratio_new_to_old > 0.0);
        assert!(report.modularity_basic > 0.0);
        assert!((0.0..=1.0).contains(&report.old_station_community_stability));
        assert!((0.0..=1.0).contains(&report.self_contained_share));
    }

    #[test]
    fn synthetic_expansion_passes_validation() {
        let out = outcome();
        let report = validate_default(&out);
        assert!(
            report.passes(),
            "expected the synthetic expansion to pass validation: {report:?}"
        );
    }

    #[test]
    fn gbasic_consistency_check() {
        let out = outcome();
        assert!(gbasic_is_consistent(&out));
    }

    #[test]
    fn old_station_communities_are_reasonably_stable() {
        let out = outcome();
        let report = validate_default(&out);
        // The fixed-only network and the expanded network should agree on
        // the broad community structure of the old stations.
        assert!(
            report.old_station_community_stability > 0.3,
            "stability {}",
            report.old_station_community_stability
        );
    }
}
