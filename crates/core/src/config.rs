//! Configuration of the expansion pipeline — every threshold the paper
//! defines in §IV, in one place.

use crate::{CoreError, Result};
use moby_cluster::linkage::Linkage;
use serde::{Deserialize, Serialize};

/// How the degree threshold of Rule 3 (*Degree-Threshold*) is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegreeThreshold {
    /// The minimum degree over the pre-existing fixed stations (the paper's
    /// choice, Algorithm 1 line 1).
    MinFixedStationDegree,
    /// An explicit absolute degree value (used by the ablation benches).
    Absolute(usize),
    /// A percentile (0–100) of the fixed-station degree distribution.
    FixedStationPercentile(f64),
}

/// All §IV thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionConfig {
    /// Locations within this radius of a fixed station are absorbed into the
    /// station's group before clustering (paper: 50 m).
    pub station_absorb_radius_m: f64,
    /// Rule 1, *Cluster-Boundary*: the distance between two locations inside
    /// a cluster may not exceed this (paper: 100 m).
    pub cluster_boundary_m: f64,
    /// Rule 2, *Cluster-Proximity*: candidate centroids may not be closer
    /// than this to each other (paper: 50 m).
    pub centroid_min_separation_m: f64,
    /// Rule 4, *Secondary-Distance* (and Algorithm 1 lines 6 & 12): a new
    /// station must be at least this far from any other station
    /// (paper: 250 m).
    pub secondary_distance_m: f64,
    /// Rule 3, *Degree-Threshold*: how the minimum degree for candidates is
    /// derived (paper: minimum fixed-station degree).
    pub degree_threshold: DegreeThreshold,
    /// HAC linkage criterion (paper: complete).
    pub linkage: Linkage,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        Self {
            station_absorb_radius_m: 50.0,
            cluster_boundary_m: 100.0,
            centroid_min_separation_m: 50.0,
            secondary_distance_m: 250.0,
            degree_threshold: DegreeThreshold::MinFixedStationDegree,
            linkage: Linkage::Complete,
        }
    }
}

impl ExpansionConfig {
    /// Validate that every threshold is finite and non-negative, and that
    /// the percentile (if used) is within 0–100.
    pub fn validate(&self) -> Result<()> {
        let checks = [
            ("station_absorb_radius_m", self.station_absorb_radius_m),
            ("cluster_boundary_m", self.cluster_boundary_m),
            ("centroid_min_separation_m", self.centroid_min_separation_m),
            ("secondary_distance_m", self.secondary_distance_m),
        ];
        for (name, value) in checks {
            if !value.is_finite() || value < 0.0 {
                return Err(CoreError::InvalidConfig(format!(
                    "{name} must be finite and non-negative, got {value}"
                )));
            }
        }
        if let DegreeThreshold::FixedStationPercentile(p) = self.degree_threshold {
            if !(0.0..=100.0).contains(&p) || !p.is_finite() {
                return Err(CoreError::InvalidConfig(format!(
                    "degree percentile must be within 0–100, got {p}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let c = ExpansionConfig::default();
        assert_eq!(c.station_absorb_radius_m, 50.0);
        assert_eq!(c.cluster_boundary_m, 100.0);
        assert_eq!(c.centroid_min_separation_m, 50.0);
        assert_eq!(c.secondary_distance_m, 250.0);
        assert_eq!(c.degree_threshold, DegreeThreshold::MinFixedStationDegree);
        assert_eq!(c.linkage, Linkage::Complete);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_negative_thresholds() {
        let mut c = ExpansionConfig::default();
        c.secondary_distance_m = -1.0;
        assert!(c.validate().is_err());
        let mut c2 = ExpansionConfig::default();
        c2.cluster_boundary_m = f64::NAN;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn rejects_bad_percentile() {
        let mut c = ExpansionConfig::default();
        c.degree_threshold = DegreeThreshold::FixedStationPercentile(120.0);
        assert!(c.validate().is_err());
        c.degree_threshold = DegreeThreshold::FixedStationPercentile(25.0);
        assert!(c.validate().is_ok());
        c.degree_threshold = DegreeThreshold::Absolute(3);
        assert!(c.validate().is_ok());
    }
}
