//! Nearest-station assignment.
//!
//! Used twice by the pipeline: (a) when unconverted candidate locations are
//! "reassigned to the nearest station" after selection (§IV-B step 3), and
//! (b) in the prior-work baseline where *every* non-station location is
//! reassigned to its closest fixed station without creating any new
//! stations.

use moby_geo::{GeoPoint, KdTree};
use serde::{Deserialize, Serialize};

/// The assignment of one point to a station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the assigned station in the station slice.
    pub station_index: usize,
    /// Haversine distance to that station in metres.
    pub distance_m: f64,
}

/// A reusable nearest-station assigner backed by a k-d tree.
#[derive(Debug, Clone)]
pub struct StationAssigner {
    tree: KdTree<usize>,
    count: usize,
}

impl StationAssigner {
    /// Build an assigner over the given station positions. Returns `None`
    /// when the slice is empty (there is nothing to assign to).
    pub fn new(stations: &[GeoPoint]) -> Option<Self> {
        if stations.is_empty() {
            return None;
        }
        let tree = KdTree::build(
            stations
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect::<Vec<_>>(),
        );
        Some(Self {
            tree,
            count: stations.len(),
        })
    }

    /// Number of stations in the index.
    pub fn station_count(&self) -> usize {
        self.count
    }

    /// The nearest station to `point`.
    pub fn assign(&self, point: GeoPoint) -> Assignment {
        let (_, &idx, d) = self
            .tree
            .nearest(point)
            .expect("assigner is built over a non-empty station set");
        Assignment {
            station_index: idx,
            distance_m: d,
        }
    }

    /// Assign every point in `points`, preserving order.
    pub fn assign_all(&self, points: &[GeoPoint]) -> Vec<Assignment> {
        points.iter().map(|&p| self.assign(p)).collect()
    }

    /// The distance from `point` to its nearest station, in metres.
    pub fn nearest_distance_m(&self, point: GeoPoint) -> f64 {
        self.assign(point).distance_m
    }
}

/// Summary statistics of a batch of assignments, used in reports to show how
/// far users would have to walk to the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentStats {
    /// Number of points assigned.
    pub count: usize,
    /// Mean distance to the assigned station (metres).
    pub mean_m: f64,
    /// Median distance (metres).
    pub median_m: f64,
    /// Maximum distance (metres).
    pub max_m: f64,
    /// Share of points within 250 m of their station.
    pub within_250m: f64,
}

impl AssignmentStats {
    /// Compute the statistics of a batch of assignments. Returns `None` for
    /// an empty batch.
    pub fn of(assignments: &[Assignment]) -> Option<Self> {
        if assignments.is_empty() {
            return None;
        }
        let mut dists: Vec<f64> = assignments.iter().map(|a| a.distance_m).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let count = dists.len();
        let mean_m = dists.iter().sum::<f64>() / count as f64;
        let median_m = if count % 2 == 1 {
            dists[count / 2]
        } else {
            0.5 * (dists[count / 2 - 1] + dists[count / 2])
        };
        let within = dists.iter().filter(|d| **d <= 250.0).count();
        Some(Self {
            count,
            mean_m,
            median_m,
            max_m: *dists.last().expect("non-empty"),
            within_250m: within as f64 / count as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_geo::destination_point;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_station_set_gives_no_assigner() {
        assert!(StationAssigner::new(&[]).is_none());
    }

    #[test]
    fn assigns_to_nearest() {
        let s1 = p(53.34, -6.26);
        let s2 = p(53.36, -6.26);
        let assigner = StationAssigner::new(&[s1, s2]).unwrap();
        assert_eq!(assigner.station_count(), 2);
        let near_s1 = destination_point(s1, 90.0, 100.0);
        let a = assigner.assign(near_s1);
        assert_eq!(a.station_index, 0);
        assert!((a.distance_m - 100.0).abs() < 1.0);
        let near_s2 = destination_point(s2, 180.0, 30.0);
        assert_eq!(assigner.assign(near_s2).station_index, 1);
    }

    #[test]
    fn assign_all_preserves_order() {
        let s1 = p(53.34, -6.26);
        let s2 = p(53.36, -6.26);
        let assigner = StationAssigner::new(&[s1, s2]).unwrap();
        let pts = vec![
            destination_point(s2, 0.0, 10.0),
            destination_point(s1, 0.0, 10.0),
        ];
        let res = assigner.assign_all(&pts);
        assert_eq!(res[0].station_index, 1);
        assert_eq!(res[1].station_index, 0);
    }

    #[test]
    fn stats_of_empty_is_none() {
        assert!(AssignmentStats::of(&[]).is_none());
    }

    #[test]
    fn stats_values() {
        let assignments = vec![
            Assignment {
                station_index: 0,
                distance_m: 100.0,
            },
            Assignment {
                station_index: 0,
                distance_m: 200.0,
            },
            Assignment {
                station_index: 1,
                distance_m: 300.0,
            },
            Assignment {
                station_index: 1,
                distance_m: 400.0,
            },
        ];
        let s = AssignmentStats::of(&assignments).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean_m - 250.0).abs() < 1e-9);
        assert!((s.median_m - 250.0).abs() < 1e-9);
        assert_eq!(s.max_m, 400.0);
        assert!((s.within_250m - 0.5).abs() < 1e-9);
    }

    #[test]
    fn nearest_distance_matches_assign() {
        let s1 = p(53.34, -6.26);
        let assigner = StationAssigner::new(&[s1]).unwrap();
        let q = destination_point(s1, 10.0, 420.0);
        assert!((assigner.nearest_distance_m(q) - assigner.assign(q).distance_m).abs() < 1e-12);
    }
}
