//! Hierarchical agglomerative clustering over geographic points.
//!
//! The implementation is exact for the thresholds the pipeline uses and
//! scales to the paper's ~14 k locations:
//!
//! 1. **Connectivity partition.** Points are first split into connected
//!    components under the relation "within `threshold` metres" (computed
//!    with a grid index). For complete and average linkage, any cluster
//!    whose diameter / average spread is bounded by the threshold lies
//!    entirely inside one such component, so clustering each component
//!    independently is exact. For single linkage the components *are* the
//!    flat clusters.
//! 2. **Nearest-neighbour-chain HAC** inside each component, with
//!    Lance–Williams distance updates over a dense matrix. NN-chain is
//!    O(n²) time and the matrix is O(n²) memory per component, which is
//!    fine because components are city-block sized, not city sized.
//! 3. A **bisection safeguard**: a pathological component larger than
//!    [`MAX_EXACT_COMPONENT`] points is split along its longer axis before
//!    clustering (documented approximation; never triggered by the paper's
//!    data volumes in practice).

use crate::linkage::Linkage;
use crate::{ClusterError, Result};
use moby_geo::{haversine_m, GeoPoint, GridIndex};

/// Components larger than this are recursively bisected before exact HAC.
pub const MAX_EXACT_COMPONENT: usize = 5_000;

/// One merge step of the dendrogram: clusters `a` and `b` (indices into the
/// evolving cluster list, initial singletons are `0..n`) merged at the given
/// linkage distance into a new cluster with id `n + step`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStep {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened (metres).
    pub distance: f64,
    /// Number of points in the merged cluster.
    pub size: usize,
}

/// A full dendrogram over `n` points (only produced by
/// [`hac_dendrogram`], which is intended for moderate `n`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaf points.
    pub n: usize,
    /// Merge steps in the order they were performed.
    pub merges: Vec<MergeStep>,
}

impl Dendrogram {
    /// Cut the dendrogram at `threshold` metres: every merge with a linkage
    /// distance `<= threshold` is applied, the rest are ignored. Returns the
    /// member indices of each resulting cluster (singletons included),
    /// sorted by their smallest member for determinism.
    pub fn cut(&self, threshold: f64) -> Vec<Vec<usize>> {
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().enumerate() {
            if m.distance <= threshold {
                let new_id = self.n + step;
                let ra = find(&mut parent, m.a);
                let rb = find(&mut parent, m.b);
                parent[ra] = new_id;
                parent[rb] = new_id;
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().collect();
        for c in clusters.iter_mut() {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }
}

/// Exact HAC dendrogram over all points (no partitioning). Quadratic memory
/// — intended for input sizes up to a few thousand points (tests, ablations,
/// single components).
pub fn hac_dendrogram(points: &[GeoPoint], linkage: Linkage) -> Dendrogram {
    let n = points.len();
    let mut merges = Vec::new();
    if n <= 1 {
        return Dendrogram { n, merges };
    }
    // Dense distance matrix (f64, row-major). Entries for dead clusters stay
    // but are never read again.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = haversine_m(points[i], points[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Map from matrix slot to current cluster id (slots are reused for the
    // merged cluster; ids follow the scipy convention n + step).
    let mut cluster_id: Vec<usize> = (0..n).collect();

    // Nearest-neighbour chain.
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&i| active[i]).expect("remaining > 1");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("chain non-empty");
            // Find nearest active neighbour of `top`.
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for j in 0..n {
                if j != top && active[j] {
                    let d = dist[top * n + j];
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
            }
            debug_assert!(best != usize::MAX);
            // Reciprocal nearest neighbours?
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Merge `top` and `best` (== previous chain element).
                let a = chain.pop().expect("top");
                let b = chain.pop().expect("prev");
                let (keep, drop) = if a < b { (a, b) } else { (b, a) };
                let merged_size = size[keep] + size[drop];
                merges.push(MergeStep {
                    a: cluster_id[keep],
                    b: cluster_id[drop],
                    distance: best_d,
                    size: merged_size,
                });
                // Lance–Williams update into slot `keep`.
                for j in 0..n {
                    if j != keep && j != drop && active[j] {
                        let d_aj = dist[keep * n + j];
                        let d_bj = dist[drop * n + j];
                        let nd = linkage.merge_distance(d_aj, d_bj, size[keep], size[drop]);
                        dist[keep * n + j] = nd;
                        dist[j * n + keep] = nd;
                    }
                }
                active[drop] = false;
                size[keep] = merged_size;
                cluster_id[keep] = n + merges.len() - 1;
                remaining -= 1;
                break;
            }
            chain.push(best);
        }
        // Drop chain entries that are no longer active (merged away).
        while let Some(&last) = chain.last() {
            if active[last] {
                break;
            }
            chain.pop();
        }
    }
    Dendrogram { n, merges }
}

/// Connected components of the points under "within `threshold` metres",
/// returned as lists of point indices.
fn threshold_components(points: &[GeoPoint], threshold: f64) -> Vec<Vec<usize>> {
    let mut grid = GridIndex::new(threshold.max(1.0), 53.35).expect("positive cell size");
    for (i, p) in points.iter().enumerate() {
        grid.insert(*p, i);
    }
    let mut component = vec![usize::MAX; points.len()];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..points.len() {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            let near = grid
                .within_radius(points[u], threshold)
                .expect("validated threshold");
            for (_, &v, _) in near {
                if component[v] == usize::MAX {
                    component[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); next];
    for (i, &c) in component.iter().enumerate() {
        out[c].push(i);
    }
    out
}

/// Split an oversized component along the longer geographic axis until each
/// part is at most `max_size` points.
fn bisect_component(points: &[GeoPoint], members: Vec<usize>, max_size: usize) -> Vec<Vec<usize>> {
    if members.len() <= max_size {
        return vec![members];
    }
    let lats: Vec<f64> = members.iter().map(|&i| points[i].lat()).collect();
    let lons: Vec<f64> = members.iter().map(|&i| points[i].lon()).collect();
    let lat_span = lats.iter().cloned().fold(f64::MIN, f64::max)
        - lats.iter().cloned().fold(f64::MAX, f64::min);
    let lon_span = lons.iter().cloned().fold(f64::MIN, f64::max)
        - lons.iter().cloned().fold(f64::MAX, f64::min);
    let mut sorted = members;
    if lat_span >= lon_span {
        sorted.sort_by(|&a, &b| {
            points[a]
                .lat()
                .partial_cmp(&points[b].lat())
                .expect("finite")
        });
    } else {
        sorted.sort_by(|&a, &b| {
            points[a]
                .lon()
                .partial_cmp(&points[b].lon())
                .expect("finite")
        });
    }
    let mid = sorted.len() / 2;
    let right = sorted.split_off(mid);
    let mut out = bisect_component(points, sorted, max_size);
    out.extend(bisect_component(points, right, max_size));
    out
}

/// Flat clusters from constrained-scale HAC: cluster `points` with the given
/// linkage and cut so that the linkage distance never exceeds
/// `threshold_m` metres.
///
/// For complete linkage this guarantees the paper's Rule 1: no two points in
/// a returned cluster are farther apart than `threshold_m`.
///
/// Clusters are returned as lists of indices into `points`, each sorted, and
/// the cluster list is sorted by smallest member index.
pub fn hac_clusters(points: &[GeoPoint], linkage: Linkage, threshold_m: f64) -> Vec<Vec<usize>> {
    try_hac_clusters(points, linkage, threshold_m).expect("non-negative finite threshold")
}

/// Checked variant of [`hac_clusters`].
///
/// # Errors
///
/// [`ClusterError::InvalidThreshold`] when `threshold_m` is negative or not
/// finite.
pub fn try_hac_clusters(
    points: &[GeoPoint],
    linkage: Linkage,
    threshold_m: f64,
) -> Result<Vec<Vec<usize>>> {
    if !threshold_m.is_finite() || threshold_m < 0.0 {
        return Err(ClusterError::InvalidThreshold(threshold_m));
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let components = threshold_components(points, threshold_m);
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for comp in components {
        // Single linkage: the component *is* the flat cluster at this cut.
        if matches!(linkage, Linkage::Single) {
            let mut c = comp;
            c.sort_unstable();
            clusters.push(c);
            continue;
        }
        for part in bisect_component(points, comp, MAX_EXACT_COMPONENT) {
            if part.len() == 1 {
                clusters.push(part);
                continue;
            }
            let sub_points: Vec<GeoPoint> = part.iter().map(|&i| points[i]).collect();
            let dendro = hac_dendrogram(&sub_points, linkage);
            for local in dendro.cut(threshold_m) {
                let mut global: Vec<usize> = local.into_iter().map(|li| part[li]).collect();
                global.sort_unstable();
                clusters.push(global);
            }
        }
    }
    clusters.sort_by_key(|c| c[0]);
    Ok(clusters)
}

/// The maximum pairwise Haversine distance (metres) among the given members.
pub fn cluster_diameter(points: &[GeoPoint], members: &[usize]) -> f64 {
    let mut max = 0.0f64;
    for (k, &i) in members.iter().enumerate() {
        for &j in &members[k + 1..] {
            max = max.max(haversine_m(points[i], points[j]));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_geo::destination_point;
    use rand::{Rng, SeedableRng};

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// Three blobs of points, blob centres ~1 km apart, blob radius ~30 m.
    fn three_blobs(per_blob: usize, seed: u64) -> (Vec<GeoPoint>, Vec<usize>) {
        let centres = [p(53.34, -6.26), p(53.35, -6.26), p(53.34, -6.245)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (bi, c) in centres.iter().enumerate() {
            for _ in 0..per_blob {
                let angle = rng.gen_range(0.0..360.0);
                let dist = rng.gen_range(0.0..30.0);
                pts.push(destination_point(*c, angle, dist));
                labels.push(bi);
            }
        }
        (pts, labels)
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(hac_clusters(&[], Linkage::Complete, 100.0).is_empty());
        let one = vec![p(53.34, -6.26)];
        let c = hac_clusters(&one, Linkage::Complete, 100.0);
        assert_eq!(c, vec![vec![0]]);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let pts = vec![p(53.34, -6.26)];
        assert!(try_hac_clusters(&pts, Linkage::Complete, -1.0).is_err());
        assert!(try_hac_clusters(&pts, Linkage::Complete, f64::NAN).is_err());
    }

    #[test]
    fn blobs_are_recovered_by_all_linkages() {
        let (pts, labels) = three_blobs(20, 3);
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let clusters = hac_clusters(&pts, linkage, 100.0);
            assert_eq!(clusters.len(), 3, "{linkage:?}");
            for c in &clusters {
                let blob = labels[c[0]];
                assert!(c.iter().all(|&i| labels[i] == blob), "{linkage:?}");
                assert_eq!(c.len(), 20, "{linkage:?}");
            }
        }
    }

    #[test]
    fn every_point_appears_exactly_once() {
        let (pts, _) = three_blobs(15, 9);
        let clusters = hac_clusters(&pts, Linkage::Complete, 100.0);
        let mut seen = vec![false; pts.len()];
        for c in &clusters {
            for &i in c {
                assert!(!seen[i], "point {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn complete_linkage_respects_diameter_bound() {
        // A chain of points 60 m apart: single linkage keeps the chain as
        // one cluster at a 100 m cut, complete linkage must split it so the
        // diameter never exceeds 100 m.
        let base = p(53.34, -6.26);
        let pts: Vec<GeoPoint> = (0..10)
            .map(|i| destination_point(base, 90.0, i as f64 * 60.0))
            .collect();
        let complete = hac_clusters(&pts, Linkage::Complete, 100.0);
        for c in &complete {
            assert!(
                cluster_diameter(&pts, c) <= 100.0 + 1e-6,
                "diameter {} exceeds bound",
                cluster_diameter(&pts, c)
            );
        }
        let single = hac_clusters(&pts, Linkage::Single, 100.0);
        assert_eq!(single.len(), 1, "single linkage chains everything");
        assert!(complete.len() > 1);
    }

    #[test]
    fn dendrogram_merge_count_and_cut_extremes() {
        let (pts, _) = three_blobs(5, 1);
        let d = hac_dendrogram(&pts, Linkage::Complete);
        assert_eq!(d.merges.len(), pts.len() - 1);
        // Cut at 0: everything is a singleton.
        assert_eq!(d.cut(0.0).len(), pts.len());
        // Cut at infinity: one cluster.
        assert_eq!(d.cut(f64::INFINITY).len(), 1);
    }

    #[test]
    fn dendrogram_distances_are_monotone_for_complete_linkage() {
        let (pts, _) = three_blobs(8, 5);
        let d = hac_dendrogram(&pts, Linkage::Complete);
        // NN-chain emits merges out of global order, but sorted distances
        // must form a valid monotone sequence for a reducible linkage: the
        // sorted order equals a valid agglomeration order.
        let mut dists: Vec<f64> = d.merges.iter().map(|m| m.distance).collect();
        let sorted = {
            let mut s = dists.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s
        };
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dists, sorted);
        // Merge sizes are consistent: final merge covers all points.
        assert_eq!(d.merges.last().unwrap().size, pts.len());
    }

    #[test]
    fn matches_bruteforce_flat_clustering_on_small_input() {
        // Brute-force reference: repeatedly merge the closest pair of
        // clusters (complete linkage) while the distance <= threshold.
        fn reference(points: &[GeoPoint], threshold: f64) -> Vec<Vec<usize>> {
            let mut clusters: Vec<Vec<usize>> = (0..points.len()).map(|i| vec![i]).collect();
            loop {
                let mut best = (f64::INFINITY, 0usize, 0usize);
                for i in 0..clusters.len() {
                    for j in (i + 1)..clusters.len() {
                        let mut dmax = 0.0f64;
                        for &a in &clusters[i] {
                            for &b in &clusters[j] {
                                dmax = dmax.max(haversine_m(points[a], points[b]));
                            }
                        }
                        if dmax < best.0 {
                            best = (dmax, i, j);
                        }
                    }
                }
                if best.0 > threshold || clusters.len() <= 1 {
                    break;
                }
                let merged = clusters.remove(best.2);
                clusters[best.1].extend(merged);
            }
            for c in clusters.iter_mut() {
                c.sort_unstable();
            }
            clusters.sort_by_key(|c| c[0]);
            clusters
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let pts: Vec<GeoPoint> = (0..25)
                .map(|_| {
                    destination_point(
                        p(53.34, -6.26),
                        rng.gen_range(0.0..360.0),
                        rng.gen_range(0.0..400.0),
                    )
                })
                .collect();
            let got = hac_clusters(&pts, Linkage::Complete, 120.0);
            let want = reference(&pts, 120.0);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bisect_component_respects_max_size() {
        let (pts, _) = three_blobs(30, 2);
        let members: Vec<usize> = (0..pts.len()).collect();
        let parts = bisect_component(&pts, members, 40);
        assert!(parts.iter().all(|p| p.len() <= 40));
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn duplicate_points_cluster_together() {
        let dup = p(53.34, -6.26);
        let pts = vec![dup, dup, dup, p(53.36, -6.26)];
        let clusters = hac_clusters(&pts, Linkage::Complete, 50.0);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn cluster_diameter_helper() {
        let base = p(53.34, -6.26);
        let pts = vec![base, destination_point(base, 90.0, 80.0)];
        let d = cluster_diameter(&pts, &[0, 1]);
        assert!((d - 80.0).abs() < 0.5);
        assert_eq!(cluster_diameter(&pts, &[0]), 0.0);
    }
}
