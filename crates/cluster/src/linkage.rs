//! Linkage criteria for agglomerative clustering.

use serde::{Deserialize, Serialize};

/// How the distance between two clusters is derived from the distances of
/// their members.
///
/// The paper uses **complete linkage** ("the distance between two clusters
/// based on the largest distance over all possible pairs"), which is what
/// guarantees Rule 1 (no two locations in a cluster more than 100 m apart)
/// when the dendrogram is cut at 100 m. `Single` and `Average` are provided
/// for the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Maximum pairwise distance (a.k.a. farthest neighbour).
    Complete,
    /// Minimum pairwise distance (a.k.a. nearest neighbour).
    Single,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

impl Linkage {
    /// Lance–Williams update: the distance from the merged cluster
    /// `A ∪ B` to another cluster `C`, given `d(A, C)`, `d(B, C)` and the
    /// cluster sizes.
    #[inline]
    pub fn merge_distance(&self, d_ac: f64, d_bc: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Complete => d_ac.max(d_bc),
            Linkage::Single => d_ac.min(d_bc),
            Linkage::Average => {
                let na = size_a as f64;
                let nb = size_b as f64;
                (na * d_ac + nb * d_bc) / (na + nb)
            }
        }
    }

    /// Whether the linkage satisfies the reducibility property required by
    /// the nearest-neighbour-chain algorithm (all three do).
    pub fn is_reducible(&self) -> bool {
        true
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Linkage::Complete => "complete",
            Linkage::Single => "single",
            Linkage::Average => "average",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_takes_max() {
        assert_eq!(Linkage::Complete.merge_distance(3.0, 5.0, 1, 4), 5.0);
        assert_eq!(Linkage::Complete.merge_distance(5.0, 3.0, 10, 1), 5.0);
    }

    #[test]
    fn single_takes_min() {
        assert_eq!(Linkage::Single.merge_distance(3.0, 5.0, 1, 4), 3.0);
    }

    #[test]
    fn average_weights_by_size() {
        // A has 1 member at distance 10, B has 3 members at distance 2:
        // (1*10 + 3*2) / 4 = 4.
        assert_eq!(Linkage::Average.merge_distance(10.0, 2.0, 1, 3), 4.0);
        // Equal sizes -> arithmetic mean.
        assert_eq!(Linkage::Average.merge_distance(4.0, 8.0, 2, 2), 6.0);
    }

    #[test]
    fn names_and_reducibility() {
        assert_eq!(Linkage::Complete.name(), "complete");
        assert_eq!(Linkage::Single.name(), "single");
        assert_eq!(Linkage::Average.name(), "average");
        assert!(Linkage::Complete.is_reducible());
    }

    #[test]
    fn merge_distance_bounds() {
        // For any linkage the merged distance lies within [min, max] of the
        // two input distances.
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            for (a, b) in [(1.0, 9.0), (4.0, 4.0), (0.0, 2.0)] {
                let d = linkage.merge_distance(a, b, 3, 5);
                assert!(d >= a.min(b) - 1e-12 && d <= a.max(b) + 1e-12);
            }
        }
    }
}
