//! Constrained clustering with immovable fixed stations (paper §IV-A,
//! "Preprocessing").
//!
//! > "Pre-existing fixed stations were set as immovable locations and set as
//! > their own group's centroid. To adhere to the criterion of groups'
//! > centroids being at least 50 metres apart, any location that was within
//! > a 50-metre radius of a fixed station was assigned to that station's
//! > group and was excluded from clustering."
//!
//! The output distinguishes **station groups** (the fixed station plus the
//! free locations absorbed into it) from **candidate clusters** (clusters of
//! the remaining free locations, each a potential new station).

use crate::hac::{cluster_diameter, try_hac_clusters};
use crate::linkage::Linkage;
use crate::{ClusterError, Result};
use moby_geo::{GeoPoint, KdTree};
use serde::{Deserialize, Serialize};

/// Parameters of the constrained clustering step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstrainedConfig {
    /// Locations within this radius of a fixed station are absorbed into the
    /// station's group and excluded from clustering (paper: 50 m).
    pub station_absorb_radius_m: f64,
    /// Maximum linkage distance for the agglomerative cut (paper Rule 1:
    /// 100 m cluster boundary).
    pub cluster_boundary_m: f64,
    /// Linkage criterion (paper: complete).
    pub linkage: Linkage,
}

impl Default for ConstrainedConfig {
    fn default() -> Self {
        Self {
            station_absorb_radius_m: 50.0,
            cluster_boundary_m: 100.0,
            linkage: Linkage::Complete,
        }
    }
}

/// A fixed station together with the free locations absorbed into its group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationGroup {
    /// Index into the `stations` slice passed to [`constrained_clustering`].
    pub station_index: usize,
    /// The station position (the group's immovable centroid).
    pub centroid: GeoPoint,
    /// Indices into the `locations` slice of absorbed locations.
    pub members: Vec<usize>,
}

/// A cluster of free locations that is a candidate for a new station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateCluster {
    /// Indices into the `locations` slice.
    pub members: Vec<usize>,
    /// Arithmetic centroid of the member locations.
    pub centroid: GeoPoint,
    /// Maximum pairwise distance among members (metres).
    pub diameter_m: f64,
}

/// Result of the constrained clustering step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstrainedClustering {
    /// One group per fixed station (possibly with no absorbed members).
    pub station_groups: Vec<StationGroup>,
    /// Candidate clusters over the locations that were not absorbed.
    pub candidate_clusters: Vec<CandidateCluster>,
}

impl ConstrainedClustering {
    /// Total number of groups (fixed stations + candidates) — the paper's
    /// "1,172 clusters" figure counts both.
    pub fn total_groups(&self) -> usize {
        self.station_groups.len() + self.candidate_clusters.len()
    }

    /// Number of locations absorbed into station groups.
    pub fn absorbed_locations(&self) -> usize {
        self.station_groups.iter().map(|g| g.members.len()).sum()
    }

    /// Number of locations placed in candidate clusters.
    pub fn clustered_locations(&self) -> usize {
        self.candidate_clusters
            .iter()
            .map(|c| c.members.len())
            .sum()
    }
}

/// Run the constrained clustering of §IV-A.
///
/// * `stations` — positions of the fixed (immovable) stations.
/// * `locations` — positions of the free rental/return locations.
///
/// # Errors
///
/// * [`ClusterError::NoFixedStations`] when `stations` is empty (the
///   pipeline requires an existing network to expand);
/// * [`ClusterError::InvalidThreshold`] when either radius is negative or
///   not finite.
pub fn constrained_clustering(
    stations: &[GeoPoint],
    locations: &[GeoPoint],
    config: &ConstrainedConfig,
) -> Result<ConstrainedClustering> {
    if stations.is_empty() {
        return Err(ClusterError::NoFixedStations);
    }
    for radius in [config.station_absorb_radius_m, config.cluster_boundary_m] {
        if !radius.is_finite() || radius < 0.0 {
            return Err(ClusterError::InvalidThreshold(radius));
        }
    }

    // Station groups, initially empty.
    let mut station_groups: Vec<StationGroup> = stations
        .iter()
        .enumerate()
        .map(|(i, &p)| StationGroup {
            station_index: i,
            centroid: p,
            members: Vec::new(),
        })
        .collect();

    // Absorb locations within the radius of their nearest station.
    let station_tree = KdTree::build(
        stations
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect::<Vec<_>>(),
    );
    let mut free: Vec<usize> = Vec::new();
    for (li, &lp) in locations.iter().enumerate() {
        let (_, &si, d) = station_tree.nearest(lp).expect("stations non-empty");
        if d <= config.station_absorb_radius_m {
            station_groups[si].members.push(li);
        } else {
            free.push(li);
        }
    }

    // Cluster the free locations.
    let free_points: Vec<GeoPoint> = free.iter().map(|&i| locations[i]).collect();
    let clusters = try_hac_clusters(&free_points, config.linkage, config.cluster_boundary_m)?;
    let candidate_clusters: Vec<CandidateCluster> = clusters
        .into_iter()
        .map(|local_members| {
            let members: Vec<usize> = local_members.iter().map(|&li| free[li]).collect();
            let pts: Vec<GeoPoint> = local_members.iter().map(|&li| free_points[li]).collect();
            let centroid = GeoPoint::centroid(&pts).expect("cluster is non-empty");
            let diameter_m = cluster_diameter(&free_points, &local_members);
            CandidateCluster {
                members,
                centroid,
                diameter_m,
            }
        })
        .collect();

    Ok(ConstrainedClustering {
        station_groups,
        candidate_clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_geo::destination_point;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn station() -> GeoPoint {
        p(53.3450, -6.2600)
    }

    #[test]
    fn requires_fixed_stations() {
        let err = constrained_clustering(&[], &[station()], &ConstrainedConfig::default());
        assert!(matches!(err, Err(ClusterError::NoFixedStations)));
    }

    #[test]
    fn rejects_bad_thresholds() {
        let cfg = ConstrainedConfig {
            station_absorb_radius_m: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            constrained_clustering(&[station()], &[], &cfg),
            Err(ClusterError::InvalidThreshold(_))
        ));
    }

    #[test]
    fn absorbs_near_locations_and_clusters_the_rest() {
        let st = station();
        let near1 = destination_point(st, 0.0, 20.0); // absorbed
        let near2 = destination_point(st, 90.0, 45.0); // absorbed
        let far_a1 = destination_point(st, 45.0, 500.0); // candidate cluster A
        let far_a2 = destination_point(far_a1, 10.0, 30.0); // candidate cluster A
        let far_b = destination_point(st, 225.0, 900.0); // candidate cluster B
        let locations = vec![near1, near2, far_a1, far_a2, far_b];
        let out = constrained_clustering(&[st], &locations, &ConstrainedConfig::default()).unwrap();
        assert_eq!(out.station_groups.len(), 1);
        assert_eq!(out.station_groups[0].members, vec![0, 1]);
        assert_eq!(out.candidate_clusters.len(), 2);
        assert_eq!(out.absorbed_locations(), 2);
        assert_eq!(out.clustered_locations(), 3);
        assert_eq!(out.total_groups(), 3);
        // The pair far_a1/far_a2 must be one candidate cluster.
        let sizes: Vec<usize> = out
            .candidate_clusters
            .iter()
            .map(|c| c.members.len())
            .collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn candidate_diameter_respects_boundary() {
        let st = station();
        // A ragged line of free locations 70 m apart, 600 m from the station.
        let start = destination_point(st, 90.0, 600.0);
        let locations: Vec<GeoPoint> = (0..8)
            .map(|i| destination_point(start, 0.0, i as f64 * 70.0))
            .collect();
        let out = constrained_clustering(&[st], &locations, &ConstrainedConfig::default()).unwrap();
        for c in &out.candidate_clusters {
            assert!(c.diameter_m <= 100.0 + 1e-6, "diameter {}", c.diameter_m);
        }
    }

    #[test]
    fn absorbed_boundary_is_inclusive_of_radius() {
        let st = station();
        let just_under = destination_point(st, 180.0, 49.5);
        let just_over = destination_point(st, 180.0, 51.0);
        let out = constrained_clustering(
            &[st],
            &[just_under, just_over],
            &ConstrainedConfig::default(),
        )
        .unwrap();
        // 49.5 m is within the 50 m radius; 51 m is not.
        assert_eq!(out.station_groups[0].members.len(), 1);
        assert_eq!(out.candidate_clusters.len(), 1);
    }

    #[test]
    fn location_near_two_stations_goes_to_nearest() {
        let s1 = station();
        let s2 = destination_point(s1, 90.0, 80.0);
        // 30 m from s1, 50 m from s2.
        let loc = destination_point(s1, 90.0, 30.0);
        let out = constrained_clustering(&[s1, s2], &[loc], &ConstrainedConfig::default()).unwrap();
        assert_eq!(out.station_groups[0].members, vec![0]);
        assert!(out.station_groups[1].members.is_empty());
    }

    #[test]
    fn empty_locations_give_empty_candidates() {
        let out = constrained_clustering(&[station()], &[], &ConstrainedConfig::default()).unwrap();
        assert!(out.candidate_clusters.is_empty());
        assert_eq!(out.station_groups.len(), 1);
        assert_eq!(out.total_groups(), 1);
    }

    #[test]
    fn every_location_is_accounted_for_exactly_once() {
        let st = station();
        let locations: Vec<GeoPoint> = (0..60)
            .map(|i| destination_point(st, (i * 37 % 360) as f64, 20.0 + (i as f64 * 13.0) % 700.0))
            .collect();
        let out = constrained_clustering(&[st], &locations, &ConstrainedConfig::default()).unwrap();
        let mut seen = vec![0usize; locations.len()];
        for g in &out.station_groups {
            for &m in &g.members {
                seen[m] += 1;
            }
        }
        for c in &out.candidate_clusters {
            for &m in &c.members {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }
}
