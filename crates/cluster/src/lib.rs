//! # moby-cluster
//!
//! Constrained hierarchical agglomerative clustering (HAC) over geographic
//! locations — the graph-construction substrate of the paper (§IV-A).
//!
//! The paper condenses ~14 k raw dockless rental/return locations into
//! ~1.2 k candidate stations by:
//!
//! 1. treating the 92 pre-existing fixed stations as **immovable** group
//!    centroids and pre-assigning every location within 50 m of a fixed
//!    station to that station's group (those locations are excluded from
//!    clustering);
//! 2. running bottom-up agglomerative clustering with the **complete
//!    linkage** criterion and the **Haversine** distance over the remaining
//!    locations;
//! 3. cutting the dendrogram so that no two locations inside a cluster are
//!    more than 100 m apart (Rule 1, *Cluster-Boundary*).
//!
//! The crate provides the plain algorithm ([`hac`]) for any linkage, the
//! constrained pipeline ([`constrained`]) with the fixed-station rules, and
//! nearest-station assignment helpers ([`assign`]) used when rejected
//! candidates are folded back into the network.
//!
//! ## Example
//!
//! ```
//! use moby_cluster::{hac::hac_clusters, linkage::Linkage};
//! use moby_geo::GeoPoint;
//!
//! // Two tight pairs ~1 km apart: cutting at 100 m yields two clusters.
//! let pts = vec![
//!     GeoPoint::new(53.3500, -6.2600).unwrap(),
//!     GeoPoint::new(53.3503, -6.2600).unwrap(),
//!     GeoPoint::new(53.3600, -6.2600).unwrap(),
//!     GeoPoint::new(53.3603, -6.2600).unwrap(),
//! ];
//! let clusters = hac_clusters(&pts, Linkage::Complete, 100.0);
//! assert_eq!(clusters.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod constrained;
pub mod hac;
pub mod linkage;

use std::fmt;

/// Errors produced by the clustering layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A distance threshold was negative or not finite.
    InvalidThreshold(f64),
    /// The operation needs at least one fixed station.
    NoFixedStations,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidThreshold(v) => {
                write!(
                    f,
                    "invalid distance threshold {v}: must be finite and non-negative"
                )
            }
            ClusterError::NoFixedStations => {
                write!(
                    f,
                    "constrained clustering requires at least one fixed station"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ClusterError::InvalidThreshold(-3.0)
            .to_string()
            .contains("-3"));
        assert!(!ClusterError::NoFixedStations.to_string().is_empty());
    }
}
