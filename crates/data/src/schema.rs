//! Typed records mirroring the Moby Bikes `Rental` and `Location` tables.
//!
//! Two tiers of types exist deliberately:
//!
//! * **Raw** records ([`RawLocation`], [`RawRental`]) model the tables as
//!   they arrive, defects included — missing coordinates, dangling
//!   references, out-of-area points. These are what the cleaning pipeline
//!   consumes.
//! * **Clean** records ([`Location`], [`Rental`]) carry the invariants the
//!   analysis relies on (validated coordinates, resolved references) and are
//!   what the graph-construction pipeline consumes.

use crate::timeparse::Timestamp;
use moby_geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Identifier of a fixed charging station.
pub type StationId = u64;
/// Identifier of a rental/return location (raw GPS fix grouping).
pub type LocationId = u64;
/// Identifier of a rental (trip).
pub type RentalId = u64;

/// A fixed charging station — one of the 92 usable "immovable" locations the
/// paper treats as pre-existing network nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Station {
    /// Stable identifier.
    pub id: StationId,
    /// Human-readable name.
    pub name: String,
    /// Geographic position.
    pub position: GeoPoint,
}

/// A raw row from the `Location` table. Coordinates may be missing or
/// invalid; nothing has been checked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawLocation {
    /// Stable identifier referenced by rentals.
    pub id: LocationId,
    /// Latitude in degrees, if recorded.
    pub lat: Option<f64>,
    /// Longitude in degrees, if recorded.
    pub lon: Option<f64>,
    /// The fixed station this location corresponds to, when the bike was
    /// collected from / returned to a charging station.
    pub station_id: Option<StationId>,
}

/// A raw row from the `Rental` table. References may dangle; nothing has
/// been checked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRental {
    /// Stable identifier.
    pub id: RentalId,
    /// Bike identifier.
    pub bike_id: u32,
    /// Rental (trip start) time.
    pub start_time: Timestamp,
    /// Return (trip end) time.
    pub end_time: Timestamp,
    /// Location the bike was rented from, if recorded.
    pub rental_location_id: Option<LocationId>,
    /// Location the bike was returned to, if recorded.
    pub return_location_id: Option<LocationId>,
}

/// A validated location: coordinates present and inside the service area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// Stable identifier referenced by rentals.
    pub id: LocationId,
    /// Validated geographic position.
    pub position: GeoPoint,
    /// The fixed station this location corresponds to, if any.
    pub station_id: Option<StationId>,
}

/// A validated rental: both endpoints resolve to validated locations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rental {
    /// Stable identifier.
    pub id: RentalId,
    /// Bike identifier.
    pub bike_id: u32,
    /// Rental (trip start) time.
    pub start_time: Timestamp,
    /// Return (trip end) time.
    pub end_time: Timestamp,
    /// Location the bike was rented from.
    pub rental_location_id: LocationId,
    /// Location the bike was returned to.
    pub return_location_id: LocationId,
}

impl Rental {
    /// Trip duration in seconds (negative when the end precedes the start,
    /// which the cleaning pipeline treats as a defect).
    pub fn duration_seconds(&self) -> i64 {
        self.start_time.seconds_until(self.end_time)
    }
}

/// A raw dataset: the three tables exactly as ingested.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RawDataset {
    /// Fixed charging stations (the paper starts with 95).
    pub stations: Vec<Station>,
    /// Raw `Location` rows.
    pub locations: Vec<RawLocation>,
    /// Raw `Rental` rows.
    pub rentals: Vec<RawRental>,
}

/// A cleaned dataset: every record satisfies the paper's §III invariants.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CleanDataset {
    /// Usable fixed stations (the paper ends with 92).
    pub stations: Vec<Station>,
    /// Validated locations, all referenced by at least one rental.
    pub locations: Vec<Location>,
    /// Validated rentals.
    pub rentals: Vec<Rental>,
}

impl RawDataset {
    /// Total row count across the three tables.
    pub fn total_rows(&self) -> usize {
        self.stations.len() + self.locations.len() + self.rentals.len()
    }
}

impl CleanDataset {
    /// Look up a validated location by id (linear scan; the cleaning
    /// pipeline builds an index when it needs repeated lookups).
    pub fn location(&self, id: LocationId) -> Option<&Location> {
        self.locations.iter().find(|l| l.id == id)
    }

    /// The time span `(earliest start, latest end)` covered by the rentals,
    /// or `None` when there are no rentals.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.rentals.iter().map(|r| r.start_time).min()?;
        let last = self.rentals.iter().map(|r| r.end_time).max()?;
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(y: i32, m: u32, d: u32, h: u32) -> Timestamp {
        Timestamp::from_ymd_hms(y, m, d, h, 0, 0).unwrap()
    }

    #[test]
    fn rental_duration() {
        let r = Rental {
            id: 1,
            bike_id: 7,
            start_time: ts(2020, 5, 1, 8),
            end_time: ts(2020, 5, 1, 9),
            rental_location_id: 10,
            return_location_id: 20,
        };
        assert_eq!(r.duration_seconds(), 3600);
    }

    #[test]
    fn raw_dataset_row_count() {
        let ds = RawDataset {
            stations: vec![Station {
                id: 1,
                name: "A".into(),
                position: GeoPoint::new(53.35, -6.26).unwrap(),
            }],
            locations: vec![RawLocation {
                id: 2,
                lat: Some(53.35),
                lon: Some(-6.26),
                station_id: None,
            }],
            rentals: vec![],
        };
        assert_eq!(ds.total_rows(), 2);
    }

    #[test]
    fn clean_dataset_lookup_and_span() {
        let ds = CleanDataset {
            stations: vec![],
            locations: vec![Location {
                id: 5,
                position: GeoPoint::new(53.35, -6.26).unwrap(),
                station_id: Some(1),
            }],
            rentals: vec![
                Rental {
                    id: 1,
                    bike_id: 1,
                    start_time: ts(2020, 1, 3, 8),
                    end_time: ts(2020, 1, 3, 9),
                    rental_location_id: 5,
                    return_location_id: 5,
                },
                Rental {
                    id: 2,
                    bike_id: 1,
                    start_time: ts(2021, 9, 19, 20),
                    end_time: ts(2021, 9, 19, 21),
                    rental_location_id: 5,
                    return_location_id: 5,
                },
            ],
        };
        assert!(ds.location(5).is_some());
        assert!(ds.location(6).is_none());
        let (a, b) = ds.time_span().unwrap();
        assert_eq!(a.ymd(), (2020, 1, 3));
        assert_eq!(b.ymd(), (2021, 9, 19));
    }

    #[test]
    fn empty_time_span_is_none() {
        assert!(CleanDataset::default().time_span().is_none());
    }
}
