//! Dataset overview statistics (the paper's Table I) and descriptive
//! summaries used throughout the reports.

use crate::clean::CleaningOutcome;
use crate::schema::{CleanDataset, RawDataset};
use crate::timeparse::{Timestamp, Weekday};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The paper's Table I: original vs cleaned dataset measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetOverview {
    /// First rental start, original data.
    pub start: Option<Timestamp>,
    /// Last rental end, original data.
    pub end: Option<Timestamp>,
    /// Stations before / after cleaning.
    pub stations: (usize, usize),
    /// Rentals before / after cleaning.
    pub rentals: (usize, usize),
    /// Locations before / after cleaning.
    pub locations: (usize, usize),
}

impl DatasetOverview {
    /// Build the overview from the raw dataset and the cleaning outcome.
    pub fn from_cleaning(raw: &RawDataset, outcome: &CleaningOutcome) -> Self {
        let start = raw.rentals.iter().map(|r| r.start_time).min();
        let end = raw.rentals.iter().map(|r| r.end_time).max();
        Self {
            start,
            end,
            stations: (
                outcome.report.stations_before,
                outcome.report.stations_after,
            ),
            rentals: (outcome.report.rentals_before, outcome.report.rentals_after),
            locations: (
                outcome.report.locations_before,
                outcome.report.locations_after,
            ),
        }
    }

    /// Approximate duration of the observation window in whole months.
    pub fn duration_months(&self) -> Option<i64> {
        let (s, e) = (self.start?, self.end?);
        Some(((e.unix_seconds() - s.unix_seconds()) as f64 / (30.44 * 86_400.0)).round() as i64)
    }

    /// Render the overview as an aligned text table in the layout of
    /// Table I.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>16} {:>16}",
            "Measures", "Original", "Cleaned"
        );
        let duration = match (self.start, self.end) {
            (Some(s), Some(e)) => {
                let (sy, sm, _) = s.ymd();
                let (ey, em, _) = e.ymd();
                format!(
                    "{} {}-{} {} (~{} months)",
                    month_name(sm),
                    sy,
                    month_name(em),
                    ey,
                    self.duration_months().unwrap_or(0)
                )
            }
            _ => "n/a".to_owned(),
        };
        let _ = writeln!(out, "{:<22} {:>33}", "Duration of data", duration);
        let _ = writeln!(
            out,
            "{:<22} {:>16} {:>16}",
            "#stations", self.stations.0, self.stations.1
        );
        let _ = writeln!(
            out,
            "{:<22} {:>16} {:>16}",
            "#rental", self.rentals.0, self.rentals.1
        );
        let _ = writeln!(
            out,
            "{:<22} {:>16} {:>16}",
            "#location", self.locations.0, self.locations.1
        );
        out
    }
}

fn month_name(m: u32) -> &'static str {
    [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ]
    .get((m as usize).wrapping_sub(1))
    .copied()
    .unwrap_or("???")
}

/// Descriptive statistics over a cleaned dataset used by reports and
/// examples: trips per weekday, trips per hour, trips per station location.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UsageProfile {
    /// Trips starting on each weekday (Monday-first).
    pub trips_per_weekday: [usize; 7],
    /// Trips starting in each hour of the day.
    pub trips_per_hour: [usize; 24],
    /// Trips per origin location id.
    pub trips_per_origin: HashMap<u64, usize>,
    /// Mean trip duration in minutes.
    pub mean_duration_min: f64,
}

impl UsageProfile {
    /// Compute the profile of a cleaned dataset.
    pub fn of(dataset: &CleanDataset) -> Self {
        let mut p = UsageProfile::default();
        let mut total_duration = 0.0f64;
        for r in &dataset.rentals {
            p.trips_per_weekday[r.start_time.weekday().index() as usize] += 1;
            p.trips_per_hour[r.start_time.hour() as usize] += 1;
            *p.trips_per_origin.entry(r.rental_location_id).or_insert(0) += 1;
            total_duration += r.duration_seconds() as f64 / 60.0;
        }
        if !dataset.rentals.is_empty() {
            p.mean_duration_min = total_duration / dataset.rentals.len() as f64;
        }
        p
    }

    /// Total number of trips.
    pub fn total_trips(&self) -> usize {
        self.trips_per_weekday.iter().sum()
    }

    /// The share (0–1) of trips starting on a weekend day.
    pub fn weekend_share(&self) -> f64 {
        let total = self.total_trips();
        if total == 0 {
            return 0.0;
        }
        let weekend: usize = Weekday::ALL
            .iter()
            .filter(|d| d.is_weekend())
            .map(|d| self.trips_per_weekday[d.index() as usize])
            .sum();
        weekend as f64 / total as f64
    }

    /// The busiest start hour of the day (0–23); ties resolve to the
    /// earliest hour. `None` when there are no trips.
    pub fn peak_hour(&self) -> Option<usize> {
        if self.total_trips() == 0 {
            return None;
        }
        self.trips_per_hour
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(h, _)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_dataset;
    use crate::schema::{Location, Rental};
    use crate::synth::{generate, SynthConfig};
    use moby_geo::GeoPoint;

    #[test]
    fn overview_from_synthetic_data() {
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let outcome = clean_dataset(&raw);
        let overview = DatasetOverview::from_cleaning(&raw, &outcome);
        assert_eq!(overview.rentals.0, raw.rentals.len());
        assert_eq!(overview.rentals.1, outcome.dataset.rentals.len());
        assert!(overview.stations.0 > overview.stations.1);
        assert!(overview.duration_months().unwrap() >= 3);
        let table = overview.render_table();
        assert!(table.contains("#stations"));
        assert!(table.contains("#rental"));
        assert!(table.contains("Original"));
    }

    #[test]
    fn month_names() {
        assert_eq!(month_name(1), "Jan");
        assert_eq!(month_name(9), "Sep");
        assert_eq!(month_name(0), "???");
        assert_eq!(month_name(13), "???");
    }

    fn tiny_dataset() -> CleanDataset {
        let loc = |id: u64| Location {
            id,
            position: GeoPoint::new(53.35, -6.26).unwrap(),
            station_id: None,
        };
        let rental = |id: u64, day: u32, hour: u32, origin: u64| Rental {
            id,
            bike_id: 1,
            start_time: Timestamp::from_ymd_hms(2021, 6, day, hour, 0, 0).unwrap(),
            end_time: Timestamp::from_ymd_hms(2021, 6, day, hour, 30, 0).unwrap(),
            rental_location_id: origin,
            return_location_id: 1,
        };
        CleanDataset {
            stations: vec![],
            locations: vec![loc(1), loc(2)],
            rentals: vec![
                rental(1, 14, 8, 1),  // Monday 08
                rental(2, 14, 8, 1),  // Monday 08
                rental(3, 19, 12, 2), // Saturday 12
                rental(4, 20, 13, 2), // Sunday 13
            ],
        }
    }

    #[test]
    fn usage_profile_counts() {
        let p = UsageProfile::of(&tiny_dataset());
        assert_eq!(p.total_trips(), 4);
        assert_eq!(p.trips_per_weekday[0], 2); // Monday
        assert_eq!(p.trips_per_weekday[5], 1); // Saturday
        assert_eq!(p.trips_per_hour[8], 2);
        assert_eq!(p.peak_hour(), Some(8));
        assert!((p.weekend_share() - 0.5).abs() < 1e-12);
        assert!((p.mean_duration_min - 30.0).abs() < 1e-9);
        assert_eq!(p.trips_per_origin[&1], 2);
    }

    #[test]
    fn usage_profile_of_empty_dataset() {
        let p = UsageProfile::of(&CleanDataset::default());
        assert_eq!(p.total_trips(), 0);
        assert_eq!(p.peak_hour(), None);
        assert_eq!(p.weekend_share(), 0.0);
        assert_eq!(p.mean_duration_min, 0.0);
    }
}
