//! Directory-level dataset loading and saving.
//!
//! Operators who have a real trip export (rather than the synthetic
//! generator) drop three CSV files into a directory and load them in one
//! call:
//!
//! ```text
//! dataset/
//!   stations.csv    id,name,lat,lon
//!   locations.csv   id,lat,lon,station_id
//!   rentals.csv     id,bike_id,start_time,end_time,rental_location_id,return_location_id
//! ```

use crate::csvio;
use crate::schema::RawDataset;
use crate::{DataError, Result};
use std::fs;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// File name of the stations table inside a dataset directory.
pub const STATIONS_FILE: &str = "stations.csv";
/// File name of the locations table inside a dataset directory.
pub const LOCATIONS_FILE: &str = "locations.csv";
/// File name of the rentals table inside a dataset directory.
pub const RENTALS_FILE: &str = "rentals.csv";

/// Open a table file for buffered line streaming. Loading never slurps a
/// file into one `String` — a rentals export larger than the RAM headroom
/// only ever costs the parsed records, not the raw text on top.
fn open_file(dir: &Path, name: &str) -> Result<(BufReader<File>, String)> {
    let path = dir.join(name);
    let display = path.display().to_string();
    let file = File::open(&path).map_err(|e| DataError::Io {
        path: display.clone(),
        message: e.to_string(),
    })?;
    Ok((BufReader::new(file), display))
}

fn write_file(dir: &Path, name: &str, content: &str) -> Result<()> {
    let path = dir.join(name);
    fs::write(&path, content).map_err(|e| DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Load a raw dataset from a directory containing the three CSV files,
/// streaming each file line by line through a [`BufReader`].
///
/// # Errors
///
/// I/O failures are reported as [`DataError::Io`] (labelled with the file
/// path); malformed rows propagate the usual CSV parsing errors.
pub fn load_raw_dataset(dir: &Path) -> Result<RawDataset> {
    let (stations, stations_path) = open_file(dir, STATIONS_FILE)?;
    let (locations, locations_path) = open_file(dir, LOCATIONS_FILE)?;
    let (rentals, rentals_path) = open_file(dir, RENTALS_FILE)?;
    Ok(RawDataset {
        stations: csvio::read_stations_from(stations, &stations_path)?,
        locations: csvio::read_locations_from(locations, &locations_path)?,
        rentals: csvio::read_rentals_from(rentals, &rentals_path)?,
    })
}

/// Save a raw dataset into a directory as the three CSV files, creating the
/// directory if necessary.
///
/// # Errors
///
/// I/O failures are reported as [`DataError::Io`].
pub fn save_raw_dataset(dir: &Path, dataset: &RawDataset) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| DataError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    write_file(
        dir,
        STATIONS_FILE,
        &csvio::write_stations(&dataset.stations),
    )?;
    write_file(
        dir,
        LOCATIONS_FILE,
        &csvio::write_locations(&dataset.locations),
    )?;
    write_file(dir, RENTALS_FILE, &csvio::write_rentals(&dataset.rentals))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moby-loader-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_through_a_directory() {
        let dir = scratch_dir("roundtrip");
        let mut cfg = SynthConfig::small_test();
        cfg.clean_rentals = 200;
        cfg.dockless_locations = 80;
        let original = generate(&cfg);
        save_raw_dataset(&dir, &original).expect("save succeeds");
        let loaded = load_raw_dataset(&dir).expect("load succeeds");
        assert_eq!(loaded.stations.len(), original.stations.len());
        assert_eq!(loaded.locations.len(), original.locations.len());
        assert_eq!(loaded.rentals, original.rentals);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_reports_io_error() {
        let dir = scratch_dir("missing").join("does-not-exist");
        let err = load_raw_dataset(&dir).unwrap_err();
        assert!(matches!(err, DataError::Io { .. }));
        assert!(err.to_string().contains("stations.csv"));
    }

    #[test]
    fn malformed_file_reports_parse_error() {
        let dir = scratch_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(STATIONS_FILE), "id,name,lat,lon\n1,Ok,53.3,-6.2\n").unwrap();
        fs::write(dir.join(LOCATIONS_FILE), "id,lat,lon,station_id\nbroken\n").unwrap();
        fs::write(
            dir.join(RENTALS_FILE),
            "id,bike_id,start_time,end_time,rental_location_id,return_location_id\n",
        )
        .unwrap();
        let err = load_raw_dataset(&dir).unwrap_err();
        assert!(matches!(err, DataError::MalformedRow { .. }));
        let _ = fs::remove_dir_all(&dir);
    }
}
