//! A statistically calibrated synthetic Moby Bikes dataset.
//!
//! The real Moby trip data is proprietary, so the reproduction generates a
//! synthetic dataset whose *marginals* match what the paper reports and
//! whose structure exercises every step of the pipeline:
//!
//! * ~95 fixed stations of which 3 carry defective positions, so the
//!   cleaning pipeline ends with 92 usable stations (Table I);
//! * ≈62 k rentals across Jan 2020 – Sep 2021, of which ≈450 carry the
//!   defects listed in §III (missing references, dangling references,
//!   trips touching invalid locations);
//! * ≈14 k distinct rental/return locations, dense around demand hotspots
//!   and thin elsewhere, so hierarchical clustering has realistic density
//!   contrasts to work with;
//! * **regional structure**: zones are grouped into three broad regions
//!   (centre/north, southside, western suburbs) and most trips stay within
//!   their region — the paper's GBasic communities are exactly such largely
//!   self-contained regions (~74 % of trips internal);
//! * **temporal structure**: within each region the zones differ in
//!   behaviour (weekday commuter peaks vs weekend/midday leisure peaks), so
//!   finer temporal granularity reveals finer community structure, the
//!   trend behind the paper's `GDay`/`GHour` results;
//! * **usage skew**: station popularity within a zone is heavy-tailed, so a
//!   handful of fixed stations are barely used — exactly why the paper's
//!   Rule 3 threshold ("minimum degree of pre-existing stations") is low
//!   enough for strong candidates to clear it;
//! * **demand hotspots without stations**: part of the dockless demand
//!   concentrates at hotspots more than 250 m from any fixed station —
//!   these are the locations Algorithm 1 promotes to new stations.
//!
//! The generator is fully deterministic given [`SynthConfig::seed`].

use crate::schema::{RawDataset, RawLocation, RawRental, Station};
use crate::timeparse::{Timestamp, Weekday};
use moby_geo::{destination_point, GeoPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Broad travel behaviour of a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneProfile {
    /// Weekday commuting dominates (morning / evening peaks).
    Commuter,
    /// Weekend leisure dominates (midday peak, Saturday/Sunday heavy).
    Leisure,
    /// A blend of both.
    Mixed,
}

/// A travel zone: a centre point, a scatter radius, a behavioural profile
/// and the broad region it belongs to. Stations and dockless locations are
/// generated around zone centres; trips mostly stay within their region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// Short name, used for diagnostics.
    pub name: String,
    /// Zone centre.
    pub centre: GeoPoint,
    /// Scatter radius in metres for stations and locations.
    pub radius_m: f64,
    /// Behavioural profile.
    pub profile: ZoneProfile,
    /// Relative share of total trips originating here.
    pub popularity: f64,
    /// Number of fixed stations to place in the zone.
    pub stations: usize,
    /// Region index; trips overwhelmingly stay within their region.
    pub region: usize,
}

#[allow(clippy::too_many_arguments)]
fn zone(
    name: &str,
    lat: f64,
    lon: f64,
    radius_m: f64,
    profile: ZoneProfile,
    popularity: f64,
    stations: usize,
    region: usize,
) -> Zone {
    Zone {
        name: name.to_owned(),
        centre: GeoPoint::new(lat, lon).expect("static zone centre is valid"),
        radius_m,
        profile,
        popularity,
        stations,
        region,
    }
}

/// The default Dublin zone layout used by the generator: 9 zones, 92 good
/// stations, grouped into 3 regions that mirror the paper's GBasic
/// communities (centre + northside, southside, western suburbs / park).
pub fn dublin_zones() -> Vec<Zone> {
    vec![
        // Region 0 — city centre and northside (the paper's "green").
        zone(
            "City Centre North",
            53.3525,
            -6.2608,
            900.0,
            ZoneProfile::Mixed,
            0.19,
            16,
            0,
        ),
        zone(
            "City Centre South",
            53.3405,
            -6.2599,
            900.0,
            ZoneProfile::Mixed,
            0.18,
            15,
            0,
        ),
        zone(
            "Docklands",
            53.3440,
            -6.2370,
            800.0,
            ZoneProfile::Commuter,
            0.13,
            11,
            0,
        ),
        zone(
            "North Suburbs",
            53.3720,
            -6.2530,
            1_300.0,
            ZoneProfile::Commuter,
            0.08,
            9,
            0,
        ),
        // Region 1 — southside (the paper's "blue").
        zone(
            "Ringsend",
            53.3330,
            -6.2220,
            900.0,
            ZoneProfile::Leisure,
            0.06,
            8,
            1,
        ),
        zone(
            "South Suburbs",
            53.3260,
            -6.2650,
            1_200.0,
            ZoneProfile::Commuter,
            0.10,
            9,
            1,
        ),
        zone(
            "Dun Laoghaire",
            53.2945,
            -6.1336,
            1_500.0,
            ZoneProfile::Leisure,
            0.09,
            9,
            1,
        ),
        // Region 2 — western suburbs and the Phoenix Park (the "orange").
        zone(
            "Phoenix Park",
            53.3561,
            -6.3298,
            1_200.0,
            ZoneProfile::Leisure,
            0.09,
            7,
            2,
        ),
        zone(
            "West Suburbs",
            53.3420,
            -6.3080,
            1_200.0,
            ZoneProfile::Commuter,
            0.08,
            8,
            2,
        ),
    ]
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed; two runs with the same config are identical.
    pub seed: u64,
    /// Zone layout.
    pub zones: Vec<Zone>,
    /// Number of *clean* rentals to generate (dirty rentals are added on
    /// top, see [`SynthConfig::dirty_rentals`]).
    pub clean_rentals: usize,
    /// Approximate number of distinct dockless locations to use.
    pub dockless_locations: usize,
    /// Number of defective rentals to inject (missing refs, dangling refs,
    /// trips touching invalid locations).
    pub dirty_rentals: usize,
    /// Number of defective locations to inject (outside Dublin, in the bay,
    /// missing coordinates, unreferenced).
    pub dirty_locations: usize,
    /// Number of defective stations to inject (positions failing cleaning).
    pub dirty_stations: usize,
    /// First day of the observation window.
    pub start: Timestamp,
    /// Last day of the observation window.
    pub end: Timestamp,
    /// Fleet size (bike ids are 1..=n_bikes).
    pub n_bikes: u32,
    /// Probability that a trip endpoint is exactly at a fixed station
    /// (users are financially incentivised to return bikes to stations).
    pub station_endpoint_prob: f64,
    /// Probability that a trip stays within its origin zone.
    pub within_zone_prob: f64,
    /// Probability that a trip that leaves its zone stays within its region.
    pub within_region_prob: f64,
    /// Demand multiplier applied during the strictest COVID restriction
    /// months (April–June 2020, January–March 2021).
    pub covid_damping: f64,
}

impl SynthConfig {
    /// Full paper-scale configuration: ≈62 324 rentals, ≈14 239 locations,
    /// 95 stations, Jan 2020 – Sep 2021.
    pub fn paper_scale() -> Self {
        Self {
            seed: 42,
            zones: dublin_zones(),
            clean_rentals: 61_872,
            dockless_locations: 14_050,
            dirty_rentals: 452,
            dirty_locations: 83,
            dirty_stations: 3,
            start: Timestamp::from_ymd_hms(2020, 1, 3, 0, 0, 0).expect("valid"),
            end: Timestamp::from_ymd_hms(2021, 9, 19, 23, 59, 59).expect("valid"),
            n_bikes: 95,
            station_endpoint_prob: 0.52,
            within_zone_prob: 0.42,
            within_region_prob: 0.33,
            covid_damping: 0.55,
        }
    }

    /// A small, fast configuration for unit and integration tests
    /// (~2 000 rentals, ~600 locations, 4 months).
    pub fn small_test() -> Self {
        Self {
            seed: 7,
            zones: dublin_zones(),
            clean_rentals: 2_000,
            dockless_locations: 600,
            dirty_rentals: 25,
            dirty_locations: 12,
            dirty_stations: 2,
            start: Timestamp::from_ymd_hms(2021, 3, 1, 0, 0, 0).expect("valid"),
            end: Timestamp::from_ymd_hms(2021, 6, 30, 23, 59, 59).expect("valid"),
            n_bikes: 40,
            station_endpoint_prob: 0.52,
            within_zone_prob: 0.42,
            within_region_prob: 0.33,
            covid_damping: 0.8,
        }
    }

    /// Total number of stations this configuration will emit.
    pub fn total_stations(&self) -> usize {
        self.zones.iter().map(|z| z.stations).sum::<usize>() + self.dirty_stations
    }
}

/// Hour-of-day sampling weights for each profile and day type.
fn hour_weights(profile: ZoneProfile, weekday: Weekday) -> [f64; 24] {
    let weekend = weekday.is_weekend();
    let mut w = [0.5f64; 24];
    // Nobody cycles much between 01:00 and 05:00.
    for h in 1..6 {
        w[h] = 0.05;
    }
    match (profile, weekend) {
        (ZoneProfile::Commuter, false) => {
            w[7] = 4.0;
            w[8] = 6.0;
            w[9] = 3.0;
            w[12] = 1.5;
            w[13] = 1.5;
            w[16] = 2.5;
            w[17] = 6.0;
            w[18] = 4.5;
            w[19] = 1.5;
        }
        (ZoneProfile::Commuter, true) => {
            for h in 10..18 {
                w[h] = 1.2;
            }
        }
        (ZoneProfile::Leisure, true) => {
            w[10] = 2.5;
            w[11] = 4.0;
            w[12] = 5.5;
            w[13] = 5.5;
            w[14] = 5.0;
            w[15] = 4.0;
            w[16] = 3.0;
            w[17] = 2.0;
        }
        (ZoneProfile::Leisure, false) => {
            w[11] = 2.0;
            w[12] = 2.8;
            w[13] = 2.8;
            w[14] = 2.2;
            w[17] = 1.5;
        }
        (ZoneProfile::Mixed, false) => {
            w[8] = 3.5;
            w[9] = 2.0;
            w[12] = 2.2;
            w[13] = 2.2;
            w[17] = 3.5;
            w[18] = 2.5;
        }
        (ZoneProfile::Mixed, true) => {
            for h in 11..19 {
                w[h] = 2.2;
            }
        }
    }
    w
}

/// Day-of-week sampling weights for each profile.
fn weekday_weights(profile: ZoneProfile) -> [f64; 7] {
    match profile {
        ZoneProfile::Commuter => [1.3, 1.35, 1.35, 1.3, 1.25, 0.55, 0.5],
        ZoneProfile::Leisure => [0.7, 0.7, 0.75, 0.8, 1.0, 1.9, 1.7],
        ZoneProfile::Mixed => [1.0, 1.0, 1.0, 1.0, 1.1, 1.2, 1.0],
    }
}

/// Sample an index proportional to `weights`.
fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// COVID-era demand multiplier for a given date. The strictest Irish
/// restrictions (Level 5 lockdowns) fell in April–June 2020 and
/// January–March 2021.
fn covid_multiplier(ts: Timestamp, damping: f64) -> f64 {
    let (y, m, _) = ts.ymd();
    match (y, m) {
        (2020, 4..=6) => damping,
        (2021, 1..=3) => damping,
        (2020, 3) | (2020, 7..=8) => 0.5 + 0.5 * damping,
        _ => 1.0,
    }
}

/// A demand hotspot: a point where dockless pickups/drop-offs concentrate.
struct Hotspot {
    centre: GeoPoint,
    zone: usize,
    weight: f64,
    /// Location ids scattered around this hotspot.
    locations: Vec<u64>,
}

/// Generate a raw dataset according to `config`.
///
/// The output intentionally contains the §III defects; run
/// [`crate::clean::clean_dataset`] to obtain the analysis-ready dataset.
pub fn generate(config: &SynthConfig) -> RawDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zones = &config.zones;
    let n_zones = zones.len();
    let mut next_location_id: u64 = 1;
    let mut next_station_id: u64 = 1;

    // --- Fixed stations, clustered inside their zones, with heavy-tailed
    // --- per-station popularity (some stations are barely used).
    let mut stations: Vec<Station> = Vec::new();
    let mut station_zone: Vec<usize> = Vec::new();
    let mut station_weight: Vec<f64> = Vec::new();
    for (zi, z) in zones.iter().enumerate() {
        for s in 0..z.stations {
            let angle = rng.gen_range(0.0..360.0);
            let dist = z.radius_m * (0.25 + 0.75 * rng.gen::<f64>());
            let pos = destination_point(z.centre, angle, dist);
            stations.push(Station {
                id: next_station_id,
                name: format!("{} #{:02}", z.name, s + 1),
                position: pos,
            });
            station_zone.push(zi);
            // Heavy-tailed usage: u^3 gives a few near-zero-traffic stations
            // per zone, which keeps the Rule 3 threshold (min fixed-station
            // degree) realistically low.
            station_weight.push(0.02 + rng.gen::<f64>().powi(3));
            next_station_id += 1;
        }
    }
    // Defective stations: positions that fail the cleaning rules.
    let bad_station_positions = [
        GeoPoint::new(51.8985, -8.4756).expect("Cork"), // outside Dublin
        GeoPoint::new(53.3350, -6.1300).expect("bay"),  // Dublin Bay
        GeoPoint::new(53.6000, -6.2000).expect("far north"), // outside service area
        GeoPoint::new(52.2593, -7.1101).expect("Waterford"),
    ];
    for i in 0..config.dirty_stations {
        stations.push(Station {
            id: next_station_id,
            name: format!("Decommissioned #{:02}", i + 1),
            position: bad_station_positions[i % bad_station_positions.len()],
        });
        next_station_id += 1;
    }

    // --- Location table: one row per good station, then dockless demand
    // --- hotspots (many deliberately placed away from the stations), then
    // --- defective rows.
    let mut locations: Vec<RawLocation> = Vec::new();
    let mut station_location: Vec<u64> = Vec::new(); // station idx -> location id
    for (si, st) in stations.iter().enumerate() {
        if si >= station_zone.len() {
            break; // defective stations get no location row
        }
        locations.push(RawLocation {
            id: next_location_id,
            lat: Some(st.position.lat()),
            lon: Some(st.position.lon()),
            station_id: Some(st.id),
        });
        station_location.push(next_location_id);
        next_location_id += 1;
    }

    let total_popularity: f64 = zones.iter().map(|z| z.popularity).sum();
    let mut hotspots: Vec<Hotspot> = Vec::new();
    for (zi, z) in zones.iter().enumerate() {
        // Several dockless hotspots per station, plus gap hotspots on the
        // zone fringe (the under-served demand the paper's new stations
        // answer).
        let core_hotspots = z.stations * 3;
        let fringe_hotspots = (z.stations / 2).max(3);
        for h in 0..(core_hotspots + fringe_hotspots) {
            let fringe = h >= core_hotspots; // gap hotspots sit farther out
            let angle = rng.gen_range(0.0..360.0);
            let dist = if fringe {
                z.radius_m * rng.gen_range(0.9..1.5)
            } else {
                z.radius_m * rng.gen::<f64>().powf(0.7)
            };
            hotspots.push(Hotspot {
                centre: destination_point(z.centre, angle, dist),
                zone: zi,
                // Fringe hotspots carry solid demand so their candidates
                // clear the degree threshold, but most dockless volume stays
                // near the existing stations.
                weight: if fringe {
                    rng.gen_range(0.5..1.1)
                } else {
                    0.1 + rng.gen::<f64>().powi(2) * 1.2
                },
                locations: Vec::new(),
            });
        }
    }
    // Scatter dockless locations around hotspots, proportionally to zone
    // popularity and hotspot weight.
    let zone_hotspot_indices: Vec<Vec<usize>> = (0..n_zones)
        .map(|zi| {
            hotspots
                .iter()
                .enumerate()
                .filter(|(_, h)| h.zone == zi)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    for (zi, z) in zones.iter().enumerate() {
        let share = z.popularity / total_popularity;
        let count = ((config.dockless_locations as f64) * share).round() as usize;
        let indices = &zone_hotspot_indices[zi];
        let weights: Vec<f64> = indices.iter().map(|&i| hotspots[i].weight).collect();
        for _ in 0..count {
            let hi = indices[sample_weighted(&mut rng, &weights)];
            let angle = rng.gen_range(0.0..360.0);
            // Tight scatter so HAC recovers the hotspot as 1–3 clusters.
            let dist = 80.0 * rng.gen::<f64>().powf(0.8);
            let pos = destination_point(hotspots[hi].centre, angle, dist);
            locations.push(RawLocation {
                id: next_location_id,
                lat: Some(pos.lat()),
                lon: Some(pos.lon()),
                station_id: None,
            });
            hotspots[hi].locations.push(next_location_id);
            next_location_id += 1;
        }
    }

    // Defective locations. A quarter of them are left unreferenced on
    // purpose (rule 6); the rest become endpoints of defective rentals.
    let mut bad_location_ids: Vec<u64> = Vec::new();
    for i in 0..config.dirty_locations {
        let (lat, lon) = match i % 4 {
            0 => (Some(51.8985 + (i as f64) * 1e-3), Some(-8.4756)), // Cork-ish
            1 => (Some(53.3350), Some(-6.1250 - (i as f64) * 1e-4)), // bay
            2 => (None, Some(-6.26)),                                // missing lat
            _ => (Some(53.30 + (i as f64) * 1e-4), Some(-6.27)),     // valid but unreferenced
        };
        locations.push(RawLocation {
            id: next_location_id,
            lat,
            lon,
            station_id: None,
        });
        if i % 4 != 3 {
            bad_location_ids.push(next_location_id);
        }
        next_location_id += 1;
    }

    // Per-zone station index and hotspot lookup used by endpoint sampling.
    let mut stations_by_zone: Vec<Vec<usize>> = vec![Vec::new(); n_zones];
    for (si, &zi) in station_zone.iter().enumerate() {
        stations_by_zone[zi].push(si);
    }
    // Zone-to-zone affinity for cross-region trips (inverse distance).
    let mut affinity = vec![vec![0.0f64; n_zones]; n_zones];
    for i in 0..n_zones {
        for j in 0..n_zones {
            if i == j {
                continue;
            }
            let d = moby_geo::haversine_m(zones[i].centre, zones[j].centre).max(500.0);
            affinity[i][j] = zones[j].popularity / (d / 1000.0);
        }
    }
    // Zones by region, for within-region destination choice.
    let n_regions = zones.iter().map(|z| z.region).max().unwrap_or(0) + 1;
    let zones_by_region: Vec<Vec<usize>> = (0..n_regions)
        .map(|r| (0..n_zones).filter(|&zi| zones[zi].region == r).collect())
        .collect();

    // --- Rentals. ---
    let day_count = ((config.end.unix_seconds() - config.start.unix_seconds()) / 86_400).max(1);
    let zone_weights: Vec<f64> = zones.iter().map(|z| z.popularity).collect();
    let mut rentals: Vec<RawRental> =
        Vec::with_capacity(config.clean_rentals + config.dirty_rentals);
    let mut next_rental_id: u64 = 1;

    let pick_endpoint = |rng: &mut StdRng, zone_idx: usize| -> u64 {
        let use_station = rng.gen::<f64>() < config.station_endpoint_prob;
        let zone_stations = &stations_by_zone[zone_idx];
        if use_station && !zone_stations.is_empty() {
            let weights: Vec<f64> = zone_stations.iter().map(|&si| station_weight[si]).collect();
            let si = zone_stations[sample_weighted(rng, &weights)];
            station_location[si]
        } else {
            let indices = &zone_hotspot_indices[zone_idx];
            let non_empty: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| !hotspots[i].locations.is_empty())
                .collect();
            if non_empty.is_empty() {
                return station_location[zone_stations[0]];
            }
            let weights: Vec<f64> = non_empty.iter().map(|&i| hotspots[i].weight).collect();
            let hi = non_empty[sample_weighted(rng, &weights)];
            // Zipf-flavoured reuse inside the hotspot: squaring the uniform
            // biases towards the head so some spots become very busy.
            let u: f64 = rng.gen::<f64>();
            let locs = &hotspots[hi].locations;
            let idx = ((u * u) * locs.len() as f64) as usize;
            locs[idx.min(locs.len() - 1)]
        }
    };

    let pick_destination_zone = |rng: &mut StdRng, origin_zone: usize| -> usize {
        let roll: f64 = rng.gen();
        if roll < config.within_zone_prob {
            return origin_zone;
        }
        if roll < config.within_zone_prob + config.within_region_prob {
            // Another zone of the same region, weighted by popularity.
            let region = zones[origin_zone].region;
            let others: Vec<usize> = zones_by_region[region]
                .iter()
                .copied()
                .filter(|&zi| zi != origin_zone)
                .collect();
            if others.is_empty() {
                return origin_zone;
            }
            let weights: Vec<f64> = others.iter().map(|&zi| zones[zi].popularity).collect();
            return others[sample_weighted(rng, &weights)];
        }
        // Cross-region trip, weighted by inverse-distance affinity.
        sample_weighted(rng, &affinity[origin_zone])
    };

    let mut generated = 0usize;
    while generated < config.clean_rentals {
        // Pick a day, thinning by the COVID multiplier.
        let day_offset = rng.gen_range(0..day_count);
        let midnight = Timestamp(config.start.unix_seconds() + day_offset * 86_400);
        if rng.gen::<f64>() > covid_multiplier(midnight, config.covid_damping) {
            continue;
        }
        // Origin zone.
        let origin_zone = sample_weighted(&mut rng, &zone_weights);
        let profile = zones[origin_zone].profile;
        // Re-weight the day by the zone's weekday preference (rejection).
        let wd = midnight.weekday();
        let wweights = weekday_weights(profile);
        if rng.gen::<f64>() > wweights[wd.index() as usize] / 2.0 {
            continue;
        }
        // Hour of day.
        let hweights = hour_weights(profile, wd);
        let hour = sample_weighted(&mut rng, &hweights) as u32;
        let minute = rng.gen_range(0..60u32);
        let start_time = midnight.plus_seconds(i64::from(hour) * 3600 + i64::from(minute) * 60);
        // Destination zone.
        let dest_zone = pick_destination_zone(&mut rng, origin_zone);
        let origin_loc = pick_endpoint(&mut rng, origin_zone);
        let dest_loc = pick_endpoint(&mut rng, dest_zone);
        let duration_min = if origin_zone == dest_zone {
            rng.gen_range(5..25)
        } else {
            rng.gen_range(15..55)
        };
        rentals.push(RawRental {
            id: next_rental_id,
            bike_id: rng.gen_range(1..=config.n_bikes),
            start_time,
            end_time: start_time.plus_seconds(i64::from(duration_min) * 60),
            rental_location_id: Some(origin_loc),
            return_location_id: Some(dest_loc),
        });
        next_rental_id += 1;
        generated += 1;
    }

    // Defective rentals.
    for i in 0..config.dirty_rentals {
        let day_offset = rng.gen_range(0..day_count);
        let start_time = Timestamp(config.start.unix_seconds() + day_offset * 86_400)
            .plus_seconds(rng.gen_range(6i64..22) * 3600);
        let good_endpoint = {
            let zi = sample_weighted(&mut rng, &zone_weights);
            pick_endpoint(&mut rng, zi)
        };
        let (from, to) = match i % 4 {
            // Trip touching a defective location.
            0 if !bad_location_ids.is_empty() => (
                Some(bad_location_ids[i % bad_location_ids.len()]),
                Some(good_endpoint),
            ),
            1 if !bad_location_ids.is_empty() => (
                Some(good_endpoint),
                Some(bad_location_ids[(i * 7) % bad_location_ids.len()]),
            ),
            // Missing reference.
            2 => (None, Some(good_endpoint)),
            // Dangling reference.
            _ => (Some(good_endpoint), Some(9_000_000 + i as u64)),
        };
        rentals.push(RawRental {
            id: next_rental_id,
            bike_id: rng.gen_range(1..=config.n_bikes),
            start_time,
            end_time: start_time.plus_seconds(1_200),
            rental_location_id: from,
            return_location_id: to,
        });
        next_rental_id += 1;
    }

    RawDataset {
        stations,
        locations,
        rentals,
    }
}

// ---------------------------------------------------------------------------
// City tier — streaming columnar generation for the `large` bench scale.
// ---------------------------------------------------------------------------

/// Configuration of the **city tier**: a synthetic city one to two orders
/// of magnitude above the paper's Dublin deployment (10k+ stations,
/// millions of trips), built to give the sharded CSR construction path
/// honest numbers at scale.
///
/// Unlike the calibrated [`SynthConfig`] path, city generation never
/// materialises row-of-structs records: [`city_trip_stream`] yields trips
/// one at a time and the streaming cleaner
/// ([`clean_trip_stream`](crate::clean::clean_trip_stream)) pushes the
/// survivors straight into a columnar
/// [`TripTable`](crate::trips::TripTable), so peak memory is the table
/// itself plus O(1) per row. Demand is zone-skewed and heavy-tailed:
/// zones draw trips with Zipf-like popularity and stations within a zone
/// follow a power-law rank distribution, mirroring the usage skew of the
/// real dataset at city scale.
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// RNG seed; two runs with the same config are identical.
    pub seed: u64,
    /// Number of stations (external ids `1..=stations`).
    pub stations: u32,
    /// Number of demand zones; stations split into contiguous id ranges
    /// per zone (which is also what the sharded build partitions by).
    pub zones: u32,
    /// Number of trips to generate (dirty rows are injected *within* this
    /// count, not on top). Scaled by [`CityConfig::trips_from_env`].
    pub trips: u64,
    /// Dirty rows injected per 10 000 trips — rows whose endpoints fall
    /// outside the station id space, removed by the streaming cleaner.
    pub dirty_per_10k: u32,
    /// Probability that a trip stays within its origin zone.
    pub within_zone_prob: f64,
    /// Length of the observation window in days.
    pub days: u32,
}

impl Default for CityConfig {
    fn default() -> CityConfig {
        CityConfig {
            seed: 20_210_601,
            stations: 10_240,
            zones: 64,
            trips: 1_000_000,
            dirty_per_10k: 25,
            within_zone_prob: 0.6,
            days: 28,
        }
    }
}

impl SynthConfig {
    /// The city tier: 10k+ stations with zone-skewed heavy-tailed demand
    /// and 1M+ trips (see [`CityConfig`]). Returned as its own config
    /// type because city generation is streaming/columnar and never
    /// builds a [`RawDataset`].
    pub fn city() -> CityConfig {
        CityConfig::default()
    }
}

impl CityConfig {
    /// Environment variable scaling [`CityConfig::trips`] (clamped to
    /// [`CityConfig::MAX_TRIPS`]); `0`, empty or garbage leave the
    /// configured count unchanged.
    pub const TRIPS_ENV: &'static str = "MOBY_CITY_TRIPS";

    /// Hard ceiling on the env-scaled trip count.
    pub const MAX_TRIPS: u64 = 10_000_000;

    /// Apply the [`CityConfig::TRIPS_ENV`] knob to the trip count.
    pub fn trips_from_env(mut self) -> CityConfig {
        if let Some(n) = std::env::var(Self::TRIPS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0)
        {
            self.trips = n.min(Self::MAX_TRIPS);
        }
        self
    }

    /// The external station ids of the city (`1..=stations`), sorted —
    /// the intern table for the downstream [`TripTable`](crate::trips::TripTable).
    pub fn station_ids(&self) -> Vec<u64> {
        (1..=self.stations as u64).collect()
    }

    /// First station id (inclusive lower bound of the dense range) owned
    /// by zone `z`, for `z in 0..=zones`.
    fn zone_start(&self, z: u32) -> u32 {
        (self.stations as u64 * z as u64 / self.zones.max(1) as u64) as u32
    }
}

/// One raw generated city trip addressed by external station ids. A
/// small injected fraction carries endpoints outside the city's id space
/// (the dirty rows the streaming cleaner removes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityTrip {
    /// Origin station id (`1..=stations` when clean).
    pub src: u64,
    /// Destination station id (`1..=stations` when clean).
    pub dst: u64,
    /// Trip start time.
    pub start: Timestamp,
}

/// A deterministic streaming iterator of [`CityTrip`]s — the city tier's
/// generator. Yields exactly [`CityConfig::trips`] rows; nothing is
/// buffered, so generation is O(1) memory regardless of the trip count.
pub struct CityTripStream {
    rng: StdRng,
    remaining: u64,
    cfg: CityConfig,
    /// Cumulative Zipf-like zone popularity (len `zones`, last entry is
    /// the total mass).
    zone_cum: Vec<f64>,
    /// Window start (midnight of day 0).
    window_start: Timestamp,
    /// Probability that a generated row is dirty.
    dirty_prob: f64,
}

/// Build the city trip stream for a configuration. See
/// [`CityConfig`] for the demand model and
/// [`clean_trip_stream`](crate::clean::clean_trip_stream) for the
/// streaming consumer.
pub fn city_trip_stream(cfg: &CityConfig) -> CityTripStream {
    assert!(cfg.stations > 0, "city needs stations");
    assert!(cfg.zones > 0 && cfg.zones <= cfg.stations, "bad zone count");
    // Zipf-like zone mass: zone z draws proportional to (z + 1)^-0.85,
    // so a handful of zones dominate demand (the heavy-tailed skew the
    // balanced shard boundaries have to absorb).
    let mut zone_cum = Vec::with_capacity(cfg.zones as usize);
    let mut acc = 0.0f64;
    for z in 0..cfg.zones {
        acc += 1.0 / ((z + 1) as f64).powf(0.85);
        zone_cum.push(acc);
    }
    CityTripStream {
        rng: StdRng::seed_from_u64(cfg.seed),
        remaining: cfg.trips,
        zone_cum,
        window_start: Timestamp::from_ymd_hms(2021, 6, 1, 0, 0, 0).expect("valid"),
        dirty_prob: cfg.dirty_per_10k as f64 / 10_000.0,
        cfg: cfg.clone(),
    }
}

impl CityTripStream {
    /// Sample a zone index proportional to the Zipf mass.
    fn sample_zone(&mut self) -> u32 {
        let total = *self.zone_cum.last().expect("non-empty");
        let x = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        self.zone_cum.partition_point(|&c| c <= x) as u32
    }

    /// Sample a station (external id) within a zone with power-law rank
    /// popularity: low ranks absorb most of the demand.
    fn sample_station(&mut self, zone: u32) -> u64 {
        let lo = self.cfg.zone_start(zone);
        let hi = self.cfg.zone_start(zone + 1).max(lo + 1);
        let size = (hi - lo) as f64;
        let u: f64 = self.rng.gen::<f64>();
        let rank = (size * u.powf(2.5)) as u32;
        (lo + rank.min(hi - lo - 1)) as u64 + 1
    }
}

impl Iterator for CityTripStream {
    type Item = CityTrip;

    fn next(&mut self) -> Option<CityTrip> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        let src_zone = self.sample_zone();
        let dst_zone = if self.rng.gen::<f64>() < self.cfg.within_zone_prob {
            src_zone
        } else {
            self.sample_zone()
        };
        let mut src = self.sample_station(src_zone);
        let mut dst = self.sample_station(dst_zone);

        // Temporal profile varies by origin zone so finer granularities
        // see structure, like the calibrated generator.
        let profile = match src_zone % 3 {
            0 => ZoneProfile::Commuter,
            1 => ZoneProfile::Mixed,
            _ => ZoneProfile::Leisure,
        };
        let day_offset = self.rng.gen_range(0..self.cfg.days.max(1)) as i64;
        let midnight = self.window_start.plus_seconds(day_offset * 86_400);
        let hour = sample_weighted(&mut self.rng, &hour_weights(profile, midnight.weekday()));
        let minute = self.rng.gen_range(0..60u32) as i64;
        let start = midnight.plus_seconds(hour as i64 * 3600 + minute * 60);

        // Dirty injection: endpoints outside the 1..=stations id space,
        // which the streaming cleaner must drop.
        if self.rng.gen::<f64>() < self.dirty_prob {
            let bogus = self.cfg.stations as u64 + 1 + self.rng.gen_range(0..1000u32) as u64;
            match self.rng.gen_range(0..3u32) {
                0 => src = bogus,
                1 => dst = bogus,
                _ => src = 0, // below the id space
            }
        }
        Some(CityTrip { src, dst, start })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_dataset;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn small_config_counts() {
        let cfg = SynthConfig::small_test();
        let ds = generate(&cfg);
        assert_eq!(ds.rentals.len(), cfg.clean_rentals + cfg.dirty_rentals);
        assert_eq!(ds.stations.len(), cfg.total_stations());
        // Location table: one per good station + dockless pool + dirty rows.
        assert!(ds.locations.len() > cfg.dockless_locations);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small_test();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        let c = generate(&cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn cleaning_removes_expected_magnitudes() {
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        // All injected dirty rentals disappear; a handful of clean rentals
        // can additionally be lost to coastal locations generated in the
        // bay (the same defect the real data has).
        let removed = out.report.total_rentals_removed();
        assert!(
            removed >= cfg.dirty_rentals,
            "removed {removed}, injected {}",
            cfg.dirty_rentals
        );
        assert!(
            removed <= cfg.dirty_rentals + cfg.clean_rentals / 10,
            "removed {removed} is implausibly high"
        );
        // The defective stations disappear.
        assert_eq!(out.report.total_stations_removed(), cfg.dirty_stations);
        // Some locations disappear (defective + unreferenced pool entries).
        assert!(out.report.total_locations_removed() >= cfg.dirty_locations / 2);
    }

    #[test]
    fn trips_reference_known_locations() {
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let ids: HashSet<u64> = out.dataset.locations.iter().map(|l| l.id).collect();
        for r in &out.dataset.rentals {
            assert!(ids.contains(&r.rental_location_id));
            assert!(ids.contains(&r.return_location_id));
        }
    }

    #[test]
    fn timestamps_are_within_window() {
        let cfg = SynthConfig::small_test();
        let ds = generate(&cfg);
        for r in &ds.rentals {
            assert!(
                r.start_time >= cfg.start,
                "{} < {}",
                r.start_time,
                cfg.start
            );
            assert!(r.start_time.unix_seconds() <= cfg.end.unix_seconds() + 86_400);
            assert!(r.end_time > r.start_time);
        }
    }

    /// Nearest zone centre for a location (test helper).
    fn nearest_zone(zones: &[Zone], p: GeoPoint) -> usize {
        zones
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                moby_geo::haversine_m(p, a.centre)
                    .partial_cmp(&moby_geo::haversine_m(p, b.centre))
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn commuter_zones_peak_on_weekdays() {
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let ds = &out.dataset;
        let zones = dublin_zones();
        let loc_zone: HashMap<u64, usize> = ds
            .locations
            .iter()
            .map(|l| (l.id, nearest_zone(&zones, l.position)))
            .collect();
        let mut commuter = [0usize; 2]; // [weekday, weekend]
        let mut leisure = [0usize; 2];
        for r in &ds.rentals {
            let zi = loc_zone[&r.rental_location_id];
            let bucket = usize::from(r.start_time.weekday().is_weekend());
            match zones[zi].profile {
                ZoneProfile::Commuter => commuter[bucket] += 1,
                ZoneProfile::Leisure => leisure[bucket] += 1,
                ZoneProfile::Mixed => {}
            }
        }
        let commuter_rate = (commuter[0] as f64 / 5.0) / (commuter[1] as f64 / 2.0).max(1e-9);
        let leisure_rate = (leisure[0] as f64 / 5.0) / (leisure[1] as f64 / 2.0).max(1e-9);
        assert!(
            commuter_rate > 1.2,
            "commuter weekday/weekend ratio {commuter_rate}"
        );
        assert!(
            leisure_rate < 1.1,
            "leisure weekday/weekend ratio {leisure_rate}"
        );
    }

    #[test]
    fn most_trips_stay_within_their_region() {
        // The paper's GBasic communities are largely self-contained regions
        // (~74% of trips internal); the generator is calibrated to match.
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let zones = dublin_zones();
        let loc_region: HashMap<u64, usize> = out
            .dataset
            .locations
            .iter()
            .map(|l| (l.id, zones[nearest_zone(&zones, l.position)].region))
            .collect();
        let mut within = 0usize;
        for r in &out.dataset.rentals {
            if loc_region[&r.rental_location_id] == loc_region[&r.return_location_id] {
                within += 1;
            }
        }
        let frac = within as f64 / out.dataset.rentals.len() as f64;
        assert!(
            frac > 0.6 && frac < 0.95,
            "within-region fraction {frac} outside the calibrated band"
        );
    }

    #[test]
    fn station_endpoints_are_common() {
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let station_locs: HashSet<u64> = out
            .dataset
            .locations
            .iter()
            .filter(|l| l.station_id.is_some())
            .map(|l| l.id)
            .collect();
        let at_station = out
            .dataset
            .rentals
            .iter()
            .filter(|r| station_locs.contains(&r.rental_location_id))
            .count();
        let frac = at_station as f64 / out.dataset.rentals.len() as f64;
        assert!(
            frac > 0.35 && frac < 0.75,
            "station endpoint fraction {frac}"
        );
    }

    #[test]
    fn station_usage_is_heavy_tailed() {
        // Some fixed stations must see very little traffic — this is what
        // keeps the paper's Rule 3 threshold low enough to pass.
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let station_loc_ids: HashMap<u64, u64> = out
            .dataset
            .locations
            .iter()
            .filter_map(|l| l.station_id.map(|sid| (l.id, sid)))
            .collect();
        let mut per_station: HashMap<u64, usize> = HashMap::new();
        for s in &out.dataset.stations {
            per_station.insert(s.id, 0);
        }
        for r in &out.dataset.rentals {
            for loc in [r.rental_location_id, r.return_location_id] {
                if let Some(sid) = station_loc_ids.get(&loc) {
                    *per_station.entry(*sid).or_insert(0) += 1;
                }
            }
        }
        let mut counts: Vec<usize> = per_station.values().copied().collect();
        counts.sort_unstable();
        let min = counts[0];
        let max = *counts.last().unwrap();
        assert!(max >= 10, "busiest station too quiet ({max})");
        assert!(
            (min as f64) < (max as f64) * 0.25,
            "station usage not skewed enough (min {min}, max {max})"
        );
    }

    #[test]
    fn some_dockless_demand_sits_far_from_stations() {
        // The fringe hotspots must generate trip endpoints more than 250 m
        // from every fixed station — the candidates Algorithm 1 promotes.
        let cfg = SynthConfig::small_test();
        let raw = generate(&cfg);
        let out = clean_dataset(&raw);
        let station_positions: Vec<GeoPoint> =
            out.dataset.stations.iter().map(|s| s.position).collect();
        let loc_pos: HashMap<u64, GeoPoint> = out
            .dataset
            .locations
            .iter()
            .map(|l| (l.id, l.position))
            .collect();
        let mut far_endpoints = 0usize;
        let mut total_endpoints = 0usize;
        for r in &out.dataset.rentals {
            for loc in [r.rental_location_id, r.return_location_id] {
                total_endpoints += 1;
                let p = loc_pos[&loc];
                let nearest = station_positions
                    .iter()
                    .map(|sp| moby_geo::haversine_m(p, *sp))
                    .fold(f64::INFINITY, f64::min);
                if nearest > 250.0 {
                    far_endpoints += 1;
                }
            }
        }
        let frac = far_endpoints as f64 / total_endpoints as f64;
        assert!(
            frac > 0.05,
            "expected at least 5% of endpoints far from stations, got {frac:.3}"
        );
    }

    #[test]
    fn covid_multiplier_shape() {
        let lockdown = Timestamp::from_ymd_hms(2020, 5, 1, 0, 0, 0).unwrap();
        let normal = Timestamp::from_ymd_hms(2021, 8, 1, 0, 0, 0).unwrap();
        assert!(covid_multiplier(lockdown, 0.5) < covid_multiplier(normal, 0.5));
        assert_eq!(covid_multiplier(normal, 0.5), 1.0);
    }

    #[test]
    fn hour_weights_have_commuter_peaks() {
        let w = hour_weights(ZoneProfile::Commuter, Weekday::Tuesday);
        assert!(w[8] > w[11]);
        assert!(w[17] > w[14]);
        let l = hour_weights(ZoneProfile::Leisure, Weekday::Saturday);
        assert!(l[13] > l[8]);
    }

    #[test]
    fn zones_cover_three_regions() {
        let zones = dublin_zones();
        let regions: HashSet<usize> = zones.iter().map(|z| z.region).collect();
        assert_eq!(regions.len(), 3);
        // Every region mixes at least two behavioural profiles, so finer
        // temporal granularity has something to split.
        for r in regions {
            let profiles: HashSet<_> = zones
                .iter()
                .filter(|z| z.region == r)
                .map(|z| z.profile)
                .collect();
            assert!(profiles.len() >= 2, "region {r} has a single profile");
        }
    }

    fn small_city() -> CityConfig {
        CityConfig {
            seed: 7,
            stations: 512,
            zones: 16,
            trips: 20_000,
            dirty_per_10k: 200,
            within_zone_prob: 0.6,
            days: 7,
        }
    }

    #[test]
    fn city_stream_is_deterministic_and_sized() {
        let cfg = small_city();
        let a: Vec<CityTrip> = city_trip_stream(&cfg).collect();
        let b: Vec<CityTrip> = city_trip_stream(&cfg).collect();
        assert_eq!(a.len(), cfg.trips as usize);
        assert_eq!(a, b, "same seed must replay bit-identically");
        let stream = city_trip_stream(&cfg);
        assert_eq!(
            stream.size_hint(),
            (cfg.trips as usize, Some(cfg.trips as usize))
        );
    }

    #[test]
    fn city_stream_injects_dirty_rows_and_skews_demand() {
        let cfg = small_city();
        let trips: Vec<CityTrip> = city_trip_stream(&cfg).collect();
        let max_id = u64::from(cfg.stations);
        let dirty = trips
            .iter()
            .filter(|t| t.src == 0 || t.src > max_id || t.dst > max_id)
            .count();
        // Expected rate is 2% here; allow a generous band.
        let expected = trips.len() * usize::try_from(cfg.dirty_per_10k).unwrap() / 10_000;
        assert!(
            dirty > expected / 2 && dirty < expected * 2,
            "dirty rows {dirty} far from expected {expected}"
        );
        // Heavy-tailed demand: the busiest decile of stations should carry
        // well more than a uniform share of clean trip endpoints.
        let mut counts = vec![0u64; cfg.stations as usize + 1];
        for t in trips.iter().filter(|t| t.src >= 1 && t.src <= max_id) {
            counts[t.src as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top_decile: u64 = counts[..cfg.stations as usize / 10].iter().sum();
        assert!(
            top_decile * 10 > total * 3,
            "top decile carries {top_decile}/{total}; demand looks uniform"
        );
    }

    #[test]
    fn city_trips_env_clamps() {
        let cfg = CityConfig {
            trips: 42,
            ..CityConfig::default()
        };
        // No env set in tests: the config value passes through untouched
        // (the env override itself clamps to `MAX_TRIPS`; exercising it
        // would need process-global env mutation, unsafe under parallel
        // test execution).
        assert_eq!(cfg.trips_from_env().trips, 42);
    }

    #[test]
    fn city_timestamps_stay_inside_window() {
        let cfg = small_city();
        let start = Timestamp::from_ymd_hms(2021, 6, 1, 0, 0, 0).unwrap();
        let end = start.plus_seconds(i64::from(cfg.days) * 86_400);
        for t in city_trip_stream(&cfg) {
            assert!(t.start.unix_seconds() >= start.unix_seconds());
            assert!(t.start.unix_seconds() < end.unix_seconds());
        }
    }
}
