//! Minimal civil-time handling.
//!
//! The temporal graphs `GDay` and `GHour` only need two features of a trip's
//! start time: the **day of the week** and the **hour of the day**. Rather
//! than pull in a date-time crate, this module implements the standard
//! days-from-civil / civil-from-days conversion (Howard Hinnant's
//! algorithms) on top of a plain Unix-seconds timestamp.
//!
//! All timestamps are treated as local (Dublin) wall-clock time; the paper's
//! analysis does not require DST awareness because the features are coarse
//! (weekday, hour).

use crate::{DataError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Days of the week, Monday-first (matching the paper's Fig. 5 ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Monday = 0,
    /// Tuesday.
    Tuesday = 1,
    /// Wednesday.
    Wednesday = 2,
    /// Thursday.
    Thursday = 3,
    /// Friday.
    Friday = 4,
    /// Saturday.
    Saturday = 5,
    /// Sunday.
    Sunday = 6,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Build from an index 0 (Monday) .. 6 (Sunday).
    pub fn from_index(i: u32) -> Option<Weekday> {
        Weekday::ALL.get(i as usize).copied()
    }

    /// Index 0 (Monday) .. 6 (Sunday).
    pub fn index(self) -> u32 {
        self as u32
    }

    /// Whether the day is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Three-letter English abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A timestamp in seconds since the Unix epoch (UTC, treated as Dublin wall
/// clock for feature extraction).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

/// Days from civil date (Hinnant). Valid for all reasonable years.
fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date from days since epoch (Hinnant).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Timestamp {
    /// Build a timestamp from civil date and time-of-day components.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidDate`] for impossible dates; hours/minutes/seconds
    /// are validated as 0–23 / 0–59 / 0–59.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(DataError::InvalidDate { year, month, day });
        }
        if hour > 23 || minute > 59 || second > 59 {
            return Err(DataError::InvalidDate { year, month, day });
        }
        let days = days_from_civil(year, month, day);
        Ok(Timestamp(
            days * 86_400 + i64::from(hour) * 3600 + i64::from(minute) * 60 + i64::from(second),
        ))
    }

    /// Raw seconds since the Unix epoch.
    pub fn unix_seconds(&self) -> i64 {
        self.0
    }

    /// Civil `(year, month, day)`.
    pub fn ymd(&self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(86_400))
    }

    /// Hour of day, 0–23.
    pub fn hour(&self) -> u32 {
        (self.0.rem_euclid(86_400) / 3600) as u32
    }

    /// Minute of hour, 0–59.
    pub fn minute(&self) -> u32 {
        (self.0.rem_euclid(3600) / 60) as u32
    }

    /// Day of week (1970-01-01 was a Thursday).
    pub fn weekday(&self) -> Weekday {
        let days = self.0.div_euclid(86_400);
        // 1970-01-01 = Thursday = index 3 in a Monday-first week.
        let idx = (days + 3).rem_euclid(7) as u32;
        Weekday::from_index(idx).expect("index < 7")
    }

    /// Seconds elapsed from `self` to `other` (negative when `other` is
    /// earlier).
    pub fn seconds_until(&self, other: Timestamp) -> i64 {
        other.0 - self.0
    }

    /// A new timestamp `seconds` later.
    pub fn plus_seconds(&self, seconds: i64) -> Timestamp {
        Timestamp(self.0 + seconds)
    }

    /// ISO-8601-style rendering (`YYYY-MM-DDTHH:MM:SS`).
    pub fn to_iso(&self) -> String {
        let (y, m, d) = self.ymd();
        format!(
            "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}",
            self.hour(),
            self.minute(),
            (self.0.rem_euclid(60)) as u32
        )
    }

    /// Parse an ISO-8601-style `YYYY-MM-DDTHH:MM:SS` (or with a space
    /// separator) string.
    ///
    /// # Errors
    ///
    /// [`DataError::FieldParse`]-style failures are reported as
    /// [`DataError::InvalidDate`] with zeroed components when the shape is
    /// wrong.
    pub fn parse_iso(s: &str) -> Result<Self> {
        let bad = || DataError::InvalidDate {
            year: 0,
            month: 0,
            day: 0,
        };
        let s = s.trim();
        let (date, time) = s
            .split_once('T')
            .or_else(|| s.split_once(' '))
            .ok_or_else(bad)?;
        let mut dp = date.split('-');
        let year: i32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let mut tp = time.split(':');
        let hour: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let minute: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let second: u32 = tp
            .next()
            .map(|v| v.parse().map_err(|_| bad()))
            .transpose()?
            .unwrap_or(0);
        Timestamp::from_ymd_hms(year, month, day, hour, minute, second)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        let t = Timestamp(0);
        assert_eq!(t.weekday(), Weekday::Thursday);
        assert_eq!(t.ymd(), (1970, 1, 1));
        assert_eq!(t.hour(), 0);
    }

    #[test]
    fn known_dates_round_trip() {
        // 2020-01-03 (the dataset's first day) was a Friday.
        let t = Timestamp::from_ymd_hms(2020, 1, 3, 8, 30, 0).unwrap();
        assert_eq!(t.ymd(), (2020, 1, 3));
        assert_eq!(t.weekday(), Weekday::Friday);
        assert_eq!(t.hour(), 8);
        assert_eq!(t.minute(), 30);
        // 2021-09-19 (the dataset's last day) was a Sunday.
        let t2 = Timestamp::from_ymd_hms(2021, 9, 19, 23, 59, 59).unwrap();
        assert_eq!(t2.weekday(), Weekday::Sunday);
        assert_eq!(t2.ymd(), (2021, 9, 19));
    }

    #[test]
    fn leap_year_february() {
        let t = Timestamp::from_ymd_hms(2020, 2, 29, 0, 0, 0).unwrap();
        assert_eq!(t.ymd(), (2020, 2, 29));
        assert!(Timestamp::from_ymd_hms(2021, 2, 29, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(1900, 2, 29, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2000, 2, 29, 0, 0, 0).is_ok());
    }

    #[test]
    fn rejects_invalid_components() {
        assert!(Timestamp::from_ymd_hms(2020, 13, 1, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 0, 1, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 31, 0, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 24, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hms(2020, 4, 30, 0, 60, 0).is_err());
    }

    #[test]
    fn weekday_progression() {
        let mon = Timestamp::from_ymd_hms(2021, 6, 14, 12, 0, 0).unwrap(); // a Monday
        for (offset, want) in Weekday::ALL.iter().enumerate() {
            let t = mon.plus_seconds(offset as i64 * 86_400);
            assert_eq!(t.weekday(), *want);
        }
    }

    #[test]
    fn weekend_detection() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        assert!(!Weekday::Friday.is_weekend());
        assert!(!Weekday::Monday.is_weekend());
    }

    #[test]
    fn iso_rendering_and_parsing_round_trip() {
        let t = Timestamp::from_ymd_hms(2021, 3, 7, 9, 5, 2).unwrap();
        assert_eq!(t.to_iso(), "2021-03-07T09:05:02");
        assert_eq!(Timestamp::parse_iso("2021-03-07T09:05:02").unwrap(), t);
        assert_eq!(Timestamp::parse_iso("2021-03-07 09:05:02").unwrap(), t);
        // Seconds optional.
        let t2 = Timestamp::parse_iso("2021-03-07T09:05").unwrap();
        assert_eq!(t2.hour(), 9);
        assert_eq!(t2.minute(), 5);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Timestamp::parse_iso("not a date").is_err());
        assert!(Timestamp::parse_iso("2021-13-07T09:05:02").is_err());
        assert!(Timestamp::parse_iso("2021-03-07").is_err());
        assert!(Timestamp::parse_iso("").is_err());
    }

    #[test]
    fn pre_epoch_dates_work() {
        let t = Timestamp::from_ymd_hms(1969, 12, 31, 23, 0, 0).unwrap();
        assert!(t.0 < 0);
        assert_eq!(t.ymd(), (1969, 12, 31));
        assert_eq!(t.hour(), 23);
        assert_eq!(t.weekday(), Weekday::Wednesday);
    }

    #[test]
    fn seconds_until_and_plus() {
        let a = Timestamp::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap();
        let b = a.plus_seconds(3600);
        assert_eq!(a.seconds_until(b), 3600);
        assert_eq!(b.seconds_until(a), -3600);
        assert_eq!(b.hour(), 1);
    }

    #[test]
    fn weekday_from_index_bounds() {
        assert_eq!(Weekday::from_index(0), Some(Weekday::Monday));
        assert_eq!(Weekday::from_index(6), Some(Weekday::Sunday));
        assert_eq!(Weekday::from_index(7), None);
        assert_eq!(Weekday::Sunday.index(), 6);
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(Weekday::Monday.to_string(), "Mon");
        assert_eq!(Weekday::Sunday.to_string(), "Sun");
        let t = Timestamp::from_ymd_hms(2020, 5, 1, 1, 2, 3).unwrap();
        assert_eq!(t.to_string(), "2020-05-01T01:02:03");
    }
}
