//! Out-of-core trip spooling for the city-scale streaming arm.
//!
//! [`TripSpool`] is the disk-backed counterpart of
//! [`TripTable`](crate::trips::TripTable): cleaned city trips land in a
//! flat columnar run file instead of in-memory columns, so the streaming
//! cleaner ([`clean_trip_stream_spooled`]) holds only the station table
//! and a write buffer no matter how many rows the generator yields. The
//! graph layer's spilled construction then replays the spool — as many
//! passes as it needs — through [`TripSpool::for_each`].
//!
//! ## Record format
//!
//! 10 bytes per trip, little endian, no header:
//!
//! ```text
//! src u32 | dst u32 | day u8 | hour u8
//! ```
//!
//! `src`/`dst` are dense indices into the spool's sorted station table;
//! `day`/`hour` are the temporal keys derived at push time via the same
//! function every [`TripTable`](crate::trips::TripTable) path uses.
//! City trips are unit-weight, so no weight column is stored — replay
//! yields rows in exact insertion order, which is what lets a
//! spool-built graph reproduce a table-built graph bit for bit.
//!
//! The spool directory (`moby-spool-{pid}-{seq}` under the chosen base)
//! is removed when the [`TripSpool`] drops — success, early return and
//! panic unwind alike.
//!
//! [`clean_trip_stream_spooled`]: crate::clean::clean_trip_stream_spooled

use crate::timeparse::Timestamp;
use crate::trips::{temporal_keys, StationNodeId};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per spooled trip record (`src u32 | dst u32 | day u8 | hour u8`).
pub const TRIP_RECORD_BYTES: usize = 10;

/// Monotone suffix so concurrent spools in one process never collide.
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A disk-backed columnar run of cleaned, interned trips — the
/// out-of-core stand-in for [`TripTable`](crate::trips::TripTable) on
/// the streaming city arm. See the [module docs](self).
#[derive(Debug)]
pub struct TripSpool {
    dir: PathBuf,
    path: PathBuf,
    station_ids: Vec<StationNodeId>,
    /// Open only while filling; [`TripSpool::finish`] drops it.
    writer: Option<BufWriter<File>>,
    /// First write error, latched; push stays infallible and the error
    /// surfaces at [`TripSpool::finish`].
    err: Option<io::Error>,
    rows: u64,
}

impl TripSpool {
    /// Create an empty spool over a **sorted** station table, backed by
    /// a fresh private directory under `base` (default: the system temp
    /// dir). Fails with a clear [`io::Error`] when the base is not
    /// writable.
    pub fn create(station_ids: Vec<StationNodeId>, base: Option<&Path>) -> io::Result<TripSpool> {
        debug_assert!(
            station_ids.windows(2).all(|w| w[0] < w[1]),
            "station table must be sorted and unique"
        );
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "moby-spool-{}-{}",
            std::process::id(),
            SPOOL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating spool dir {}: {e}", dir.display()),
            )
        })?;
        let path = dir.join("trips.bin");
        let file = File::create(&path).map_err(|e| {
            let msg = format!("creating spool run {}: {e}", path.display());
            std::fs::remove_dir_all(&dir).ok();
            io::Error::new(e.kind(), msg)
        })?;
        Ok(TripSpool {
            dir,
            path,
            station_ids,
            writer: Some(BufWriter::with_capacity(1 << 16, file)),
            err: None,
            rows: 0,
        })
    }

    /// Append one interned trip, deriving its temporal keys from the
    /// start time exactly like
    /// [`TripTable::push`](crate::trips::TripTable::push). Infallible:
    /// the first write error latches and surfaces at
    /// [`TripSpool::finish`].
    pub fn push(&mut self, src: u32, dst: u32, start: Timestamp) {
        let (day, hour) = temporal_keys(start);
        self.push_keyed(src, dst, day, hour);
    }

    /// Append one interned trip with pre-derived temporal keys.
    pub fn push_keyed(&mut self, src: u32, dst: u32, day: u8, hour: u8) {
        if self.err.is_some() {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            self.err = Some(io::Error::other("push after TripSpool::finish"));
            return;
        };
        let mut rec = [0u8; TRIP_RECORD_BYTES];
        rec[0..4].copy_from_slice(&src.to_le_bytes());
        rec[4..8].copy_from_slice(&dst.to_le_bytes());
        rec[8] = day;
        rec[9] = hour;
        if let Err(e) = writer.write_all(&rec) {
            self.err = Some(io::Error::new(
                e.kind(),
                format!("writing spool run {}: {e}", self.path.display()),
            ));
            return;
        }
        self.rows += 1;
    }

    /// Flush and seal the spool for replay. Returns the first latched
    /// write error, if any — the one fallible point of the fill phase.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            self.writer = None;
            return Err(e);
        }
        if let Some(mut w) = self.writer.take() {
            w.flush().map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("flushing spool run {}: {e}", self.path.display()),
                )
            })?;
        }
        Ok(())
    }

    /// Number of trips spooled so far.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// Whether the spool holds no trips.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The sorted station table the dense indices refer to.
    pub fn station_ids(&self) -> &[StationNodeId] {
        &self.station_ids
    }

    /// Replay every spooled trip as `(src, dst, day, hour)` in exact
    /// insertion order, streaming from disk through a buffered reader.
    /// Callable any number of times after [`TripSpool::finish`].
    pub fn for_each(&self, f: &mut dyn FnMut(u32, u32, u8, u8)) -> io::Result<()> {
        let ctx = |e: io::Error| {
            io::Error::new(
                e.kind(),
                format!("reading spool run {}: {e}", self.path.display()),
            )
        };
        let file = File::open(&self.path).map_err(ctx)?;
        let mut reader = BufReader::with_capacity(1 << 16, file);
        let mut rec = [0u8; TRIP_RECORD_BYTES];
        for _ in 0..self.rows {
            reader.read_exact(&mut rec).map_err(ctx)?;
            let src = u32::from_le_bytes(rec[0..4].try_into().expect("4-byte slice"));
            let dst = u32::from_le_bytes(rec[4..8].try_into().expect("4-byte slice"));
            f(src, dst, rec[8], rec[9]);
        }
        Ok(())
    }
}

impl Drop for TripSpool {
    fn drop(&mut self) {
        // Best effort: the run lives in our private directory, so a
        // failed removal only leaks temp files, never corrupts state.
        self.writer = None;
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(day: u32, h: u32) -> Timestamp {
        Timestamp::from_ymd_hms(2021, 6, day, h, 0, 0).unwrap()
    }

    #[test]
    fn round_trips_rows_in_insertion_order() {
        let mut spool = TripSpool::create(vec![1, 2, 3], None).unwrap();
        spool.push(0, 1, ts(1, 8)); // 2021-06-01 is a Tuesday
        spool.push(2, 2, ts(2, 17));
        spool.push_keyed(1, 0, 6, 23);
        spool.finish().unwrap();
        assert_eq!(spool.len(), 3);
        let mut rows = Vec::new();
        spool
            .for_each(&mut |s, d, day, hour| rows.push((s, d, day, hour)))
            .unwrap();
        assert_eq!(rows, vec![(0, 1, 1, 8), (2, 2, 2, 17), (1, 0, 6, 23)]);
        // Replay is repeatable.
        let mut again = 0usize;
        spool.for_each(&mut |_, _, _, _| again += 1).unwrap();
        assert_eq!(again, 3);
    }

    #[test]
    fn spool_dir_is_removed_on_drop() {
        let dir;
        {
            let mut spool = TripSpool::create(vec![1, 2], None).unwrap();
            spool.push_keyed(0, 1, 0, 0);
            spool.finish().unwrap();
            dir = spool.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spool dir should be removed on drop");
    }

    #[test]
    fn spool_dir_is_removed_on_panic_unwind() {
        use std::sync::Mutex;
        let cell: Mutex<PathBuf> = Mutex::new(PathBuf::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let spool = TripSpool::create(vec![1], None).unwrap();
            *cell.lock().unwrap() = spool.dir.clone();
            panic!("boom");
        }));
        assert!(result.is_err());
        let dir = cell.lock().unwrap().clone();
        assert!(!dir.exists(), "spool dir should be removed on unwind");
    }

    #[test]
    fn unwritable_base_is_a_clear_error() {
        let file = std::env::temp_dir().join(format!("moby-spool-test-f-{}", std::process::id()));
        std::fs::write(&file, b"not a dir").unwrap();
        let err = TripSpool::create(vec![1], Some(&file.join("sub"))).unwrap_err();
        assert!(
            err.to_string().contains("spool dir"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn temporal_keys_match_trip_table() {
        // The spool and the table must derive identical keys, or a
        // spool-built GDay/GHour would diverge from a table-built one.
        let mut table = crate::trips::TripTable::new(vec![10, 20]);
        let mut spool = TripSpool::create(vec![10, 20], None).unwrap();
        for (i, &(day, h)) in [(1u32, 0u32), (6, 12), (7, 23), (28, 4)].iter().enumerate() {
            let start = ts(day, h);
            let (s, d) = ((i % 2) as u32, ((i + 1) % 2) as u32);
            table.push(s, d, start);
            spool.push(s, d, start);
        }
        spool.finish().unwrap();
        let mut k = 0usize;
        spool
            .for_each(&mut |s, d, day, hour| {
                assert_eq!(s, table.src()[k]);
                assert_eq!(d, table.dst()[k]);
                assert_eq!(day, table.day()[k]);
                assert_eq!(hour, table.hour()[k]);
                k += 1;
            })
            .unwrap();
        assert_eq!(k, table.len());
    }
}
