//! The columnar trip table — struct-of-arrays trips for hashmap-free
//! graph construction.
//!
//! Cleaning produces row-of-structs [`Rental`](crate::schema::Rental)
//! records; the graph layer
//! wants columns. [`TripTable`] is the bridge: each trip is one row of
//!
//! * `src` / `dst` — the endpoint stations as dense `u32` indices into a
//!   **shared, sorted station-intern table** (one table for every graph
//!   built from the trips, so `GBasic`/`GDay`/`GHour` never re-derive the
//!   id space);
//! * `day` / `hour` — the start-time keys the temporal graphs layer by
//!   (weekday 0–6 Monday-first, hour 0–23), computed once at table build;
//! * `weight` — the trip's edge weight (1.0 for a plain rental).
//!
//! Station interning happens by **binary search over the sorted id
//! table** — the hot per-trip path performs zero hash-map operations.
//! One linear pass over these columns feeds the edge lists of every graph
//! granularity (see `moby_core::temporal`), which is what replaced the
//! per-granularity re-scans of the property store.

use crate::schema::CleanDataset;
use crate::timeparse::Timestamp;

/// External station identifier (matches the graph layer's `NodeId`).
pub type StationNodeId = u64;

/// A struct-of-arrays table of station-to-station trips. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TripTable {
    /// Sorted external station ids; dense index = position.
    station_ids: Vec<StationNodeId>,
    src: Vec<u32>,
    dst: Vec<u32>,
    day: Vec<u8>,
    hour: Vec<u8>,
    weight: Vec<f64>,
}

impl TripTable {
    /// An empty table over the given station set. Ids are sorted and
    /// deduplicated; the sorted order defines the dense index space.
    pub fn new(mut station_ids: Vec<StationNodeId>) -> TripTable {
        station_ids.sort_unstable();
        station_ids.dedup();
        assert!(
            station_ids.len() <= u32::MAX as usize,
            "station index space is u32"
        );
        TripTable {
            station_ids,
            ..TripTable::default()
        }
    }

    /// Number of trips.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the table holds no trips.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Number of interned stations.
    pub fn station_count(&self) -> usize {
        self.station_ids.len()
    }

    /// The sorted external station ids (dense index = position).
    pub fn station_ids(&self) -> &[StationNodeId] {
        &self.station_ids
    }

    /// The dense index of an external station id (binary search — no hash
    /// map anywhere on this path).
    #[inline]
    pub fn station_index(&self, id: StationNodeId) -> Option<u32> {
        self.station_ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The external station id at a dense index.
    #[inline]
    pub fn station_id(&self, index: u32) -> StationNodeId {
        self.station_ids[index as usize]
    }

    /// Append a unit-weight trip between two dense station indices,
    /// deriving the temporal keys from the start time.
    #[inline]
    pub fn push(&mut self, src: u32, dst: u32, start: Timestamp) {
        self.push_weighted(src, dst, start, 1.0);
    }

    /// Append a weighted trip between two dense station indices.
    ///
    /// Non-finite or negative weights are ignored with a debug assertion,
    /// the same boundary convention as the graph builders — so the table
    /// always satisfies the columnar build path's validated-weights
    /// contract.
    pub fn push_weighted(&mut self, src: u32, dst: u32, start: Timestamp, weight: f64) {
        debug_assert!((src as usize) < self.station_ids.len());
        debug_assert!((dst as usize) < self.station_ids.len());
        debug_assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid weight {weight}"
        );
        if !weight.is_finite() || weight < 0.0 {
            return;
        }
        self.src.push(src);
        self.dst.push(dst);
        self.day.push(start.weekday().index() as u8);
        self.hour.push(start.hour() as u8);
        self.weight.push(weight);
    }

    /// Source station column (dense indices).
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination station column (dense indices).
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Weekday-of-start column (0–6, Monday first).
    pub fn day(&self) -> &[u8] {
        &self.day
    }

    /// Hour-of-start column (0–23).
    pub fn hour(&self) -> &[u8] {
        &self.hour
    }

    /// Edge-weight column.
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// Iterate over the trips as `(src_station_id, dst_station_id, weight)`
    /// external-id triples in insertion order — the edge list of the
    /// station-level trip graph, ready for a CSR builder.
    pub fn station_edges(&self) -> impl Iterator<Item = (StationNodeId, StationNodeId, f64)> + '_ {
        (0..self.len()).map(move |k| {
            (
                self.station_ids[self.src[k] as usize],
                self.station_ids[self.dst[k] as usize],
                self.weight[k],
            )
        })
    }

    /// Build a station-level trip table straight from a cleaned dataset,
    /// using the `Location → Station` references the cleaning pipeline
    /// validated: a trip contributes a row when **both** endpoints resolve
    /// to a fixed station; dockless-endpoint trips are skipped (the
    /// expansion pipeline instead builds its table against the expanded
    /// station set after reassignment, in `moby_core`).
    pub fn from_clean_dataset(dataset: &CleanDataset) -> TripTable {
        let mut table = TripTable::new(dataset.stations.iter().map(|s| s.id).collect());
        // Sorted (location id, station dense index) pairs: per-trip lookup
        // is a binary search, never a hash probe.
        let mut location_station: Vec<(u64, u32)> = dataset
            .locations
            .iter()
            .filter_map(|l| {
                let station = l.station_id?;
                Some((l.id, table.station_index(station)?))
            })
            .collect();
        location_station.sort_unstable();
        let resolve = |loc: u64| -> Option<u32> {
            location_station
                .binary_search_by_key(&loc, |&(l, _)| l)
                .ok()
                .map(|at| location_station[at].1)
        };
        for r in &dataset.rentals {
            let (Some(src), Some(dst)) =
                (resolve(r.rental_location_id), resolve(r.return_location_id))
            else {
                continue;
            };
            table.push(src, dst, r.start_time);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Location, Rental, Station};
    use moby_geo::GeoPoint;

    fn ts(day: u32, hour: u32) -> Timestamp {
        // 2020-06-01 is a Monday.
        Timestamp::from_ymd_hms(2020, 6, day, hour, 0, 0).unwrap()
    }

    #[test]
    fn interning_is_sorted_and_deduplicated() {
        let t = TripTable::new(vec![30, 10, 20, 10]);
        assert_eq!(t.station_ids(), &[10, 20, 30]);
        assert_eq!(t.station_count(), 3);
        assert_eq!(t.station_index(20), Some(1));
        assert_eq!(t.station_index(99), None);
        assert_eq!(t.station_id(2), 30);
    }

    #[test]
    fn push_derives_temporal_keys() {
        let mut t = TripTable::new(vec![1, 2]);
        t.push(0, 1, ts(1, 8)); // Monday 08:00
        t.push(1, 0, ts(6, 17)); // Saturday 17:00
        t.push_weighted(0, 0, ts(7, 12), 2.5); // Sunday noon self-loop
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.src(), &[0, 1, 0]);
        assert_eq!(t.dst(), &[1, 0, 0]);
        assert_eq!(t.day(), &[0, 5, 6]);
        assert_eq!(t.hour(), &[8, 17, 12]);
        assert_eq!(t.weights(), &[1.0, 1.0, 2.5]);
    }

    #[test]
    fn station_edges_yield_external_ids_in_order() {
        let mut t = TripTable::new(vec![10, 20]);
        t.push(0, 1, ts(1, 8));
        t.push(1, 1, ts(2, 9));
        let edges: Vec<_> = t.station_edges().collect();
        assert_eq!(edges, vec![(10, 20, 1.0), (20, 20, 1.0)]);
    }

    #[test]
    fn from_clean_dataset_resolves_station_endpoints() {
        let pos = GeoPoint::new(53.35, -6.26).unwrap();
        let dataset = CleanDataset {
            stations: vec![
                Station {
                    id: 7,
                    name: "A".into(),
                    position: pos,
                },
                Station {
                    id: 3,
                    name: "B".into(),
                    position: pos,
                },
            ],
            locations: vec![
                Location {
                    id: 100,
                    position: pos,
                    station_id: Some(7),
                },
                Location {
                    id: 101,
                    position: pos,
                    station_id: Some(3),
                },
                Location {
                    id: 102,
                    position: pos,
                    station_id: None, // dockless
                },
            ],
            rentals: vec![
                Rental {
                    id: 1,
                    bike_id: 1,
                    start_time: ts(1, 8),
                    end_time: ts(1, 9),
                    rental_location_id: 100,
                    return_location_id: 101,
                },
                Rental {
                    id: 2,
                    bike_id: 1,
                    start_time: ts(2, 10),
                    end_time: ts(2, 11),
                    rental_location_id: 100,
                    return_location_id: 102, // dockless endpoint: skipped
                },
            ],
        };
        let t = TripTable::from_clean_dataset(&dataset);
        assert_eq!(t.station_ids(), &[3, 7]);
        assert_eq!(t.len(), 1);
        // Station 7 has dense index 1, station 3 dense index 0.
        assert_eq!(t.src(), &[1]);
        assert_eq!(t.dst(), &[0]);
    }
}
