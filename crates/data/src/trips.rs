//! The columnar trip table — struct-of-arrays trips for hashmap-free
//! graph construction.
//!
//! Cleaning produces row-of-structs [`Rental`](crate::schema::Rental)
//! records; the graph layer
//! wants columns. [`TripTable`] is the bridge: each trip is one row of
//!
//! * `src` / `dst` — the endpoint stations as dense `u32` indices into a
//!   **shared, sorted station-intern table** (one table for every graph
//!   built from the trips, so `GBasic`/`GDay`/`GHour` never re-derive the
//!   id space);
//! * `day` / `hour` — the start-time keys the temporal graphs layer by
//!   (weekday 0–6 Monday-first, hour 0–23), computed once at table build;
//! * `weight` — the trip's edge weight (1.0 for a plain rental).
//!
//! Station interning happens by **binary search over the sorted id
//! table** — the hot per-trip path performs zero hash-map operations.
//! One linear pass over these columns feeds the edge lists of every graph
//! granularity (see `moby_core::temporal`), which is what replaced the
//! per-granularity re-scans of the property store.

use crate::schema::CleanDataset;
use crate::timeparse::Timestamp;

/// External station identifier (matches the graph layer's `NodeId`).
pub type StationNodeId = u64;

/// Whether a weight satisfies the columnar build path's validated-weights
/// contract (finite and non-negative) — the single predicate every trip
/// push path shares.
#[inline]
fn valid_weight(weight: f64) -> bool {
    weight.is_finite() && weight >= 0.0
}

/// Derive a trip's temporal keys (weekday 0–6 Monday-first, hour 0–23)
/// from its start time. Shared by [`TripTable`], [`TripBatch`] and the
/// out-of-core [`TripSpool`](crate::spool::TripSpool) pushes, so a
/// spooled or appended table is indistinguishable from one built in a
/// single pass — the delta and spill equivalence contracts lean on this.
#[inline]
pub(crate) fn temporal_keys(start: Timestamp) -> (u8, u8) {
    (start.weekday().index() as u8, start.hour() as u8)
}

/// A batch of not-yet-interned trips, addressed by **external** station
/// ids — the unit of streaming ingestion. Collect incoming trips here,
/// then extend a [`TripTable`] with [`TripTable::append_batch`]; the
/// temporal keys are derived once at push time, exactly like the table's
/// own push path, so an appended table is indistinguishable from one
/// built in a single pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TripBatch {
    src: Vec<StationNodeId>,
    dst: Vec<StationNodeId>,
    day: Vec<u8>,
    hour: Vec<u8>,
    weight: Vec<f64>,
}

impl TripBatch {
    /// An empty batch.
    pub fn new() -> TripBatch {
        TripBatch::default()
    }

    /// An empty batch with capacity pre-reserved for `rows` trips — the
    /// row-count-hint entry for feeds that know their batch size.
    pub fn with_capacity(rows: usize) -> TripBatch {
        let mut b = TripBatch::new();
        b.reserve(rows);
        b
    }

    /// Reserve capacity for at least `additional` more trips across all
    /// five columns.
    pub fn reserve(&mut self, additional: usize) {
        self.src.reserve(additional);
        self.dst.reserve(additional);
        self.day.reserve(additional);
        self.hour.reserve(additional);
        self.weight.reserve(additional);
    }

    /// Number of trips in the batch.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the batch holds no trips.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Append a unit-weight trip between two external station ids.
    #[inline]
    pub fn push(&mut self, src: StationNodeId, dst: StationNodeId, start: Timestamp) {
        self.push_weighted(src, dst, start, 1.0);
    }

    /// Append a weighted trip between two external station ids.
    ///
    /// Non-finite or negative weights are silently dropped — the batch is
    /// the external ingestion boundary, so it enforces the validated
    /// -weights contract the columnar build path relies on (the same
    /// convention as `CsrBuilder::push` in the graph layer).
    pub fn push_weighted(
        &mut self,
        src: StationNodeId,
        dst: StationNodeId,
        start: Timestamp,
        weight: f64,
    ) {
        let (day, hour) = temporal_keys(start);
        self.push_keyed(src, dst, day, hour, weight);
    }

    /// Append a trip whose temporal keys are **already derived** — the
    /// replay entry for sources that carry `(day, hour)` columns rather
    /// than timestamps (trip-table replays, sharded ingest feeds,
    /// benchmarks). `day` is the Monday-first weekday index (0–6),
    /// `hour` the start hour (0–23); weights follow the same
    /// validated-weights convention as [`TripBatch::push_weighted`].
    ///
    /// # Panics
    ///
    /// If a key is out of range.
    pub fn push_keyed(
        &mut self,
        src: StationNodeId,
        dst: StationNodeId,
        day: u8,
        hour: u8,
        weight: f64,
    ) {
        assert!(day < 7 && hour < 24, "temporal keys out of range");
        if !valid_weight(weight) {
            return;
        }
        self.src.push(src);
        self.dst.push(dst);
        self.day.push(day);
        self.hour.push(hour);
        self.weight.push(weight);
    }

    /// Iterate over the batch as
    /// `(src_station_id, dst_station_id, day, hour, weight)` rows in
    /// insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (StationNodeId, StationNodeId, u8, u8, f64)> + '_ {
        (0..self.len()).map(move |k| {
            (
                self.src[k],
                self.dst[k],
                self.day[k],
                self.hour[k],
                self.weight[k],
            )
        })
    }

    /// The distinct station ids the batch references, sorted.
    pub fn station_ids(&self) -> Vec<StationNodeId> {
        let mut ids: Vec<StationNodeId> = self.src.iter().chain(&self.dst).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// The inclusive start of a weekly sliding window, keyed on the trip
/// columns' `(day, hour)` pair — the windowed-eviction analogue of a
/// timestamp cutoff for a table that stores weekday/hour keys rather
/// than absolute times. Rows whose slot (`day * 24 + hour`) sorts
/// strictly before the window start are expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStart {
    day: u8,
    hour: u8,
}

impl WindowStart {
    /// A window starting at the given Monday-first weekday (0–6) and
    /// hour (0–23).
    ///
    /// # Panics
    ///
    /// If a key is out of range (same contract as the push paths).
    pub fn new(day: u8, hour: u8) -> WindowStart {
        assert!(day < 7 && hour < 24, "temporal keys out of range");
        WindowStart { day, hour }
    }

    /// The window's weekday key (0–6, Monday first).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// The window's hour key (0–23).
    pub fn hour(&self) -> u8 {
        self.hour
    }

    /// The linear weekly slot (`day * 24 + hour`, 0–167) rows are
    /// compared against.
    #[inline]
    pub fn slot(&self) -> u16 {
        self.day as u16 * 24 + self.hour as u16
    }

    /// Whether a trip with the given keys survives this window
    /// (`slot >= window start`).
    #[inline]
    pub fn keeps(&self, day: u8, hour: u8) -> bool {
        day as u16 * 24 + hour as u16 >= self.slot()
    }
}

/// What [`TripTable::evict_before`] removed from the table — the
/// subtraction-side mirror of [`AppendOutcome`]. Downstream incremental
/// consumers (the graph layer's `CsrEvict`) need the expired rows
/// themselves (their endpoints name the CSR rows whose merged weights
/// must be re-folded) and the station-compaction remap.
///
/// Evicted endpoints are reported as **external** station ids: after a
/// compacting evict the old dense index space no longer exists, and
/// every downstream graph (station-level or temporal-layered) can
/// resolve an external id against its own node table.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictOutcome {
    /// Source stations of the evicted rows (external ids, original row
    /// order).
    pub evicted_src: Vec<StationNodeId>,
    /// Destination stations of the evicted rows (external ids, original
    /// row order).
    pub evicted_dst: Vec<StationNodeId>,
    /// Weekday keys of the evicted rows.
    pub evicted_day: Vec<u8>,
    /// Hour keys of the evicted rows.
    pub evicted_hour: Vec<u8>,
    /// Weights of the evicted rows.
    pub evicted_weight: Vec<f64>,
    /// For each dense station index of the **compacted** table, its
    /// index in the old table — strictly increasing (the compacted id
    /// list is a sorted subset of the old sorted list). `None` when the
    /// intern table is unchanged (no station was dropped, or the evict
    /// was pinned).
    pub new_to_old: Option<Vec<u32>>,
    /// External ids of the stations compaction dropped, sorted.
    pub removed_stations: Vec<StationNodeId>,
}

impl EvictOutcome {
    /// Number of rows the evict dropped.
    pub fn evicted_rows(&self) -> usize {
        self.evicted_src.len()
    }

    /// Whether the evict changed nothing (no rows dropped — and hence no
    /// stations either).
    pub fn is_noop(&self) -> bool {
        self.evicted_src.is_empty()
    }

    /// The distinct stations incident to an evicted row, sorted —
    /// exactly the CSR rows whose merged weights are no longer a fold
    /// prefix of a rebuild and must be re-folded from surviving rows.
    pub fn touched_stations(&self) -> Vec<StationNodeId> {
        let mut ids: Vec<StationNodeId> = self
            .evicted_src
            .iter()
            .chain(&self.evicted_dst)
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// What [`TripTable::append_batch`] did to the table — everything a
/// downstream incremental consumer (the graph layer's `CsrDelta`) needs
/// to mirror the update without re-reading untouched rows.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendOutcome {
    /// Row index where the appended batch begins (the table's length
    /// before the append); the batch occupies `batch_start..table.len()`.
    pub batch_start: usize,
    /// For each **old** dense station index, its index in the extended
    /// table — strictly increasing. `None` when the batch introduced no
    /// new stations (old indices are unchanged).
    pub old_to_new: Option<Vec<u32>>,
    /// External ids of the stations this batch newly interned, sorted.
    pub new_stations: Vec<StationNodeId>,
}

/// A struct-of-arrays table of station-to-station trips. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TripTable {
    /// Sorted external station ids; dense index = position.
    station_ids: Vec<StationNodeId>,
    src: Vec<u32>,
    dst: Vec<u32>,
    day: Vec<u8>,
    hour: Vec<u8>,
    weight: Vec<f64>,
}

impl TripTable {
    /// An empty table over the given station set. Ids are sorted and
    /// deduplicated; the sorted order defines the dense index space.
    pub fn new(mut station_ids: Vec<StationNodeId>) -> TripTable {
        station_ids.sort_unstable();
        station_ids.dedup();
        assert!(
            station_ids.len() <= u32::MAX as usize,
            "station index space is u32"
        );
        TripTable {
            station_ids,
            ..TripTable::default()
        }
    }

    /// An empty table over the given station set with capacity
    /// pre-reserved for `rows` trips — the row-count-hint entry loaders
    /// and generators use so multi-million-row ingests never pay realloc
    /// churn on the five trip columns.
    pub fn with_capacity(station_ids: Vec<StationNodeId>, rows: usize) -> TripTable {
        let mut t = TripTable::new(station_ids);
        t.reserve(rows);
        t
    }

    /// Reserve capacity for at least `additional` more trips across all
    /// five columns.
    pub fn reserve(&mut self, additional: usize) {
        self.src.reserve(additional);
        self.dst.reserve(additional);
        self.day.reserve(additional);
        self.hour.reserve(additional);
        self.weight.reserve(additional);
    }

    /// Number of trips.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the table holds no trips.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Number of interned stations.
    pub fn station_count(&self) -> usize {
        self.station_ids.len()
    }

    /// The sorted external station ids (dense index = position).
    pub fn station_ids(&self) -> &[StationNodeId] {
        &self.station_ids
    }

    /// The dense index of an external station id (binary search — no hash
    /// map anywhere on this path).
    #[inline]
    pub fn station_index(&self, id: StationNodeId) -> Option<u32> {
        self.station_ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The external station id at a dense index.
    #[inline]
    pub fn station_id(&self, index: u32) -> StationNodeId {
        self.station_ids[index as usize]
    }

    /// Append a unit-weight trip between two dense station indices,
    /// deriving the temporal keys from the start time.
    #[inline]
    pub fn push(&mut self, src: u32, dst: u32, start: Timestamp) {
        self.push_weighted(src, dst, start, 1.0);
    }

    /// Append a weighted trip between two dense station indices.
    ///
    /// Non-finite or negative weights are ignored with a debug assertion,
    /// the same boundary convention as the graph builders — so the table
    /// always satisfies the columnar build path's validated-weights
    /// contract.
    pub fn push_weighted(&mut self, src: u32, dst: u32, start: Timestamp, weight: f64) {
        debug_assert!(valid_weight(weight), "invalid weight {weight}");
        let (day, hour) = temporal_keys(start);
        self.push_keyed(src, dst, day, hour, weight);
    }

    /// Append a trip whose temporal keys are **already derived**
    /// (Monday-first weekday 0–6, hour 0–23) — the replay entry for
    /// columnar sources; [`TripTable::push_weighted`] is this plus the
    /// key derivation. Invalid weights are ignored, as there.
    ///
    /// # Panics
    ///
    /// If a key is out of range.
    pub fn push_keyed(&mut self, src: u32, dst: u32, day: u8, hour: u8, weight: f64) {
        debug_assert!((src as usize) < self.station_ids.len());
        debug_assert!((dst as usize) < self.station_ids.len());
        assert!(day < 7 && hour < 24, "temporal keys out of range");
        if !valid_weight(weight) {
            return;
        }
        self.src.push(src);
        self.dst.push(dst);
        self.day.push(day);
        self.hour.push(hour);
        self.weight.push(weight);
    }

    /// Source station column (dense indices).
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination station column (dense indices).
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Weekday-of-start column (0–6, Monday first).
    pub fn day(&self) -> &[u8] {
        &self.day
    }

    /// Hour-of-start column (0–23).
    pub fn hour(&self) -> &[u8] {
        &self.hour
    }

    /// Edge-weight column.
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// Iterate over the trips as `(src_station_id, dst_station_id, weight)`
    /// external-id triples in insertion order — the edge list of the
    /// station-level trip graph, ready for a CSR builder.
    pub fn station_edges(&self) -> impl Iterator<Item = (StationNodeId, StationNodeId, f64)> + '_ {
        (0..self.len()).map(move |k| {
            (
                self.station_ids[self.src[k] as usize],
                self.station_ids[self.dst[k] as usize],
                self.weight[k],
            )
        })
    }

    /// Append a [`TripBatch`], extending the sorted station-intern table
    /// in place — the streaming-ingestion entry point.
    ///
    /// Station ids the table has never seen are merged into the sorted
    /// intern table; because the table is sorted, new ids can land
    /// *between* old ones, shifting old dense indices. The shift is a
    /// **monotone remap** applied to the existing `src`/`dst` columns in
    /// one linear pass (an array lookup per endpoint — old endpoints are
    /// never re-interned by search). Batch endpoints then intern by
    /// binary search over the extended table and the rows are appended.
    ///
    /// The resulting table is **identical** to one built from scratch
    /// over the union station set with all rows pushed in order — the
    /// delta machinery's differential suite asserts this per batch.
    /// Returns the [`AppendOutcome`] describing the append (row offset,
    /// index remap, newly interned stations).
    pub fn append_batch(&mut self, batch: &TripBatch) -> AppendOutcome {
        // --- New station ids: everything not in the sorted table. ---
        let mut new_stations: Vec<StationNodeId> = batch
            .src
            .iter()
            .chain(&batch.dst)
            .copied()
            .filter(|&id| self.station_index(id).is_none())
            .collect();
        new_stations.sort_unstable();
        new_stations.dedup();

        let old_to_new = if new_stations.is_empty() {
            None
        } else {
            // Merge the two sorted id lists, recording where each old
            // dense index lands in the merged table.
            let merged_len = self.station_ids.len() + new_stations.len();
            assert!(
                merged_len <= u32::MAX as usize,
                "station index space is u32"
            );
            let mut merged = Vec::with_capacity(merged_len);
            let mut map = Vec::with_capacity(self.station_ids.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < self.station_ids.len() || j < new_stations.len() {
                if j >= new_stations.len()
                    || (i < self.station_ids.len() && self.station_ids[i] < new_stations[j])
                {
                    map.push(merged.len() as u32);
                    merged.push(self.station_ids[i]);
                    i += 1;
                } else {
                    merged.push(new_stations[j]);
                    j += 1;
                }
            }
            self.station_ids = merged;
            // Shift the existing endpoint columns through the remap: one
            // linear pass, no per-endpoint search.
            for v in &mut self.src {
                *v = map[*v as usize];
            }
            for v in &mut self.dst {
                *v = map[*v as usize];
            }
            Some(map)
        };

        // --- Append the batch rows over the extended table. ---
        let batch_start = self.len();
        self.reserve(batch.len());
        for k in 0..batch.len() {
            let s = self
                .station_index(batch.src[k])
                .expect("batch endpoint interned");
            let d = self
                .station_index(batch.dst[k])
                .expect("batch endpoint interned");
            self.src.push(s);
            self.dst.push(d);
            self.day.push(batch.day[k]);
            self.hour.push(batch.hour[k]);
            self.weight.push(batch.weight[k]);
        }
        AppendOutcome {
            batch_start,
            old_to_new,
            new_stations,
        }
    }

    /// Drop every trip whose weekly slot sorts strictly before the
    /// window start and **compact the intern table**: stations no longer
    /// referenced by any surviving row leave the dense index space (the
    /// sorted-subset compaction keeps the remap strictly increasing,
    /// mirroring [`TripTable::append_batch`]'s monotone extension).
    ///
    /// The resulting table is **identical** to one built from scratch
    /// over the surviving station set with the surviving rows pushed in
    /// order — the windowed differential suite asserts this per evict.
    /// Returns the [`EvictOutcome`] describing the removal.
    pub fn evict_before(&mut self, window: WindowStart) -> EvictOutcome {
        self.evict(window, true)
    }

    /// [`TripTable::evict_before`] without intern-table compaction: every
    /// station keeps its dense index even when its last trip expires —
    /// the entry for fixed-station-set consumers (a selected network's
    /// node table is pinned by the expansion run, so its graphs keep
    /// isolated rows rather than shrinking).
    pub fn evict_before_pinned(&mut self, window: WindowStart) -> EvictOutcome {
        self.evict(window, false)
    }

    fn evict(&mut self, window: WindowStart, compact: bool) -> EvictOutcome {
        // --- Partition rows: keep survivors in order, capture expired. ---
        let mut outcome = EvictOutcome {
            evicted_src: Vec::new(),
            evicted_dst: Vec::new(),
            evicted_day: Vec::new(),
            evicted_hour: Vec::new(),
            evicted_weight: Vec::new(),
            new_to_old: None,
            removed_stations: Vec::new(),
        };
        let mut write = 0usize;
        for read in 0..self.len() {
            if window.keeps(self.day[read], self.hour[read]) {
                self.src[write] = self.src[read];
                self.dst[write] = self.dst[read];
                self.day[write] = self.day[read];
                self.hour[write] = self.hour[read];
                self.weight[write] = self.weight[read];
                write += 1;
            } else {
                outcome
                    .evicted_src
                    .push(self.station_ids[self.src[read] as usize]);
                outcome
                    .evicted_dst
                    .push(self.station_ids[self.dst[read] as usize]);
                outcome.evicted_day.push(self.day[read]);
                outcome.evicted_hour.push(self.hour[read]);
                outcome.evicted_weight.push(self.weight[read]);
            }
        }
        self.src.truncate(write);
        self.dst.truncate(write);
        self.day.truncate(write);
        self.hour.truncate(write);
        self.weight.truncate(write);
        if !compact || outcome.is_noop() {
            return outcome;
        }

        // --- Compact the intern table to the referenced stations. ---
        let mut referenced = vec![false; self.station_ids.len()];
        for &s in self.src.iter().chain(&self.dst) {
            referenced[s as usize] = true;
        }
        if referenced.iter().all(|&r| r) {
            return outcome;
        }
        // Sorted subset: old dense order survives, so the remap is
        // monotone like append_batch's (just contracting, not extending).
        let mut old_to_new = vec![u32::MAX; self.station_ids.len()];
        let mut new_to_old = Vec::new();
        let mut kept = Vec::new();
        for (old, &id) in self.station_ids.iter().enumerate() {
            if referenced[old] {
                old_to_new[old] = new_to_old.len() as u32;
                new_to_old.push(old as u32);
                kept.push(id);
            } else {
                outcome.removed_stations.push(id);
            }
        }
        for v in &mut self.src {
            *v = old_to_new[*v as usize];
        }
        for v in &mut self.dst {
            *v = old_to_new[*v as usize];
        }
        self.station_ids = kept;
        outcome.new_to_old = Some(new_to_old);
        outcome
    }

    /// Build a station-level trip table straight from a cleaned dataset,
    /// using the `Location → Station` references the cleaning pipeline
    /// validated: a trip contributes a row when **both** endpoints resolve
    /// to a fixed station; dockless-endpoint trips are skipped (the
    /// expansion pipeline instead builds its table against the expanded
    /// station set after reassignment, in `moby_core`).
    pub fn from_clean_dataset(dataset: &CleanDataset) -> TripTable {
        // Rentals are an upper bound on rows (dockless-endpoint trips are
        // skipped below) — close enough for one-shot reservation.
        let mut table = TripTable::with_capacity(
            dataset.stations.iter().map(|s| s.id).collect(),
            dataset.rentals.len(),
        );
        // Sorted (location id, station dense index) pairs: per-trip lookup
        // is a binary search, never a hash probe.
        let mut location_station: Vec<(u64, u32)> = dataset
            .locations
            .iter()
            .filter_map(|l| {
                let station = l.station_id?;
                Some((l.id, table.station_index(station)?))
            })
            .collect();
        location_station.sort_unstable();
        let resolve = |loc: u64| -> Option<u32> {
            location_station
                .binary_search_by_key(&loc, |&(l, _)| l)
                .ok()
                .map(|at| location_station[at].1)
        };
        for r in &dataset.rentals {
            let (Some(src), Some(dst)) =
                (resolve(r.rental_location_id), resolve(r.return_location_id))
            else {
                continue;
            };
            table.push(src, dst, r.start_time);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Location, Rental, Station};
    use moby_geo::GeoPoint;

    fn ts(day: u32, hour: u32) -> Timestamp {
        // 2020-06-01 is a Monday.
        Timestamp::from_ymd_hms(2020, 6, day, hour, 0, 0).unwrap()
    }

    #[test]
    fn interning_is_sorted_and_deduplicated() {
        let t = TripTable::new(vec![30, 10, 20, 10]);
        assert_eq!(t.station_ids(), &[10, 20, 30]);
        assert_eq!(t.station_count(), 3);
        assert_eq!(t.station_index(20), Some(1));
        assert_eq!(t.station_index(99), None);
        assert_eq!(t.station_id(2), 30);
    }

    #[test]
    fn with_capacity_changes_nothing_observable() {
        let mut a = TripTable::new(vec![1, 2]);
        let mut b = TripTable::with_capacity(vec![1, 2], 128);
        a.push(0, 1, ts(1, 8));
        b.push(0, 1, ts(1, 8));
        assert_eq!(a, b);
        let mut ba = TripBatch::new();
        let mut bb = TripBatch::with_capacity(64);
        ba.push(1, 2, ts(2, 9));
        bb.push(1, 2, ts(2, 9));
        assert_eq!(ba, bb);
    }

    #[test]
    fn push_derives_temporal_keys() {
        let mut t = TripTable::new(vec![1, 2]);
        t.push(0, 1, ts(1, 8)); // Monday 08:00
        t.push(1, 0, ts(6, 17)); // Saturday 17:00
        t.push_weighted(0, 0, ts(7, 12), 2.5); // Sunday noon self-loop
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.src(), &[0, 1, 0]);
        assert_eq!(t.dst(), &[1, 0, 0]);
        assert_eq!(t.day(), &[0, 5, 6]);
        assert_eq!(t.hour(), &[8, 17, 12]);
        assert_eq!(t.weights(), &[1.0, 1.0, 2.5]);
    }

    #[test]
    fn station_edges_yield_external_ids_in_order() {
        let mut t = TripTable::new(vec![10, 20]);
        t.push(0, 1, ts(1, 8));
        t.push(1, 1, ts(2, 9));
        let edges: Vec<_> = t.station_edges().collect();
        assert_eq!(edges, vec![(10, 20, 1.0), (20, 20, 1.0)]);
    }

    #[test]
    fn keyed_push_matches_timestamp_push() {
        // ts(6, 17) is Saturday 17:00 → weekday index 5.
        let mut a = TripTable::new(vec![1, 2]);
        a.push(0, 1, ts(6, 17));
        let mut b = TripTable::new(vec![1, 2]);
        b.push_keyed(0, 1, 5, 17, 1.0);
        assert_eq!(a, b);
        let mut ba = TripBatch::new();
        ba.push(1, 2, ts(6, 17));
        let mut bb = TripBatch::new();
        bb.push_keyed(1, 2, 5, 17, 1.0);
        assert_eq!(ba, bb);
        bb.push_keyed(1, 2, 0, 0, f64::NAN); // invalid weight: dropped
        assert_eq!(ba, bb);
    }

    #[test]
    fn append_batch_without_new_stations_keeps_indices() {
        let mut t = TripTable::new(vec![10, 20, 30]);
        t.push(0, 1, ts(1, 8));
        let mut b = TripBatch::new();
        b.push(20, 30, ts(2, 9));
        b.push_weighted(30, 10, ts(3, 10), 2.0);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.station_ids(), vec![10, 20, 30]);
        let out = t.append_batch(&b);
        assert_eq!(out.batch_start, 1);
        assert_eq!(out.old_to_new, None);
        assert!(out.new_stations.is_empty());
        assert_eq!(t.len(), 3);
        assert_eq!(t.src(), &[0, 1, 2]);
        assert_eq!(t.dst(), &[1, 2, 0]);
        assert_eq!(t.day(), &[0, 1, 2]);
        assert_eq!(t.weights(), &[1.0, 1.0, 2.0]);
    }

    #[test]
    fn append_batch_interleaves_new_stations_and_remaps_old_rows() {
        let mut t = TripTable::new(vec![10, 30]);
        t.push(0, 1, ts(1, 8)); // 10 -> 30
        let mut b = TripBatch::new();
        b.push(20, 30, ts(2, 9)); // 20 is new, sorts between 10 and 30
        b.push(40, 10, ts(2, 10)); // 40 is new, sorts last
        let out = t.append_batch(&b);
        assert_eq!(out.batch_start, 1);
        assert_eq!(out.new_stations, vec![20, 40]);
        assert_eq!(out.old_to_new, Some(vec![0, 2]));
        assert_eq!(t.station_ids(), &[10, 20, 30, 40]);
        // The old row's endpoints were shifted through the remap.
        assert_eq!(t.src(), &[0, 1, 3]);
        assert_eq!(t.dst(), &[2, 2, 0]);
    }

    #[test]
    fn appended_table_equals_one_built_from_scratch() {
        let mut t = TripTable::new(vec![10, 30]);
        t.push(0, 1, ts(1, 8));
        t.push_weighted(1, 1, ts(4, 20), 0.5);
        let mut b = TripBatch::new();
        b.push(20, 10, ts(2, 9));
        b.push(30, 20, ts(6, 23));
        t.append_batch(&b);
        // From scratch: union station set, same rows in the same order.
        let mut want = TripTable::new(vec![10, 20, 30]);
        // Dense indices over the sorted union table: 10 -> 0, 20 -> 1, 30 -> 2.
        want.push(0, 2, ts(1, 8));
        want.push_weighted(2, 2, ts(4, 20), 0.5);
        want.push(1, 0, ts(2, 9));
        want.push(2, 1, ts(6, 23));
        assert_eq!(t, want);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t = TripTable::new(vec![1, 2]);
        t.push(0, 1, ts(1, 8));
        let before = t.clone();
        let out = t.append_batch(&TripBatch::new());
        assert_eq!(out.batch_start, 1);
        assert_eq!(out.old_to_new, None);
        assert!(out.new_stations.is_empty());
        assert_eq!(t, before);
    }

    #[test]
    fn batch_rejects_invalid_weights() {
        let mut b = TripBatch::new();
        b.push_weighted(1, 2, ts(1, 8), f64::INFINITY);
        b.push_weighted(1, 2, ts(1, 8), -3.0);
        assert!(b.is_empty());
        assert!(b.iter().next().is_none());
    }

    #[test]
    fn window_start_slots_and_keeps() {
        let w = WindowStart::new(2, 5); // Wednesday 05:00, slot 53
        assert_eq!(w.day(), 2);
        assert_eq!(w.hour(), 5);
        assert_eq!(w.slot(), 53);
        assert!(w.keeps(2, 5));
        assert!(w.keeps(6, 0));
        assert!(!w.keeps(2, 4));
        assert!(!w.keeps(0, 23));
        assert_eq!(WindowStart::new(0, 0).slot(), 0);
        assert_eq!(WindowStart::new(6, 23).slot(), 167);
    }

    #[test]
    #[should_panic(expected = "temporal keys out of range")]
    fn window_start_rejects_out_of_range_keys() {
        WindowStart::new(7, 0);
    }

    #[test]
    fn evict_nothing_is_a_noop() {
        let mut t = TripTable::new(vec![10, 20]);
        t.push(0, 1, ts(3, 9)); // Wednesday
        let before = t.clone();
        let out = t.evict_before(WindowStart::new(0, 0));
        assert!(out.is_noop());
        assert_eq!(out.evicted_rows(), 0);
        assert_eq!(out.new_to_old, None);
        assert!(out.removed_stations.is_empty());
        assert!(out.touched_stations().is_empty());
        assert_eq!(t, before);
    }

    #[test]
    fn evict_everything_empties_rows_and_compacts_all_stations() {
        let mut t = TripTable::new(vec![10, 20]);
        t.push(0, 1, ts(1, 8)); // Monday
        t.push(1, 0, ts(2, 9)); // Tuesday
        let out = t.evict_before(WindowStart::new(6, 23));
        assert_eq!(out.evicted_rows(), 2);
        assert_eq!(out.evicted_src, vec![10, 20]);
        assert_eq!(out.evicted_dst, vec![20, 10]);
        assert_eq!(out.removed_stations, vec![10, 20]);
        assert_eq!(out.new_to_old, Some(vec![]));
        assert!(t.is_empty());
        assert_eq!(t.station_count(), 0);
    }

    #[test]
    fn evict_compacts_and_matches_from_scratch() {
        // Stations 10, 20, 30; trips touching 20 all expire.
        let mut t = TripTable::new(vec![10, 20, 30]);
        t.push(0, 1, ts(1, 8)); // Monday: 10 -> 20, expires
        t.push_weighted(1, 1, ts(1, 9), 2.0); // Monday: 20 self-loop, expires
        t.push(0, 2, ts(4, 10)); // Thursday: 10 -> 30, survives
        t.push(2, 0, ts(5, 11)); // Friday: 30 -> 10, survives
        let out = t.evict_before(WindowStart::new(3, 0));
        assert_eq!(out.evicted_rows(), 2);
        assert_eq!(out.evicted_src, vec![10, 20]);
        assert_eq!(out.evicted_dst, vec![20, 20]);
        assert_eq!(out.evicted_day, vec![0, 0]);
        assert_eq!(out.evicted_hour, vec![8, 9]);
        assert_eq!(out.evicted_weight, vec![1.0, 2.0]);
        assert_eq!(out.removed_stations, vec![20]);
        assert_eq!(out.new_to_old, Some(vec![0, 2]));
        assert_eq!(out.touched_stations(), vec![10, 20]);
        // From scratch over the surviving station set and rows.
        let mut want = TripTable::new(vec![10, 30]);
        want.push(0, 1, ts(4, 10));
        want.push(1, 0, ts(5, 11));
        assert_eq!(t, want);
    }

    #[test]
    fn pinned_evict_keeps_isolated_stations() {
        let mut t = TripTable::new(vec![10, 20, 30]);
        t.push(0, 1, ts(1, 8)); // expires, leaving 10 and 20 tripless
        t.push(2, 2, ts(6, 12)); // survives
        let out = t.evict_before_pinned(WindowStart::new(3, 0));
        assert_eq!(out.evicted_rows(), 1);
        assert_eq!(out.new_to_old, None);
        assert!(out.removed_stations.is_empty());
        // All three stations keep their dense indices.
        assert_eq!(t.station_ids(), &[10, 20, 30]);
        assert_eq!(t.src(), &[2]);
        assert_eq!(t.dst(), &[2]);
    }

    #[test]
    fn evict_then_append_rebuilds_a_dropped_station() {
        let mut t = TripTable::new(vec![10, 20]);
        t.push(0, 1, ts(1, 8)); // Monday, expires
        t.push(0, 0, ts(5, 9)); // Friday, survives
        let out = t.evict_before(WindowStart::new(2, 0));
        assert_eq!(out.removed_stations, vec![20]);
        assert_eq!(t.station_ids(), &[10]);
        // The batch re-interns the just-evicted station.
        let mut b = TripBatch::new();
        b.push(20, 10, ts(6, 10));
        let append = t.append_batch(&b);
        assert_eq!(append.new_stations, vec![20]);
        let mut want = TripTable::new(vec![10, 20]);
        want.push(0, 0, ts(5, 9));
        want.push(1, 0, ts(6, 10));
        assert_eq!(t, want);
    }

    #[test]
    fn from_clean_dataset_resolves_station_endpoints() {
        let pos = GeoPoint::new(53.35, -6.26).unwrap();
        let dataset = CleanDataset {
            stations: vec![
                Station {
                    id: 7,
                    name: "A".into(),
                    position: pos,
                },
                Station {
                    id: 3,
                    name: "B".into(),
                    position: pos,
                },
            ],
            locations: vec![
                Location {
                    id: 100,
                    position: pos,
                    station_id: Some(7),
                },
                Location {
                    id: 101,
                    position: pos,
                    station_id: Some(3),
                },
                Location {
                    id: 102,
                    position: pos,
                    station_id: None, // dockless
                },
            ],
            rentals: vec![
                Rental {
                    id: 1,
                    bike_id: 1,
                    start_time: ts(1, 8),
                    end_time: ts(1, 9),
                    rental_location_id: 100,
                    return_location_id: 101,
                },
                Rental {
                    id: 2,
                    bike_id: 1,
                    start_time: ts(2, 10),
                    end_time: ts(2, 11),
                    rental_location_id: 100,
                    return_location_id: 102, // dockless endpoint: skipped
                },
            ],
        };
        let t = TripTable::from_clean_dataset(&dataset);
        assert_eq!(t.station_ids(), &[3, 7]);
        assert_eq!(t.len(), 1);
        // Station 7 has dense index 1, station 3 dense index 0.
        assert_eq!(t.src(), &[1]);
        assert_eq!(t.dst(), &[0]);
    }
}
