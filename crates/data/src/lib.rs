//! # moby-data
//!
//! Trip-data schema, cleaning pipeline and calibrated synthetic generator
//! for the `moby-expansion` reproduction.
//!
//! The paper works from two SQL tables provided by Moby Bikes: `Rental`
//! (62,324 rows, Jan 2020 – Sep 2021) and `Location` (14,239 rows), plus the
//! set of 95 fixed charging stations. That dataset is proprietary, so this
//! crate provides:
//!
//! * [`schema`] — typed records mirroring the two tables (raw rows with the
//!   defects the paper lists, and validated rows after cleaning);
//! * [`timeparse`] — a small civil-time implementation (no external crate)
//!   giving the weekday / hour-of-day features the temporal graphs need;
//! * [`csvio`] — plain CSV readers/writers for the two tables;
//! * [`clean`] — the six cleaning rules of paper §III with a per-rule audit
//!   trail, reproducing Table I;
//! * [`synth`] — a statistically calibrated synthetic Dublin generator that
//!   reproduces the dataset marginals the paper reports (92 usable
//!   stations, ≈62 k rentals, ≈14 k distinct dockless locations, commuter
//!   and leisure temporal profiles, deliberately injected dirty rows);
//! * [`stats`] — dataset overview statistics (Table I) and descriptive
//!   summaries;
//! * [`trips`] — the columnar [`trips::TripTable`]: struct-of-arrays
//!   station trips (dense `u32` endpoints over a shared sorted intern
//!   table, weekday/hour keys, weights) that the graph layer's sort-merge
//!   CSR construction consumes — the hashmap-free hot path from cleaned
//!   records to frozen graphs.
//!
//! ## Example
//!
//! ```
//! use moby_data::synth::{SynthConfig, generate};
//! use moby_data::clean::clean_dataset;
//!
//! let raw = generate(&SynthConfig::small_test());
//! let cleaned = clean_dataset(&raw);
//! assert!(cleaned.dataset.rentals.len() <= raw.rentals.len());
//! assert!(cleaned.report.total_rentals_removed() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clean;
pub mod csvio;
pub mod loader;
pub mod schema;
pub mod spool;
pub mod stats;
pub mod synth;
pub mod timeparse;
pub mod trips;

use std::fmt;

/// Errors produced by the data layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A CSV row had the wrong number of fields.
    MalformedRow {
        /// 1-based line number in the input.
        line: usize,
        /// Expected number of fields.
        expected: usize,
        /// Observed number of fields.
        found: usize,
    },
    /// A field failed to parse.
    FieldParse {
        /// 1-based line number in the input.
        line: usize,
        /// Column header name.
        column: String,
        /// Offending raw value.
        value: String,
    },
    /// The CSV input was missing a required column.
    MissingColumn(String),
    /// The input had no header row.
    EmptyInput,
    /// A timestamp was outside the supported range (years 1970–2262).
    TimestampOutOfRange(i64),
    /// A date component was invalid (e.g. month 13).
    InvalidDate {
        /// Year.
        year: i32,
        /// Month (1–12).
        month: u32,
        /// Day of month.
        day: u32,
    },
    /// A dataset file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::MalformedRow {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            DataError::FieldParse {
                line,
                column,
                value,
            } => {
                write!(
                    f,
                    "line {line}: cannot parse column '{column}' from '{value}'"
                )
            }
            DataError::MissingColumn(c) => write!(f, "missing required column '{c}'"),
            DataError::EmptyInput => write!(f, "input has no header row"),
            DataError::TimestampOutOfRange(t) => {
                write!(f, "timestamp {t} outside supported range")
            }
            DataError::InvalidDate { year, month, day } => {
                write!(f, "invalid date {year:04}-{month:02}-{day:02}")
            }
            DataError::Io { path, message } => write!(f, "I/O error on {path}: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let msgs = [
            DataError::MalformedRow {
                line: 3,
                expected: 5,
                found: 4,
            }
            .to_string(),
            DataError::FieldParse {
                line: 2,
                column: "lat".into(),
                value: "x".into(),
            }
            .to_string(),
            DataError::MissingColumn("id".into()).to_string(),
            DataError::EmptyInput.to_string(),
            DataError::TimestampOutOfRange(-5).to_string(),
            DataError::InvalidDate {
                year: 2020,
                month: 13,
                day: 1,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
