//! Plain CSV readers and writers for the `Rental` and `Location` tables.
//!
//! The operator's export format is simple comma-separated text with a header
//! row; fields never contain embedded commas, but quoted fields are accepted
//! for robustness. Missing values are encoded as empty fields, matching how
//! the defects described in paper §III appear in the raw export.
//!
//! Each reader exists in two forms: a `read_*` convenience over an
//! in-memory `&str`, and a streaming `read_*_from` over any
//! [`BufRead`] source that parses **line by line** — so a rentals file
//! larger than the RAM headroom is never slurped into one `String` on top
//! of the parsed records (see [`crate::loader`]).

use crate::schema::{RawLocation, RawRental, Station};
use crate::timeparse::Timestamp;
use crate::{DataError, Result};
use moby_geo::GeoPoint;
use std::fmt::Write as _;
use std::io::BufRead;

/// Split a single CSV line into fields, honouring double-quoted fields with
/// `""` escapes.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Streaming CSV row source over any [`BufRead`]: reads one line at a
/// time into a reused buffer, skips blank lines, and validates each row's
/// field count against the header. Line numbers are 1-based over the raw
/// input (blank lines included), matching the in-memory parser.
struct CsvRows<R: BufRead> {
    reader: R,
    source: String,
    buf: String,
    line_no: usize,
    width: usize,
}

impl<R: BufRead> CsvRows<R> {
    /// Open the source and parse the header row. `source` labels I/O
    /// errors (a file path, or `"<memory>"` for in-memory input).
    fn open(reader: R, source: &str) -> Result<(Vec<String>, CsvRows<R>)> {
        let mut rows = CsvRows {
            reader,
            source: source.to_owned(),
            buf: String::new(),
            line_no: 0,
            width: 0,
        };
        if !rows.advance()? {
            return Err(DataError::EmptyInput);
        }
        let header: Vec<String> = split_csv_line(rows.current_line())
            .into_iter()
            .map(|h| h.trim().to_lowercase())
            .collect();
        rows.width = header.len();
        Ok((header, rows))
    }

    /// Advance to the next non-blank line, reusing the internal buffer
    /// (no per-line allocation). Returns `false` at end of input.
    fn advance(&mut self) -> Result<bool> {
        loop {
            self.buf.clear();
            let read = self
                .reader
                .read_line(&mut self.buf)
                .map_err(|e| DataError::Io {
                    path: self.source.clone(),
                    message: e.to_string(),
                })?;
            if read == 0 {
                return Ok(false);
            }
            self.line_no += 1;
            // Strip a UTF-8 byte-order mark at the stream boundary: some
            // exporters (Excel among them) prefix the very first record
            // with U+FEFF, which `trim()` does not remove — left in
            // place it corrupts the first header field ("\u{feff}id"
            // never matches the "id" column) or the first data field.
            // Only the first line of the stream can carry one; a later
            // U+FEFF is field content and survives.
            if self.line_no == 1 && self.buf.starts_with('\u{feff}') {
                self.buf.drain(..'\u{feff}'.len_utf8());
            }
            if !self.current_line().trim().is_empty() {
                return Ok(true);
            }
        }
    }

    /// The buffered line with at most one trailing `\r\n` / `\n`
    /// stripped (exactly what `str::lines` removes, so CR bytes inside a
    /// final field survive).
    fn current_line(&self) -> &str {
        let line = self.buf.strip_suffix('\n').unwrap_or(&self.buf);
        line.strip_suffix('\r').unwrap_or(line)
    }

    /// The next data row as `(line number, fields)`, or `None` at end of
    /// input.
    fn next_row(&mut self) -> Result<Option<(usize, Vec<String>)>> {
        if !self.advance()? {
            return Ok(None);
        }
        let fields = split_csv_line(self.current_line());
        if fields.len() != self.width {
            return Err(DataError::MalformedRow {
                line: self.line_no,
                expected: self.width,
                found: fields.len(),
            });
        }
        Ok(Some((self.line_no, fields)))
    }
}

fn column_index(header: &[String], name: &str) -> Result<usize> {
    header
        .iter()
        .position(|h| h == name)
        .ok_or_else(|| DataError::MissingColumn(name.to_owned()))
}

fn parse_opt_f64(line: usize, column: &str, raw: &str) -> Result<Option<f64>> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    raw.parse::<f64>()
        .map(Some)
        .map_err(|_| DataError::FieldParse {
            line,
            column: column.to_owned(),
            value: raw.to_owned(),
        })
}

fn parse_opt_u64(line: usize, column: &str, raw: &str) -> Result<Option<u64>> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    raw.parse::<u64>()
        .map(Some)
        .map_err(|_| DataError::FieldParse {
            line,
            column: column.to_owned(),
            value: raw.to_owned(),
        })
}

fn parse_u64(line: usize, column: &str, raw: &str) -> Result<u64> {
    parse_opt_u64(line, column, raw)?.ok_or_else(|| DataError::FieldParse {
        line,
        column: column.to_owned(),
        value: raw.to_owned(),
    })
}

fn parse_timestamp(line: usize, column: &str, raw: &str) -> Result<Timestamp> {
    Timestamp::parse_iso(raw).map_err(|_| DataError::FieldParse {
        line,
        column: column.to_owned(),
        value: raw.to_owned(),
    })
}

/// Read the `Location` table from an in-memory CSV document.
pub fn read_locations(text: &str) -> Result<Vec<RawLocation>> {
    read_locations_from(text.as_bytes(), "<memory>")
}

/// Read the `Location` table from a buffered CSV stream, line by line.
///
/// Expected header: `id,lat,lon,station_id` (order-insensitive, extra
/// columns ignored). Empty `lat`/`lon`/`station_id` become `None`.
/// `source` labels I/O errors (typically the file path).
pub fn read_locations_from<R: BufRead>(reader: R, source: &str) -> Result<Vec<RawLocation>> {
    let (header, mut rows) = CsvRows::open(reader, source)?;
    let c_id = column_index(&header, "id")?;
    let c_lat = column_index(&header, "lat")?;
    let c_lon = column_index(&header, "lon")?;
    let c_station = column_index(&header, "station_id")?;
    let mut out = Vec::new();
    while let Some((line, f)) = rows.next_row()? {
        out.push(RawLocation {
            id: parse_u64(line, "id", &f[c_id])?,
            lat: parse_opt_f64(line, "lat", &f[c_lat])?,
            lon: parse_opt_f64(line, "lon", &f[c_lon])?,
            station_id: parse_opt_u64(line, "station_id", &f[c_station])?,
        });
    }
    Ok(out)
}

/// Read the `Rental` table from an in-memory CSV document.
pub fn read_rentals(text: &str) -> Result<Vec<RawRental>> {
    read_rentals_from(text.as_bytes(), "<memory>")
}

/// Read the `Rental` table from a buffered CSV stream, line by line.
///
/// Expected header:
/// `id,bike_id,start_time,end_time,rental_location_id,return_location_id`.
/// `source` labels I/O errors (typically the file path).
pub fn read_rentals_from<R: BufRead>(reader: R, source: &str) -> Result<Vec<RawRental>> {
    let (header, mut rows) = CsvRows::open(reader, source)?;
    let c_id = column_index(&header, "id")?;
    let c_bike = column_index(&header, "bike_id")?;
    let c_start = column_index(&header, "start_time")?;
    let c_end = column_index(&header, "end_time")?;
    let c_rent = column_index(&header, "rental_location_id")?;
    let c_ret = column_index(&header, "return_location_id")?;
    let mut out = Vec::new();
    while let Some((line, f)) = rows.next_row()? {
        out.push(RawRental {
            id: parse_u64(line, "id", &f[c_id])?,
            bike_id: parse_u64(line, "bike_id", &f[c_bike])? as u32,
            start_time: parse_timestamp(line, "start_time", &f[c_start])?,
            end_time: parse_timestamp(line, "end_time", &f[c_end])?,
            rental_location_id: parse_opt_u64(line, "rental_location_id", &f[c_rent])?,
            return_location_id: parse_opt_u64(line, "return_location_id", &f[c_ret])?,
        });
    }
    Ok(out)
}

/// Read the fixed-station table from an in-memory CSV document.
pub fn read_stations(text: &str) -> Result<Vec<Station>> {
    read_stations_from(text.as_bytes(), "<memory>")
}

/// Read the fixed-station table from a buffered CSV stream, line by line.
///
/// Expected header: `id,name,lat,lon`. Stations must have valid coordinates;
/// a bad row is an error rather than a defect (the station list is small and
/// operator-curated). `source` labels I/O errors (typically the file path).
pub fn read_stations_from<R: BufRead>(reader: R, source: &str) -> Result<Vec<Station>> {
    let (header, mut rows) = CsvRows::open(reader, source)?;
    let c_id = column_index(&header, "id")?;
    let c_name = column_index(&header, "name")?;
    let c_lat = column_index(&header, "lat")?;
    let c_lon = column_index(&header, "lon")?;
    let mut out = Vec::new();
    while let Some((line, f)) = rows.next_row()? {
        let lat = parse_opt_f64(line, "lat", &f[c_lat])?.ok_or_else(|| DataError::FieldParse {
            line,
            column: "lat".into(),
            value: f[c_lat].clone(),
        })?;
        let lon = parse_opt_f64(line, "lon", &f[c_lon])?.ok_or_else(|| DataError::FieldParse {
            line,
            column: "lon".into(),
            value: f[c_lon].clone(),
        })?;
        let position = GeoPoint::new(lat, lon).map_err(|_| DataError::FieldParse {
            line,
            column: "lat/lon".into(),
            value: format!("{lat},{lon}"),
        })?;
        out.push(Station {
            id: parse_u64(line, "id", &f[c_id])?,
            name: f[c_name].trim().to_owned(),
            position,
        });
    }
    Ok(out)
}

fn csv_quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialise locations to CSV (inverse of [`read_locations`]).
pub fn write_locations(locations: &[RawLocation]) -> String {
    let mut out = String::from("id,lat,lon,station_id\n");
    for l in locations {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            l.id,
            l.lat.map(|v| v.to_string()).unwrap_or_default(),
            l.lon.map(|v| v.to_string()).unwrap_or_default(),
            l.station_id.map(|v| v.to_string()).unwrap_or_default(),
        );
    }
    out
}

/// Serialise rentals to CSV (inverse of [`read_rentals`]).
pub fn write_rentals(rentals: &[RawRental]) -> String {
    let mut out =
        String::from("id,bike_id,start_time,end_time,rental_location_id,return_location_id\n");
    for r in rentals {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.id,
            r.bike_id,
            r.start_time.to_iso(),
            r.end_time.to_iso(),
            r.rental_location_id
                .map(|v| v.to_string())
                .unwrap_or_default(),
            r.return_location_id
                .map(|v| v.to_string())
                .unwrap_or_default(),
        );
    }
    out
}

/// Serialise stations to CSV (inverse of [`read_stations`]).
pub fn write_stations(stations: &[Station]) -> String {
    let mut out = String::from("id,name,lat,lon\n");
    for s in stations {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            s.id,
            csv_quote(&s.name),
            s.position.lat(),
            s.position.lon()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_quotes_and_escapes() {
        assert_eq!(split_csv_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_csv_line("a,\"he said \"\"hi\"\"\",c"),
            vec!["a", "he said \"hi\"", "c"]
        );
        assert_eq!(split_csv_line("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn read_locations_with_missing_fields() {
        let csv = "id,lat,lon,station_id\n1,53.35,-6.26,10\n2,,,\n3,53.30,-6.20,\n";
        let locs = read_locations(csv).unwrap();
        assert_eq!(locs.len(), 3);
        assert_eq!(locs[0].station_id, Some(10));
        assert_eq!(locs[1].lat, None);
        assert_eq!(locs[1].lon, None);
        assert_eq!(locs[2].station_id, None);
    }

    #[test]
    fn read_locations_rejects_bad_rows() {
        assert!(matches!(
            read_locations("id,lat,lon,station_id\n1,53.35\n"),
            Err(DataError::MalformedRow { .. })
        ));
        assert!(matches!(
            read_locations("id,lat,lon,station_id\nx,53.35,-6.26,1\n"),
            Err(DataError::FieldParse { .. })
        ));
        assert!(matches!(
            read_locations("id,lat,lon\n1,2,3\n"),
            Err(DataError::MissingColumn(_))
        ));
        assert!(matches!(read_locations(""), Err(DataError::EmptyInput)));
    }

    #[test]
    fn read_rentals_round_trip() {
        let rentals = vec![
            RawRental {
                id: 1,
                bike_id: 42,
                start_time: Timestamp::from_ymd_hms(2020, 5, 1, 8, 15, 0).unwrap(),
                end_time: Timestamp::from_ymd_hms(2020, 5, 1, 8, 45, 0).unwrap(),
                rental_location_id: Some(10),
                return_location_id: Some(20),
            },
            RawRental {
                id: 2,
                bike_id: 43,
                start_time: Timestamp::from_ymd_hms(2020, 5, 2, 17, 0, 0).unwrap(),
                end_time: Timestamp::from_ymd_hms(2020, 5, 2, 17, 20, 0).unwrap(),
                rental_location_id: None,
                return_location_id: Some(20),
            },
        ];
        let csv = write_rentals(&rentals);
        let parsed = read_rentals(&csv).unwrap();
        assert_eq!(parsed, rentals);
    }

    #[test]
    fn locations_round_trip() {
        let locs = vec![
            RawLocation {
                id: 7,
                lat: Some(53.3),
                lon: Some(-6.2),
                station_id: None,
            },
            RawLocation {
                id: 8,
                lat: None,
                lon: None,
                station_id: Some(3),
            },
        ];
        let parsed = read_locations(&write_locations(&locs)).unwrap();
        assert_eq!(parsed, locs);
    }

    #[test]
    fn stations_round_trip_with_comma_in_name() {
        let stations = vec![Station {
            id: 1,
            name: "Smithfield, North".into(),
            position: GeoPoint::new(53.3498, -6.2786).unwrap(),
        }];
        let csv = write_stations(&stations);
        let parsed = read_stations(&csv).unwrap();
        assert_eq!(parsed, stations);
    }

    #[test]
    fn stations_require_coordinates() {
        let res = read_stations("id,name,lat,lon\n1,Broken,,\n");
        assert!(matches!(res, Err(DataError::FieldParse { .. })));
        let res2 = read_stations("id,name,lat,lon\n1,Broken,95.0,-6.2\n");
        assert!(matches!(res2, Err(DataError::FieldParse { .. })));
    }

    #[test]
    fn rentals_reject_bad_timestamp() {
        let csv = "id,bike_id,start_time,end_time,rental_location_id,return_location_id\n\
                   1,2,not-a-time,2020-05-01T08:45:00,1,2\n";
        assert!(matches!(
            read_rentals(csv),
            Err(DataError::FieldParse { .. })
        ));
    }

    #[test]
    fn header_order_is_flexible_and_case_insensitive() {
        let csv = "Station_ID,LON,LAT,ID\n5,-6.2,53.3,1\n";
        let locs = read_locations(csv).unwrap();
        assert_eq!(locs[0].id, 1);
        assert_eq!(locs[0].lat, Some(53.3));
        assert_eq!(locs[0].station_id, Some(5));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "id,lat,lon,station_id\n\n1,53.35,-6.26,\n\n";
        assert_eq!(read_locations(csv).unwrap().len(), 1);
    }

    #[test]
    fn streaming_reader_handles_crlf_and_reports_line_numbers() {
        let csv = "id,lat,lon,station_id\r\n1,53.35,-6.26,\r\n\r\nbroken\r\n";
        let err = read_locations_from(csv.as_bytes(), "test.csv").unwrap_err();
        // The malformed row sits on raw line 4 (blank line included).
        assert!(
            matches!(err, DataError::MalformedRow { line: 4, .. }),
            "{err:?}"
        );
        let good = "id,lat,lon,station_id\r\n1,53.35,-6.26,7\r\n";
        let locs = read_locations_from(good.as_bytes(), "test.csv").unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].station_id, Some(7));
    }

    #[test]
    fn bom_prefixed_header_is_accepted() {
        // Excel-style exports prefix the file with a UTF-8 BOM; the
        // first header field must still resolve as "id", not "\u{feff}id".
        let csv = "\u{feff}id,lat,lon,station_id\n1,53.35,-6.26,10\n";
        let locs = read_locations_from(csv.as_bytes(), "bom.csv").unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].id, 1);
        assert_eq!(locs[0].station_id, Some(10));
    }

    #[test]
    fn bom_with_crlf_line_endings_is_accepted() {
        let csv = "\u{feff}id,name,lat,lon\r\n1,Smithfield,53.3498,-6.2786\r\n";
        let stations = read_stations_from(csv.as_bytes(), "bom.csv").unwrap();
        assert_eq!(stations.len(), 1);
        assert_eq!(stations[0].name, "Smithfield");
    }

    #[test]
    fn bom_before_a_quoted_first_header_field_is_accepted() {
        // The BOM must be stripped *before* quote detection, or the
        // opening quote is no longer at the start of the field.
        let csv = "\u{feff}\"id\",name,lat,lon\r\n2,\"Smithfield, North\",53.3498,-6.2786\r\n";
        let stations = read_stations_from(csv.as_bytes(), "bom.csv").unwrap();
        assert_eq!(stations[0].id, 2);
        assert_eq!(stations[0].name, "Smithfield, North");
    }

    #[test]
    fn bom_on_later_lines_is_field_content() {
        // Only the stream boundary strips a BOM; a U+FEFF inside a later
        // record is (weird but valid) data and must survive.
        let csv = "\u{feff}id,name,lat,lon\n3,\u{feff}Odd,53.3,-6.2\n";
        let stations = read_stations_from(csv.as_bytes(), "bom.csv").unwrap();
        assert_eq!(stations[0].name, "\u{feff}Odd");
    }

    #[test]
    fn streaming_reader_labels_io_errors_with_the_source() {
        /// A reader that fails after the header line.
        struct Flaky(usize);
        impl std::io::Read for Flaky {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        impl BufRead for Flaky {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                if self.0 == 0 {
                    self.0 = 1;
                    Ok(b"id,lat,lon,station_id\n")
                } else {
                    Err(std::io::Error::other("disk on fire"))
                }
            }
            fn consume(&mut self, _amt: usize) {}
        }
        // The header consumes the whole first buffer; the next fill fails.
        let err =
            read_locations_from(std::io::BufReader::new(Flaky(0)), "rentals.csv").unwrap_err();
        match err {
            DataError::Io { path, message } => {
                assert_eq!(path, "rentals.csv");
                assert!(message.contains("disk on fire"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
