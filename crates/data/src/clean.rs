//! The §III cleaning pipeline with a per-rule audit trail.
//!
//! The paper removes (quoting the bullet list in §III):
//!
//! 1. locations outside Dublin, and rentals that started or ended at them;
//! 2. locations that are not on land, and associated rentals;
//! 3. locations missing latitude or longitude, and associated rentals;
//! 4. rentals that do not report a rental or return location id;
//! 5. rentals whose rental/return location id is not in the `Location` table;
//! 6. location ids in the `Location` table that no rental references.
//!
//! Fixed stations whose recorded position falls foul of rules 1–3 are also
//! dropped (this is how the paper's station count goes from 95 to 92).
//!
//! The pipeline records how many rows each rule removed so that Table I
//! (original vs cleaned counts) can be reproduced and audited.

use crate::schema::{CleanDataset, Location, LocationId, RawDataset, Rental, Station};
use crate::spool::TripSpool;
use crate::synth::CityTrip;
use crate::trips::{StationNodeId, TripTable};
use moby_geo::{dublin_land_mask, GeoPoint};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Why a location row was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationDefect {
    /// Outside the Dublin service area.
    OutsideDublin,
    /// Inside the service area but not on land (e.g. in Dublin Bay).
    NotOnLand,
    /// Latitude or longitude missing.
    MissingCoordinates,
    /// Coordinates present but not parseable as a valid lat/lon pair.
    InvalidCoordinates,
    /// Never referenced by any (surviving) rental.
    Unreferenced,
}

/// Why a rental row was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RentalDefect {
    /// Rental or return location id missing.
    MissingLocationRef,
    /// Rental or return location id not present in the `Location` table.
    DanglingLocationRef,
    /// Rental touches a location that was itself removed (rules 1–3).
    TouchesRemovedLocation,
}

/// Per-rule counts of removed rows, plus the headline before/after numbers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Original number of stations.
    pub stations_before: usize,
    /// Stations surviving cleaning.
    pub stations_after: usize,
    /// Original number of location rows.
    pub locations_before: usize,
    /// Location rows surviving cleaning.
    pub locations_after: usize,
    /// Original number of rental rows.
    pub rentals_before: usize,
    /// Rental rows surviving cleaning.
    pub rentals_after: usize,
    /// Locations removed, by defect.
    pub location_defects: HashMap<String, usize>,
    /// Rentals removed, by defect.
    pub rental_defects: HashMap<String, usize>,
}

impl CleaningReport {
    /// Total number of location rows removed.
    pub fn total_locations_removed(&self) -> usize {
        self.locations_before - self.locations_after
    }

    /// Total number of rental rows removed.
    pub fn total_rentals_removed(&self) -> usize {
        self.rentals_before - self.rentals_after
    }

    /// Total number of stations removed.
    pub fn total_stations_removed(&self) -> usize {
        self.stations_before - self.stations_after
    }

    fn bump_location(&mut self, defect: LocationDefect) {
        *self
            .location_defects
            .entry(format!("{defect:?}"))
            .or_insert(0) += 1;
    }

    fn bump_rental(&mut self, defect: RentalDefect) {
        *self
            .rental_defects
            .entry(format!("{defect:?}"))
            .or_insert(0) += 1;
    }
}

/// The result of running the cleaning pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleaningOutcome {
    /// The cleaned dataset.
    pub dataset: CleanDataset,
    /// The audit trail.
    pub report: CleaningReport,
}

/// Run the full §III cleaning pipeline over a raw dataset.
pub fn clean_dataset(raw: &RawDataset) -> CleaningOutcome {
    let mask = dublin_land_mask();
    let mut report = CleaningReport {
        stations_before: raw.stations.len(),
        locations_before: raw.locations.len(),
        rentals_before: raw.rentals.len(),
        ..Default::default()
    };

    // --- Stations: drop those with implausible positions (rules 1–2). ---
    let stations: Vec<Station> = raw
        .stations
        .iter()
        .filter(|s| mask.on_land(s.position))
        .cloned()
        .collect();

    // --- Locations: rules 1–3. ---
    let mut valid_locations: HashMap<LocationId, Location> = HashMap::new();
    let mut removed_locations: HashSet<LocationId> = HashSet::new();
    for loc in &raw.locations {
        let defect = match (loc.lat, loc.lon) {
            (None, _) | (_, None) => Some(LocationDefect::MissingCoordinates),
            (Some(lat), Some(lon)) => match GeoPoint::new(lat, lon) {
                Err(_) => Some(LocationDefect::InvalidCoordinates),
                Ok(p) => {
                    if !mask.in_service_area(p) {
                        Some(LocationDefect::OutsideDublin)
                    } else if !mask.on_land(p) {
                        Some(LocationDefect::NotOnLand)
                    } else {
                        None
                    }
                }
            },
        };
        match defect {
            Some(d) => {
                report.bump_location(d);
                removed_locations.insert(loc.id);
            }
            None => {
                let p = GeoPoint::new(loc.lat.expect("checked"), loc.lon.expect("checked"))
                    .expect("checked valid");
                valid_locations.insert(
                    loc.id,
                    Location {
                        id: loc.id,
                        position: p,
                        station_id: loc.station_id,
                    },
                );
            }
        }
    }

    // --- Rentals: rules 4–5 plus propagation of removed locations. ---
    let mut rentals: Vec<Rental> = Vec::with_capacity(raw.rentals.len());
    for r in &raw.rentals {
        let (Some(origin), Some(dest)) = (r.rental_location_id, r.return_location_id) else {
            report.bump_rental(RentalDefect::MissingLocationRef);
            continue;
        };
        // Distinguish "location removed by rules 1–3" from "never existed".
        let origin_removed = removed_locations.contains(&origin);
        let dest_removed = removed_locations.contains(&dest);
        if origin_removed || dest_removed {
            report.bump_rental(RentalDefect::TouchesRemovedLocation);
            continue;
        }
        if !valid_locations.contains_key(&origin) || !valid_locations.contains_key(&dest) {
            report.bump_rental(RentalDefect::DanglingLocationRef);
            continue;
        }
        rentals.push(Rental {
            id: r.id,
            bike_id: r.bike_id,
            start_time: r.start_time,
            end_time: r.end_time,
            rental_location_id: origin,
            return_location_id: dest,
        });
    }

    // --- Rule 6: drop locations no surviving rental references. ---
    let referenced: HashSet<LocationId> = rentals
        .iter()
        .flat_map(|r| [r.rental_location_id, r.return_location_id])
        .collect();
    let mut locations: Vec<Location> = Vec::with_capacity(referenced.len());
    let mut ids: Vec<LocationId> = valid_locations.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        if referenced.contains(&id) {
            locations.push(valid_locations[&id].clone());
        } else {
            report.bump_location(LocationDefect::Unreferenced);
        }
    }

    report.stations_after = stations.len();
    report.locations_after = locations.len();
    report.rentals_after = rentals.len();

    CleaningOutcome {
        dataset: CleanDataset {
            stations,
            locations,
            rentals,
        },
        report,
    }
}

/// Audit counts of the streaming trip cleaner
/// ([`clean_trip_stream`]) — the city-scale analogue of
/// [`CleaningReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamCleanReport {
    /// Rows the stream yielded.
    pub rows_seen: usize,
    /// Rows that survived into the trip table.
    pub rows_kept: usize,
    /// Rows dropped because an endpoint was not in the station table
    /// (the streaming counterpart of rule 5, *dangling reference*).
    pub unknown_endpoint: usize,
}

/// Clean a stream of raw city trips straight into a columnar
/// [`TripTable`] — the streaming counterpart of [`clean_dataset`] for
/// city-scale feeds.
///
/// Each row is validated as it arrives (both endpoints must intern
/// against the sorted station table — a binary search, no hash map) and
/// either pushed into the table or counted as dropped; no row-of-structs
/// record ever materialises outside the iterator, so peak memory is the
/// columnar table itself (pre-reserved from `rows_hint`, the generator's
/// row-count hint) plus O(1) per row. Temporal keys derive at push time
/// exactly like every other table build path, keeping the result
/// indistinguishable from a batch-built table over the same survivors.
pub fn clean_trip_stream<I>(
    station_ids: Vec<StationNodeId>,
    rows_hint: usize,
    stream: I,
) -> (TripTable, StreamCleanReport)
where
    I: IntoIterator<Item = CityTrip>,
{
    let mut table = TripTable::with_capacity(station_ids, rows_hint);
    let mut report = StreamCleanReport::default();
    for trip in stream {
        report.rows_seen += 1;
        let (Some(src), Some(dst)) = (table.station_index(trip.src), table.station_index(trip.dst))
        else {
            report.unknown_endpoint += 1;
            continue;
        };
        table.push(src, dst, trip.start);
        report.rows_kept += 1;
    }
    (table, report)
}

/// The **spill-direct** variant of [`clean_trip_stream`]: survivors flow
/// straight to a disk-backed [`TripSpool`] instead of in-memory columns,
/// so peak memory is the station table plus a write buffer — independent
/// of the row count. Validation, intern lookups and temporal-key
/// derivation are byte-for-byte the same as the in-memory cleaner, and
/// the spool replays rows in exact insertion order, so a graph built
/// from the spool is bit-identical to one built from the
/// [`TripTable`] over the same stream.
///
/// `spool_base` picks where the run file lives (default: the system
/// temp dir); the file is removed when the spool drops. I/O failures —
/// unwritable base, disk full — surface as the [`std::io::Error`].
pub fn clean_trip_stream_spooled<I>(
    station_ids: Vec<StationNodeId>,
    stream: I,
    spool_base: Option<&std::path::Path>,
) -> std::io::Result<(TripSpool, StreamCleanReport)>
where
    I: IntoIterator<Item = CityTrip>,
{
    // The spool shares the table's sorted-intern contract, so a throwaway
    // empty table provides the identical binary-search endpoint lookup.
    let index = TripTable::new(station_ids.clone());
    let mut spool = TripSpool::create(station_ids, spool_base)?;
    let mut report = StreamCleanReport::default();
    for trip in stream {
        report.rows_seen += 1;
        let (Some(src), Some(dst)) = (index.station_index(trip.src), index.station_index(trip.dst))
        else {
            report.unknown_endpoint += 1;
            continue;
        };
        spool.push(src, dst, trip.start);
        report.rows_kept += 1;
    }
    spool.finish()?;
    Ok((spool, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RawLocation, RawRental};
    use crate::timeparse::Timestamp;

    fn ts(h: u32) -> Timestamp {
        Timestamp::from_ymd_hms(2020, 6, 1, h, 0, 0).unwrap()
    }

    fn station(id: u64, lat: f64, lon: f64) -> Station {
        Station {
            id,
            name: format!("S{id}"),
            position: GeoPoint::new(lat, lon).unwrap(),
        }
    }

    fn loc(id: u64, lat: f64, lon: f64) -> RawLocation {
        RawLocation {
            id,
            lat: Some(lat),
            lon: Some(lon),
            station_id: None,
        }
    }

    fn rental(id: u64, from: Option<u64>, to: Option<u64>) -> RawRental {
        RawRental {
            id,
            bike_id: 1,
            start_time: ts(8),
            end_time: ts(9),
            rental_location_id: from,
            return_location_id: to,
        }
    }

    /// A raw dataset exercising every cleaning rule exactly once.
    fn dirty_dataset() -> RawDataset {
        RawDataset {
            stations: vec![
                station(1, 53.3498, -6.2603), // fine (city centre)
                station(2, 51.8985, -8.4756), // Cork: outside Dublin
                station(3, 53.335, -6.13),    // Dublin Bay: not on land
            ],
            locations: vec![
                loc(10, 53.3498, -6.2603), // fine
                loc(11, 53.3400, -6.2500), // fine
                loc(12, 51.8985, -8.4756), // outside Dublin
                loc(13, 53.335, -6.13),    // in the bay
                RawLocation {
                    id: 14,
                    lat: None,
                    lon: Some(-6.2),
                    station_id: None,
                }, // missing lat
                loc(15, 53.3450, -6.2700), // will be unreferenced
            ],
            rentals: vec![
                rental(100, Some(10), Some(11)),  // fine
                rental(101, Some(10), Some(12)),  // touches out-of-Dublin location
                rental(102, Some(13), Some(11)),  // touches bay location
                rental(103, Some(14), Some(11)),  // touches missing-coords location
                rental(104, None, Some(11)),      // missing origin ref
                rental(105, Some(10), Some(999)), // dangling ref
                rental(106, Some(11), Some(10)),  // fine
            ],
        }
    }

    #[test]
    fn headline_counts() {
        let out = clean_dataset(&dirty_dataset());
        assert_eq!(out.report.stations_before, 3);
        assert_eq!(out.report.stations_after, 1);
        assert_eq!(out.report.locations_before, 6);
        // Surviving locations: 10, 11 (15 unreferenced, 12/13/14 defective).
        assert_eq!(out.report.locations_after, 2);
        assert_eq!(out.report.rentals_before, 7);
        assert_eq!(out.report.rentals_after, 2);
        assert_eq!(out.dataset.rentals.len(), 2);
        assert_eq!(out.dataset.locations.len(), 2);
    }

    #[test]
    fn per_rule_accounting() {
        let out = clean_dataset(&dirty_dataset());
        let l = &out.report.location_defects;
        assert_eq!(l.get("OutsideDublin"), Some(&1));
        assert_eq!(l.get("NotOnLand"), Some(&1));
        assert_eq!(l.get("MissingCoordinates"), Some(&1));
        assert_eq!(l.get("Unreferenced"), Some(&1));
        let r = &out.report.rental_defects;
        assert_eq!(r.get("TouchesRemovedLocation"), Some(&3));
        assert_eq!(r.get("MissingLocationRef"), Some(&1));
        assert_eq!(r.get("DanglingLocationRef"), Some(&1));
        assert_eq!(out.report.total_rentals_removed(), 5);
        assert_eq!(out.report.total_locations_removed(), 4);
        assert_eq!(out.report.total_stations_removed(), 2);
    }

    #[test]
    fn surviving_rentals_reference_surviving_locations() {
        let out = clean_dataset(&dirty_dataset());
        let ids: HashSet<u64> = out.dataset.locations.iter().map(|l| l.id).collect();
        for r in &out.dataset.rentals {
            assert!(ids.contains(&r.rental_location_id));
            assert!(ids.contains(&r.return_location_id));
        }
    }

    #[test]
    fn clean_dataset_is_idempotent_on_clean_input() {
        let out1 = clean_dataset(&dirty_dataset());
        // Re-wrap the cleaned data as raw and clean again: nothing changes.
        let raw2 = RawDataset {
            stations: out1.dataset.stations.clone(),
            locations: out1
                .dataset
                .locations
                .iter()
                .map(|l| RawLocation {
                    id: l.id,
                    lat: Some(l.position.lat()),
                    lon: Some(l.position.lon()),
                    station_id: l.station_id,
                })
                .collect(),
            rentals: out1
                .dataset
                .rentals
                .iter()
                .map(|r| RawRental {
                    id: r.id,
                    bike_id: r.bike_id,
                    start_time: r.start_time,
                    end_time: r.end_time,
                    rental_location_id: Some(r.rental_location_id),
                    return_location_id: Some(r.return_location_id),
                })
                .collect(),
        };
        let out2 = clean_dataset(&raw2);
        assert_eq!(out2.report.total_rentals_removed(), 0);
        assert_eq!(out2.report.total_locations_removed(), 0);
        assert_eq!(out2.report.total_stations_removed(), 0);
        assert_eq!(out2.dataset.rentals.len(), out1.dataset.rentals.len());
    }

    #[test]
    fn invalid_coordinates_are_their_own_defect() {
        let raw = RawDataset {
            stations: vec![station(1, 53.3498, -6.2603)],
            locations: vec![
                loc(10, 53.3498, -6.2603),
                RawLocation {
                    id: 11,
                    lat: Some(123.0),
                    lon: Some(-6.2),
                    station_id: None,
                },
            ],
            rentals: vec![rental(1, Some(10), Some(10))],
        };
        let out = clean_dataset(&raw);
        assert_eq!(
            out.report.location_defects.get("InvalidCoordinates"),
            Some(&1)
        );
        assert_eq!(out.dataset.locations.len(), 1);
    }

    #[test]
    fn empty_dataset_cleans_to_empty() {
        let out = clean_dataset(&RawDataset::default());
        assert_eq!(out.dataset.rentals.len(), 0);
        assert_eq!(out.dataset.locations.len(), 0);
        assert_eq!(out.report.total_rentals_removed(), 0);
    }

    #[test]
    fn stream_cleaner_drops_exactly_the_unknown_endpoints() {
        let t = |h| Timestamp::from_ymd_hms(2021, 6, 1, h, 0, 0).unwrap();
        let rows = vec![
            CityTrip {
                src: 1,
                dst: 2,
                start: t(8),
            },
            CityTrip {
                src: 0,
                dst: 2,
                start: t(9),
            }, // below id space
            CityTrip {
                src: 2,
                dst: 99,
                start: t(10),
            }, // above id space
            CityTrip {
                src: 3,
                dst: 1,
                start: t(11),
            },
        ];
        let (table, report) = clean_trip_stream(vec![1, 2, 3], rows.len(), rows);
        assert_eq!(report.rows_seen, 4);
        assert_eq!(report.rows_kept, 2);
        assert_eq!(report.unknown_endpoint, 2);
        assert_eq!(table.len(), 2);
        let edges: Vec<_> = table.station_edges().collect();
        assert_eq!(edges, vec![(1, 2, 1.0), (3, 1, 1.0)]);
    }

    #[test]
    fn spooled_cleaner_matches_in_memory_cleaner_row_for_row() {
        let cfg = crate::synth::CityConfig {
            seed: 42,
            stations: 128,
            zones: 8,
            trips: 3_000,
            dirty_per_10k: 200,
            within_zone_prob: 0.6,
            days: 7,
        };
        let (table, mem_report) = clean_trip_stream(
            cfg.station_ids(),
            cfg.trips as usize,
            crate::synth::city_trip_stream(&cfg),
        );
        let (spool, spool_report) = crate::clean::clean_trip_stream_spooled(
            cfg.station_ids(),
            crate::synth::city_trip_stream(&cfg),
            None,
        )
        .unwrap();
        assert_eq!(spool_report, mem_report);
        assert_eq!(spool.len(), table.len());
        assert_eq!(spool.station_ids(), table.station_ids());
        let mut k = 0usize;
        spool
            .for_each(&mut |s, d, day, hour| {
                assert_eq!(s, table.src()[k], "row {k} src");
                assert_eq!(d, table.dst()[k], "row {k} dst");
                assert_eq!(day, table.day()[k], "row {k} day");
                assert_eq!(hour, table.hour()[k], "row {k} hour");
                k += 1;
            })
            .unwrap();
        assert_eq!(k, table.len());
    }

    #[test]
    fn stream_cleaner_matches_city_dirty_count() {
        let cfg = crate::synth::CityConfig {
            seed: 11,
            stations: 256,
            zones: 8,
            trips: 5_000,
            dirty_per_10k: 300,
            within_zone_prob: 0.6,
            days: 7,
        };
        let stations = cfg.station_ids();
        let (table, report) = clean_trip_stream(
            stations,
            cfg.trips as usize,
            crate::synth::city_trip_stream(&cfg),
        );
        assert_eq!(report.rows_seen, cfg.trips as usize);
        assert_eq!(report.rows_kept + report.unknown_endpoint, report.rows_seen);
        assert!(report.unknown_endpoint > 0, "dirty rows should appear");
        assert_eq!(table.len(), report.rows_kept);
        // Every surviving endpoint interns against the station table.
        for (s, d, _) in table.station_edges() {
            assert!((1..=u64::from(cfg.stations)).contains(&s));
            assert!((1..=u64::from(cfg.stations)).contains(&d));
        }
    }
}
