//! Property-based tests for `moby_data::timeparse` — the civil-time
//! surface the streaming ingestion path leans on (every `TripBatch` row
//! derives its temporal keys from a parsed timestamp).
//!
//! Covers the parse → format → parse identity on the full valid domain,
//! component round-trips, and the rejection (not panic) of malformed
//! input.

use moby_data::timeparse::{Timestamp, Weekday};
use proptest::prelude::*;

/// Days in a month, mirroring the crate's validation rules.
fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}

/// Strategy for valid civil date-time components (1900–2199, every month
/// length and leap rule exercised).
fn civil() -> impl Strategy<Value = (i32, u32, u32, u32, u32, u32)> {
    (
        1900i32..2200,
        1u32..13,
        0u32..31,
        0u32..24,
        0u32..60,
        0u32..60,
    )
        .prop_map(|(y, mo, d_raw, h, mi, s)| (y, mo, 1 + d_raw % days_in_month(y, mo), h, mi, s))
}

/// Characters malformed-input strings are drawn from: digits, the ISO
/// separators, and assorted junk.
const CHARSET: &[u8] = b"0123456789-T: /.Zabz+";

proptest! {
    #[test]
    fn components_round_trip_through_timestamp(c in civil()) {
        let (y, mo, d, h, mi, s) = c;
        let t = Timestamp::from_ymd_hms(y, mo, d, h, mi, s).expect("valid components");
        prop_assert_eq!(t.ymd(), (y, mo, d));
        prop_assert_eq!(t.hour(), h);
        prop_assert_eq!(t.minute(), mi);
    }

    #[test]
    fn parse_format_parse_is_identity(c in civil()) {
        let (y, mo, d, h, mi, s) = c;
        let t = Timestamp::from_ymd_hms(y, mo, d, h, mi, s).unwrap();
        let rendered = t.to_iso();
        let reparsed = Timestamp::parse_iso(&rendered).expect("own rendering parses");
        prop_assert_eq!(reparsed, t);
        // And the rendering is a fixed point.
        prop_assert_eq!(reparsed.to_iso(), rendered);
        // The space-separated variant parses to the same instant.
        let spaced = rendered.replace('T', " ");
        prop_assert_eq!(Timestamp::parse_iso(&spaced).unwrap(), t);
    }

    #[test]
    fn raw_seconds_round_trip(secs in -3_000_000_000i64..5_000_000_000) {
        // Arbitrary epoch seconds (≈1875–2128) survive render + parse of
        // the whole-second component.
        let t = Timestamp(secs);
        let (y, mo, d) = t.ymd();
        let back = Timestamp::from_ymd_hms(y, mo, d, t.hour(), t.minute(), 0).unwrap();
        prop_assert_eq!(back.unix_seconds(), secs - secs.rem_euclid(60));
        prop_assert_eq!(Timestamp::parse_iso(&t.to_iso()).unwrap(), t);
    }

    #[test]
    fn weekday_advances_daily(c in civil(), offset in 0i64..4000) {
        let (y, mo, d, h, mi, s) = c;
        let t = Timestamp::from_ymd_hms(y, mo, d, h, mi, s).unwrap();
        let later = t.plus_seconds(offset * 86_400);
        let want = (t.weekday().index() as i64 + offset).rem_euclid(7) as u32;
        prop_assert_eq!(later.weekday(), Weekday::from_index(want).unwrap());
    }

    #[test]
    fn malformed_input_is_rejected_not_panicking(
        bytes in prop::collection::vec(0usize..CHARSET.len(), 0..40),
    ) {
        let s: String = bytes.iter().map(|&i| CHARSET[i] as char).collect();
        // Must never panic; when it parses, the value must round-trip
        // through the canonical rendering.
        if let Ok(t) = Timestamp::parse_iso(&s) {
            prop_assert_eq!(Timestamp::parse_iso(&t.to_iso()).unwrap(), t);
        }
    }

    #[test]
    fn out_of_range_components_are_rejected(c in civil()) {
        let (y, mo, d, h, mi, s) = c;
        let iso = |y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32| {
            format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}")
        };
        prop_assert!(Timestamp::parse_iso(&iso(y, 13 + mo % 80, d, h, mi, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, 0, d, h, mi, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, mo, 32 + d % 60, h, mi, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, mo, 0, h, mi, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, mo, d, 24 + h % 70, mi, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, mo, d, h, 60 + mi % 30, s)).is_err());
        prop_assert!(Timestamp::parse_iso(&iso(y, mo, d, h, mi, 60 + s % 30)).is_err());
        // A date with no time-of-day is not a timestamp.
        prop_assert!(Timestamp::parse_iso(&format!("{y:04}-{mo:02}-{d:02}")).is_err());
    }
}
