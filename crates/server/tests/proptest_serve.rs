//! Concurrent serving consistency proptest.
//!
//! The invariant (this PR's serving contract): a reader that loads a
//! snapshot while the writer publishes — at any interleaving — observes a
//! **complete** published state, old or new, never a mix. The check is
//! differential: a single-threaded model applies the same ingest/evict
//! chain through the same `SelectedNetwork` verbs and records the exact
//! expected fingerprint (trip count, Table III counters, bit-exact total
//! weights of both frozen graphs) for every epoch; concurrent readers at
//! {1,2,4} threads then fingerprint every snapshot they load and require
//! it to equal the model state *for that snapshot's own epoch*, with
//! epochs observed monotonically per reader.

use moby_core::pipeline::{ExpansionPipeline, PipelineConfig};
use moby_core::reassign::SelectedNetwork;
use moby_data::synth::{generate, SynthConfig};
use moby_data::trips::{TripBatch, WindowStart};
use moby_server::{answer, Request, ServeConfig, ServeSnapshot, SnapshotWriter, WriteOp};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// One generated chain step: op selector, batch rows as station-pool
/// indices with temporal keys, and the window start for evictions (the
/// vendored proptest has no `prop_oneof`, so the branch is a selector).
type Op = (u8, Vec<(u8, u8, u8, u8)>, u8, u8);

/// The expansion pipeline run once; every case clones the outcome.
fn base_network() -> &'static SelectedNetwork {
    static NET: OnceLock<SelectedNetwork> = OnceLock::new();
    NET.get_or_init(|| {
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&generate(&SynthConfig::small_test()))
            .expect("pipeline runs on the synthetic dataset")
            .selected
    })
}

fn op() -> impl Strategy<Value = Op> {
    (
        0u8..3,
        prop::collection::vec((0u8..32, 0u8..32, 0u8..7, 0u8..24), 0..12),
        0u8..7,
        0u8..24,
    )
}

/// Turn a generated op into a [`WriteOp`] over the network's real
/// station ids (indices wrap over the pinned intern table, so every
/// endpoint is valid by construction).
fn materialise(net: &SelectedNetwork, op: &Op) -> WriteOp {
    let ids = net.trips.station_ids();
    let mut batch = TripBatch::new();
    for &(s, d, day, hour) in &op.1 {
        batch.push_keyed(
            ids[s as usize % ids.len()],
            ids[d as usize % ids.len()],
            day,
            hour,
            1.0,
        );
    }
    if op.0 < 2 {
        WriteOp::Ingest(batch)
    } else {
        WriteOp::Advance(batch, WindowStart::new(op.2, op.3))
    }
}

/// A complete-state fingerprint: if a reader ever saw a half-published
/// snapshot, some component would disagree with the model state for the
/// epoch the snapshot claims to be.
#[derive(Clone, Debug, PartialEq)]
struct Fingerprint {
    trips: usize,
    total_trips: usize,
    total_edges: usize,
    directed_weight: u64,
    undirected_weight: u64,
}

fn fingerprint_network(net: &SelectedNetwork) -> Fingerprint {
    Fingerprint {
        trips: net.trips.len(),
        total_trips: net.table.total_trips,
        total_edges: net.table.total_edges,
        directed_weight: net.directed.total_weight().to_bits(),
        undirected_weight: net.undirected.total_weight().to_bits(),
    }
}

fn fingerprint_snapshot(snap: &ServeSnapshot) -> Fingerprint {
    Fingerprint {
        trips: snap.trip_count,
        total_trips: snap.table.total_trips,
        total_edges: snap.table.total_edges,
        directed_weight: snap.directed.total_weight().to_bits(),
        undirected_weight: snap.undirected.total_weight().to_bits(),
    }
}

/// Apply `ops` through a live writer while `readers` threads continuously
/// load snapshots, asserting every observation against the
/// single-threaded model.
fn check_serving(ops: &[Op], readers: usize) {
    let net = base_network();

    // Single-threaded model: the expected state at every epoch.
    let mut model = net.clone();
    let mut expected: HashMap<u64, Fingerprint> = HashMap::new();
    expected.insert(0, fingerprint_network(&model));
    for (i, op) in ops.iter().enumerate() {
        match materialise(net, op) {
            WriteOp::Ingest(batch) => {
                model.ingest_batch(&batch, Some(1)).expect("valid batch");
            }
            WriteOp::Advance(batch, window) => {
                model
                    .advance_window(&batch, window, Some(1))
                    .expect("valid window step");
            }
        }
        expected.insert(i as u64 + 1, fingerprint_network(&model));
    }
    let expected = Arc::new(expected);

    // Live run: readers race the writer across every publish boundary.
    let config = ServeConfig {
        threads: Some(1),
        ..Default::default()
    };
    let (mut writer, handle) = SnapshotWriter::new(net.clone(), config);
    let stop = Arc::new(AtomicBool::new(false));
    let probe = net.stations[0].id;
    let reader_threads: Vec<_> = (0..readers)
        .map(|_| {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observations = 0usize;
                while !stop.load(Ordering::Relaxed) || observations == 0 {
                    let snap = handle.current();
                    assert!(
                        snap.epoch >= last_epoch,
                        "reader went back in time: {} after {last_epoch}",
                        snap.epoch
                    );
                    last_epoch = snap.epoch;
                    let want = expected
                        .get(&snap.epoch)
                        .expect("every published epoch has a model state");
                    assert_eq!(
                        &fingerprint_snapshot(&snap),
                        want,
                        "epoch {} snapshot is not the complete published state",
                        snap.epoch
                    );
                    // Answers are coherent with the snapshot they ran on.
                    let a = answer(&snap, &Request::PageRank(probe));
                    assert_eq!(a.epoch, snap.epoch);
                    observations += 1;
                }
            })
        })
        .collect();

    for op in ops {
        writer
            .apply(materialise(net, op))
            .expect("ops only reference known stations");
    }
    stop.store(true, Ordering::Relaxed);
    for t in reader_threads {
        t.join().expect("reader observed an incomplete snapshot");
    }

    assert_eq!(handle.epoch(), ops.len() as u64);
    assert_eq!(
        fingerprint_snapshot(&handle.current()),
        expected[&(ops.len() as u64)],
        "final snapshot equals the model's final state"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn readers_always_observe_complete_snapshots(
        ops in prop::collection::vec(op(), 1..5),
    ) {
        for readers in [1usize, 2, 4] {
            check_serving(&ops, readers);
        }
    }
}

#[test]
fn eviction_heavy_chain_serves_consistently() {
    // Deterministic edge chain: evict everything, serve from the empty
    // window, refill, evict again — at 4 reader threads.
    let ops: Vec<Op> = vec![
        (2, vec![], 6, 23),                                         // evict almost all
        (0, vec![(1, 2, 0, 5), (3, 4, 1, 9), (5, 6, 2, 12)], 0, 0), // refill
        (2, vec![(7, 8, 6, 22)], 6, 20),                            // evict + ingest
        (0, vec![], 0, 0),                                          // empty op
    ];
    check_serving(&ops, 4);
}
