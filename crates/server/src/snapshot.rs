//! Epoch-published network snapshots and the per-snapshot metric cache.
//!
//! The publication scheme is a fixed ring of `RwLock<Arc<ServeSnapshot>>`
//! slots plus an atomic epoch counter. A reader loads the epoch, clones
//! the `Arc` out of slot `epoch % SLOTS`, and is done — the lock is held
//! for two instructions and only guards the pointer swap itself, never a
//! computation, so readers never wait on the writer's work. The writer
//! builds each successor snapshot privately, installs it in the *next*
//! slot under that slot's write lock, drops the displaced `Arc` outside
//! the lock, and then advances the epoch with a release store. A reader
//! can therefore only contend with the writer if the writer laps the
//! entire ring inside the reader's two-instruction window; even then the
//! reader observes some *complete* snapshot — old or new, never a mix —
//! because snapshots are immutable and swapped as whole `Arc`s.
//!
//! Reclamation is epoch-based through the ring itself: a slot keeps its
//! snapshot alive until the writer laps it (`SLOTS` publishes later), so
//! at most `SLOTS` snapshots plus whatever readers still hold are live at
//! once, and dropping the last `Arc` frees the snapshot — no garbage
//! collector, no deferred free list.

use moby_community::{louvain_csr, louvain_seeded_active, LouvainConfig, Partition};
use moby_core::reassign::{FinalStation, SelectedGraphTable, SelectedNetwork, WindowOutcome};
use moby_core::Result;
use moby_data::trips::{AppendOutcome, TripBatch, WindowStart};
use moby_geo::KdTree;
use moby_graph::metrics::{pagerank_csr, DegreeSummary, PageRankConfig};
use moby_graph::{CsrGraph, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of ring slots. Publishing `SLOTS` epochs inside a reader's
/// epoch-load → slot-lock window is the only way a reader can contend
/// with the writer, so a handful of slots makes contention effectively
/// impossible while bounding the snapshots the ring itself keeps alive.
const SLOTS: u64 = 8;

/// Tuning for the serving layer's metric refreshes.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Worker-thread override for graph mutation and metric refreshes.
    /// `None` resolves `MOBY_THREADS`, then the machine's parallelism.
    pub threads: Option<usize>,
    /// Louvain settings for the cold start and the seeded refreshes.
    pub louvain: LouvainConfig,
    /// PageRank settings for the cold start and the refreshes.
    pub pagerank: PageRankConfig,
}

/// Per-snapshot metric results, each tagged with the epoch it was
/// computed at so carry-forward across publishes is observable.
///
/// Invalidation rules (enforced by [`SnapshotWriter`]):
///
/// * the kd-tree and station directory are built **once** — the station
///   set of a selected network is pinned (eviction never drops
///   stations), so epoch 0's tree serves every epoch;
/// * PageRank depends only on the **directed** graph and is recomputed
///   iff a write op changed it;
/// * each degree summary depends on its own graph layer;
/// * the community partition depends on the **undirected** graph and is
///   refreshed with [`louvain_seeded_active`] seeded from the previous
///   epoch's partition — bit-identical to a whole-graph seeded run, but
///   only dirty nodes and their frontier are swept after the first pass.
#[derive(Debug, Clone)]
pub struct MetricCache {
    /// Station positions → ids, built at epoch 0 and carried forever.
    pub kd: Arc<KdTree<NodeId>>,
    /// Weighted PageRank over the directed trip graph.
    pub pagerank: Arc<HashMap<NodeId, f64>>,
    /// Epoch [`MetricCache::pagerank`] was computed at.
    pub pagerank_epoch: u64,
    /// Degree summary of the directed trip graph (`None` for an empty
    /// graph).
    pub degrees_directed: Option<DegreeSummary>,
    /// Degree summary of the undirected trip graph.
    pub degrees_undirected: Option<DegreeSummary>,
    /// Epoch the degree summaries were computed at.
    pub degrees_epoch: u64,
    /// Louvain partition of the undirected trip graph.
    pub partition: Arc<Partition>,
    /// Epoch [`MetricCache::partition`] was computed at.
    pub partition_epoch: u64,
}

impl MetricCache {
    /// Cold-start the cache for epoch 0 of `network`.
    fn bootstrap(network: &SelectedNetwork, config: &ServeConfig) -> MetricCache {
        let kd = KdTree::build(
            network
                .stations
                .iter()
                .map(|s| (s.position, s.id))
                .collect(),
        );
        MetricCache {
            kd: Arc::new(kd),
            pagerank: Arc::new(pagerank_csr(&network.directed, &config.pagerank)),
            pagerank_epoch: 0,
            degrees_directed: DegreeSummary::for_graph_csr(&network.directed),
            degrees_undirected: DegreeSummary::for_graph_csr(&network.undirected),
            degrees_epoch: 0,
            partition: Arc::new(louvain_csr(&network.undirected, &config.louvain)),
            partition_epoch: 0,
        }
    }

    /// Advance the cache to `epoch`: recompute what the write op touched,
    /// carry the rest forward by `Arc` clone.
    fn advance(
        &self,
        network: &SelectedNetwork,
        epoch: u64,
        directed_changed: bool,
        undirected_changed: bool,
        config: &ServeConfig,
    ) -> MetricCache {
        let (pagerank, pagerank_epoch) = if directed_changed {
            (
                Arc::new(pagerank_csr(&network.directed, &config.pagerank)),
                epoch,
            )
        } else {
            (Arc::clone(&self.pagerank), self.pagerank_epoch)
        };
        let (degrees_directed, degrees_undirected, degrees_epoch) =
            if directed_changed || undirected_changed {
                (
                    DegreeSummary::for_graph_csr(&network.directed),
                    DegreeSummary::for_graph_csr(&network.undirected),
                    epoch,
                )
            } else {
                (
                    self.degrees_directed.clone(),
                    self.degrees_undirected.clone(),
                    self.degrees_epoch,
                )
            };
        let (partition, partition_epoch) = if undirected_changed {
            (
                Arc::new(louvain_seeded_active(
                    &network.undirected,
                    &self.partition,
                    &config.louvain,
                )),
                epoch,
            )
        } else {
            (Arc::clone(&self.partition), self.partition_epoch)
        };
        MetricCache {
            kd: Arc::clone(&self.kd),
            pagerank,
            pagerank_epoch,
            degrees_directed,
            degrees_undirected,
            degrees_epoch,
            partition,
            partition_epoch,
        }
    }
}

/// One immutable published state of the serving layer. Everything heavy
/// (station directory, adjacency slabs, metric maps) is `Arc`-shared with
/// the writer's private network and with neighbouring epochs, so a
/// snapshot costs O(Table III) to assemble, not O(graph).
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// The epoch this snapshot was published at (0 = initial build).
    pub epoch: u64,
    /// The pinned station directory (pre-existing first, sorted by id).
    pub stations: Arc<Vec<FinalStation>>,
    /// Frozen directed trip graph.
    pub directed: CsrGraph,
    /// Frozen undirected trip graph.
    pub undirected: CsrGraph,
    /// Table III counters at this epoch.
    pub table: SelectedGraphTable,
    /// Rows in the trip table at this epoch.
    pub trip_count: usize,
    /// Cached metric results with per-metric provenance epochs.
    pub metrics: MetricCache,
}

impl ServeSnapshot {
    /// Look up a station by id (binary search over the sorted directory —
    /// pre-existing and selected stations are each sorted, so fall back
    /// to a linear scan only across the two runs).
    pub fn station(&self, id: NodeId) -> Option<&FinalStation> {
        self.stations.iter().find(|s| s.id == id)
    }
}

/// The reader-facing handle: an epoch ring of published snapshots.
///
/// Cheap to share (`Arc<SnapshotHandle>`); every reader thread calls
/// [`SnapshotHandle::current`] per query (or per query burst) and holds
/// the returned `Arc` for as long as it needs one coherent view.
#[derive(Debug)]
pub struct SnapshotHandle {
    epoch: AtomicU64,
    slots: Vec<RwLock<Arc<ServeSnapshot>>>,
}

impl SnapshotHandle {
    fn new(initial: ServeSnapshot) -> Arc<SnapshotHandle> {
        let initial = Arc::new(initial);
        let slots = (0..SLOTS)
            .map(|_| RwLock::new(Arc::clone(&initial)))
            .collect();
        Arc::new(SnapshotHandle {
            epoch: AtomicU64::new(0),
            slots,
        })
    }

    /// The most recently published snapshot.
    ///
    /// Lock-free in practice: the slot's read lock guards only the `Arc`
    /// clone (two instructions), and the writer touches a slot only once
    /// per `SLOTS` publishes — so readers proceed without ever waiting on
    /// snapshot construction, metric refresh, or graph mutation. The
    /// returned snapshot is always complete; it is the one for the loaded
    /// epoch or, if the writer lapped the ring inside the load window, a
    /// strictly newer one.
    pub fn current(&self) -> Arc<ServeSnapshot> {
        let e = self.epoch.load(Ordering::Acquire);
        let slot = &self.slots[(e % SLOTS) as usize];
        let guard = slot.read().expect("snapshot slot poisoned");
        Arc::clone(&guard)
    }

    /// The epoch of the most recent publish (0 until the writer publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Install `snap` as the next epoch. Writer-side only.
    fn publish(&self, snap: ServeSnapshot) {
        // The single writer is the only mutator of `epoch`, so a relaxed
        // load reads its own last store.
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        debug_assert_eq!(snap.epoch, next, "epochs advance one at a time");
        let slot = &self.slots[(next % SLOTS) as usize];
        let displaced = {
            let mut guard = slot.write().expect("snapshot slot poisoned");
            std::mem::replace(&mut *guard, Arc::new(snap))
        };
        // Release-publish the epoch *after* the slot holds the snapshot,
        // so a reader that observes `next` finds it installed.
        self.epoch.store(next, Ordering::Release);
        // Drop the displaced snapshot outside the slot lock: if this is
        // the last Arc, freeing the slabs must not extend the critical
        // section readers share.
        drop(displaced);
    }
}

/// A mutation applied by the single writer between two epochs.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Append a trip batch
    /// ([`SelectedNetwork::ingest_batch`]).
    Ingest(TripBatch),
    /// Evict everything before the window, then append the batch
    /// ([`SelectedNetwork::advance_window`]).
    Advance(TripBatch, WindowStart),
}

/// What one [`SnapshotWriter::apply`] did, for callers that chain the
/// outcome into the temporal layer or assert cache behaviour.
#[derive(Debug)]
pub struct PublishOutcome {
    /// The snapshot that was published.
    pub snapshot: Arc<ServeSnapshot>,
    /// The window outcome (`appended` only for [`WriteOp::Ingest`]).
    pub appended: AppendOutcome,
    /// The eviction half, when the op was [`WriteOp::Advance`].
    pub evicted: Option<moby_data::trips::EvictOutcome>,
}

/// The single writer: owns the private successor network and the only
/// publishing reference to the ring.
///
/// Clone-free pipeline: `SelectedNetwork`'s graphs and station directory
/// are `Arc`-backed, so the per-epoch snapshot assembly copies Table III
/// and bumps reference counts — the trip table and property store stay
/// private to the writer and are never published.
#[derive(Debug)]
pub struct SnapshotWriter {
    handle: Arc<SnapshotHandle>,
    network: SelectedNetwork,
    config: ServeConfig,
}

impl SnapshotWriter {
    /// Take over `network` as the serving state, publish epoch 0, and
    /// return the writer plus the shared reader handle.
    pub fn new(
        network: SelectedNetwork,
        config: ServeConfig,
    ) -> (SnapshotWriter, Arc<SnapshotHandle>) {
        let metrics = MetricCache::bootstrap(&network, &config);
        let initial = ServeSnapshot {
            epoch: 0,
            stations: Arc::clone(&network.stations),
            directed: network.directed.clone(),
            undirected: network.undirected.clone(),
            table: network.table.clone(),
            trip_count: network.trips.len(),
            metrics,
        };
        let handle = SnapshotHandle::new(initial);
        (
            SnapshotWriter {
                handle: Arc::clone(&handle),
                network,
                config,
            },
            handle,
        )
    }

    /// The shared reader handle.
    pub fn handle(&self) -> Arc<SnapshotHandle> {
        Arc::clone(&self.handle)
    }

    /// The writer's private successor network (for offline verification:
    /// the bench rebuilds dense CSR from these trips and panic-checks
    /// bit-identity against the published snapshot).
    pub fn network(&self) -> &SelectedNetwork {
        &self.network
    }

    /// Apply one write op to the private successor and publish it as the
    /// next epoch.
    ///
    /// # Errors
    ///
    /// Propagates the network's validation errors (unknown stations).
    /// A failed op publishes nothing and leaves the successor untouched.
    pub fn apply(&mut self, op: WriteOp) -> Result<PublishOutcome> {
        let epoch = self.handle.epoch.load(Ordering::Relaxed) + 1;
        let (appended, evicted) = match op {
            WriteOp::Ingest(batch) => {
                let out = self.network.ingest_batch(&batch, self.config.threads)?;
                (out, None)
            }
            WriteOp::Advance(batch, window) => {
                let WindowOutcome { evicted, appended } =
                    self.network
                        .advance_window(&batch, window, self.config.threads)?;
                (appended, Some(evicted))
            }
        };
        // Both trip graphs are projections of the same trip table, so any
        // surviving-row change touches both layers; an empty batch with a
        // no-op eviction touches neither (the network rebuilt identical
        // graphs, and the cache carries every metric forward).
        let appended_rows = self.network.trips.len() - appended.batch_start;
        let changed = appended_rows > 0 || evicted.as_ref().map(|e| !e.is_noop()).unwrap_or(false);
        let metrics = self.handle.current().metrics.advance(
            &self.network,
            epoch,
            changed,
            changed,
            &self.config,
        );
        let snap = ServeSnapshot {
            epoch,
            stations: Arc::clone(&self.network.stations),
            directed: self.network.directed.clone(),
            undirected: self.network.undirected.clone(),
            table: self.network.table.clone(),
            trip_count: self.network.trips.len(),
            metrics,
        };
        self.handle.publish(snap);
        Ok(PublishOutcome {
            snapshot: self.handle.current(),
            appended,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moby_core::pipeline::{ExpansionPipeline, PipelineConfig};
    use moby_data::synth::{generate, SynthConfig};
    use moby_graph::build_dense_csr;

    fn network() -> SelectedNetwork {
        let raw = generate(&SynthConfig::small_test());
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .expect("pipeline runs")
            .selected
    }

    fn replay_batch(net: &SelectedNetwork, rows: usize) -> TripBatch {
        let mut batch = TripBatch::new();
        for k in 0..rows.min(net.trips.len()) {
            batch.push_keyed(
                net.trips.station_id(net.trips.src()[k]),
                net.trips.station_id(net.trips.dst()[k]),
                net.trips.day()[k],
                net.trips.hour()[k],
                1.0,
            );
        }
        batch
    }

    #[test]
    fn epoch_zero_shares_graph_storage_with_the_network() {
        let net = network();
        let (writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let snap = handle.current();
        assert_eq!(snap.epoch, 0);
        assert_eq!(handle.epoch(), 0);
        assert!(snap.directed.shares_storage(&writer.network().directed));
        assert!(snap.undirected.shares_storage(&writer.network().undirected));
        assert_eq!(snap.trip_count, writer.network().trips.len());
    }

    #[test]
    fn ingest_publishes_next_epoch_and_matches_offline_rebuild() {
        let net = network();
        let (mut writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let batch = replay_batch(writer.network(), 30);
        let out = writer.apply(WriteOp::Ingest(batch)).expect("valid batch");
        assert_eq!(out.snapshot.epoch, 1);
        assert_eq!(handle.current().epoch, 1);

        // Published graphs are bit-identical to a from-scratch rebuild
        // over the writer's trip table.
        let trips = &writer.network().trips;
        for (directed, got) in [
            (true, &out.snapshot.directed),
            (false, &out.snapshot.undirected),
        ] {
            let want = build_dense_csr(
                directed,
                trips.station_ids().to_vec(),
                trips.src(),
                trips.dst(),
                trips.weights(),
                Some(1),
            );
            assert_eq!(got, &want);
            assert_eq!(got.total_weight().to_bits(), want.total_weight().to_bits());
        }
    }

    #[test]
    fn empty_op_carries_every_metric_forward() {
        let net = network();
        let (mut writer, _handle) = SnapshotWriter::new(net, ServeConfig::default());
        let before = writer.handle().current();
        let out = writer
            .apply(WriteOp::Ingest(TripBatch::new()))
            .expect("empty batch is valid");
        let m = &out.snapshot.metrics;
        assert_eq!(out.snapshot.epoch, 1);
        assert!(Arc::ptr_eq(&m.pagerank, &before.metrics.pagerank));
        assert!(Arc::ptr_eq(&m.partition, &before.metrics.partition));
        assert!(Arc::ptr_eq(&m.kd, &before.metrics.kd));
        assert_eq!(m.pagerank_epoch, 0);
        assert_eq!(m.partition_epoch, 0);
        assert_eq!(m.degrees_epoch, 0);
    }

    #[test]
    fn mutating_op_refreshes_metrics_with_seeded_partition() {
        let net = network();
        let config = ServeConfig::default();
        let (mut writer, _handle) = SnapshotWriter::new(net, config.clone());
        let before = writer.handle().current();
        let batch = replay_batch(writer.network(), 40);
        let out = writer.apply(WriteOp::Ingest(batch)).expect("valid batch");
        let m = &out.snapshot.metrics;
        assert_eq!(m.pagerank_epoch, 1);
        assert_eq!(m.partition_epoch, 1);
        assert_eq!(m.degrees_epoch, 1);
        assert!(Arc::ptr_eq(&m.kd, &before.metrics.kd), "kd always carried");
        // The seeded refresh equals a cold PageRank/Louvain recompute on
        // the published graph (the active-set path is bit-identical to
        // the whole-graph seeded sweep; seeding can only refine).
        let want_pr = pagerank_csr(&out.snapshot.directed, &config.pagerank);
        assert_eq!(*m.pagerank, want_pr);
    }

    #[test]
    fn advance_window_publishes_evicted_state() {
        let net = network();
        let (mut writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let trips_before = writer.network().trips.len();
        let out = writer
            .apply(WriteOp::Advance(TripBatch::new(), WindowStart::new(6, 0)))
            .expect("window advances");
        let evicted = out.evicted.expect("advance reports the eviction");
        assert!(evicted.evicted_rows() > 0, "window must expire rows");
        assert_eq!(
            out.snapshot.trip_count,
            trips_before - evicted.evicted_rows()
        );
        assert_eq!(out.snapshot.metrics.partition_epoch, 1);
        assert_eq!(handle.current().table.total_trips, out.snapshot.trip_count);
    }

    #[test]
    fn failed_op_publishes_nothing() {
        let net = network();
        let (mut writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let mut batch = TripBatch::new();
        batch.push_keyed(u64::MAX - 1, u64::MAX - 2, 0, 0, 1.0);
        assert!(writer.apply(WriteOp::Ingest(batch)).is_err());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.current().epoch, 0);
    }

    #[test]
    fn ring_keeps_older_snapshots_alive_for_holders() {
        let net = network();
        let (mut writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let epoch0 = handle.current();
        // Publish more epochs than the ring has slots; the held Arc keeps
        // epoch 0 valid throughout.
        for _ in 0..12 {
            writer
                .apply(WriteOp::Ingest(TripBatch::new()))
                .expect("empty batches");
        }
        assert_eq!(handle.epoch(), 12);
        assert_eq!(epoch0.epoch, 0);
        assert_eq!(epoch0.trip_count, writer.network().trips.len());
        assert_eq!(handle.current().epoch, 12);
    }
}
