//! # moby-server — snapshot-isolated serving under live ingestion
//!
//! The "millions of users" arm of the roadmap: queries are served from a
//! frozen [`SelectedNetwork`](moby_core::reassign::SelectedNetwork)
//! snapshot while a single writer keeps ingesting trip batches and
//! advancing the retention window. Three pieces compose:
//!
//! * [`SnapshotHandle`] — an epoch ring of `Arc`'d [`ServeSnapshot`]s.
//!   Readers never block on the writer: [`SnapshotHandle::current`] is an
//!   atomic epoch load plus an `Arc` clone out of the epoch's slot. The
//!   frozen `CsrGraph` makes this cheap *and* sound — a snapshot is
//!   immutable by construction, so sharing it is a reference-count bump
//!   and "snapshot isolation" needs no copying, locking, or versioned
//!   pages (see DESIGN.md, "Serving layer").
//! * [`SnapshotWriter`] — owns the private successor network. Each
//!   [`WriteOp`] (`ingest_batch` / `advance_window`) is applied to that
//!   private copy and the result is published as the next epoch with one
//!   pointer swap; readers holding older epochs keep their snapshots
//!   alive through the `Arc` until they drop them.
//! * [`QueryPool`] — a fixed-size std-only worker pool serving
//!   station-lookup, k-nearest (kd-tree), community-membership, PageRank
//!   and degree-summary [`Request`]s, each answered against one coherent
//!   snapshot.
//!
//! Per-snapshot metric results live in a [`MetricCache`]: PageRank, the
//! degree summaries and the Louvain partition are carried forward
//! *unchanged* when a write op does not touch the relevant graph layer,
//! and refreshed (the partition via the seeded
//! [`louvain_seeded_active`](moby_community::louvain_seeded_active) warm
//! start) when it does. Every cached metric records the epoch it was
//! computed at, so carry-forward is observable and testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod snapshot;

pub use service::{answer, Answer, QueryPool, Request, Response};
pub use snapshot::{
    MetricCache, PublishOutcome, ServeConfig, ServeSnapshot, SnapshotHandle, SnapshotWriter,
    WriteOp,
};
