//! The request loop: a fixed-size std-only worker pool answering queries
//! against the current snapshot.
//!
//! Every query is answered against exactly **one** snapshot — the worker
//! grabs [`SnapshotHandle::current`] once per request, so a response never
//! mixes state from two epochs even while the writer publishes between
//! requests. [`answer`] is the pure per-snapshot evaluation function; the
//! pool only adds dispatch, which keeps the serving semantics trivially
//! testable without threads.

use crate::snapshot::{ServeSnapshot, SnapshotHandle};
use moby_core::reassign::FinalStation;
use moby_geo::GeoPoint;
use moby_graph::metrics::DegreeSummary;
use moby_graph::NodeId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A serving-layer query.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look up a station's directory entry by id.
    Station(NodeId),
    /// The `k` stations nearest to a point, sorted by ascending distance
    /// (metres).
    Nearest {
        /// Query position.
        at: GeoPoint,
        /// Number of neighbours.
        k: usize,
    },
    /// The community a station belongs to (undirected Louvain partition).
    Community(NodeId),
    /// A station's weighted PageRank score on the directed trip graph.
    PageRank(NodeId),
    /// The degree summary of one graph layer.
    Degrees {
        /// `true` for the directed trip graph, `false` for the
        /// undirected projection.
        directed: bool,
    },
}

/// The answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Directory entry, if the station exists.
    Station(Option<FinalStation>),
    /// `(station id, distance in metres)` pairs, nearest first. Empty
    /// when the network has no stations.
    Nearest(Vec<(NodeId, f64)>),
    /// Community index, if the station is in the partition.
    Community(Option<usize>),
    /// PageRank score, if the station is in the graph.
    PageRank(Option<f64>),
    /// Degree summary (`None` for an empty graph).
    Degrees(Option<DegreeSummary>),
}

/// A [`Response`] plus the epoch of the snapshot that produced it, so
/// clients (and the consistency proptest) can correlate answers with
/// published states.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Epoch of the snapshot the query ran against.
    pub epoch: u64,
    /// The response payload.
    pub response: Response,
}

/// Answer `req` against one coherent snapshot.
pub fn answer(snapshot: &ServeSnapshot, req: &Request) -> Answer {
    let response = match req {
        Request::Station(id) => Response::Station(snapshot.station(*id).cloned()),
        Request::Nearest { at, k } => {
            let hits = snapshot
                .metrics
                .kd
                .k_nearest(*at, *k)
                .map(|hits| hits.into_iter().map(|(_, &id, d)| (id, d)).collect())
                .unwrap_or_default();
            Response::Nearest(hits)
        }
        Request::Community(id) => Response::Community(snapshot.metrics.partition.community_of(*id)),
        Request::PageRank(id) => Response::PageRank(snapshot.metrics.pagerank.get(id).copied()),
        Request::Degrees { directed } => Response::Degrees(if *directed {
            snapshot.metrics.degrees_directed.clone()
        } else {
            snapshot.metrics.degrees_undirected.clone()
        }),
    };
    Answer {
        epoch: snapshot.epoch,
        response,
    }
}

struct Job {
    req: Request,
    reply: Sender<Answer>,
}

/// A fixed-size worker pool serving [`Request`]s from the current
/// snapshot.
///
/// Workers pull jobs off one shared queue; each job is answered against
/// the snapshot current *at dispatch time* on that worker. Dropping the
/// pool closes the queue and joins every worker.
pub struct QueryPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryPool {
    /// Spawn `workers` threads (at least 1) serving from `handle`.
    pub fn new(handle: Arc<SnapshotHandle>, workers: usize) -> QueryPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || loop {
                    // Hold the queue lock only for the dequeue; the query
                    // itself runs unlocked so workers serve in parallel.
                    let job = match rx.lock().expect("job queue poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => return, // pool dropped, queue closed
                    };
                    let snapshot = handle.current();
                    // A disconnected reply receiver just means the client
                    // gave up on this answer; serving continues.
                    let _ = job.reply.send(answer(&snapshot, &job.req));
                })
            })
            .collect();
        QueryPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a request; the returned channel yields the [`Answer`].
    pub fn submit(&self, req: Request) -> Receiver<Answer> {
        let (reply, rx) = channel();
        self.tx
            .as_ref()
            .expect("pool is alive until drop")
            .send(Job { req, reply })
            .expect("workers outlive the sender");
        rx
    }

    /// Submit and wait for the answer.
    pub fn query(&self, req: Request) -> Answer {
        self.submit(req)
            .recv()
            .expect("worker answers every accepted job")
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ServeConfig, SnapshotWriter, WriteOp};
    use moby_core::pipeline::{ExpansionPipeline, PipelineConfig};
    use moby_core::reassign::SelectedNetwork;
    use moby_data::synth::{generate, SynthConfig};
    use moby_data::trips::TripBatch;

    fn network() -> SelectedNetwork {
        let raw = generate(&SynthConfig::small_test());
        ExpansionPipeline::new(PipelineConfig::default())
            .run(&raw)
            .expect("pipeline runs")
            .selected
    }

    #[test]
    fn pool_answers_match_direct_evaluation() {
        let net = network();
        let station = net.stations[0].clone();
        let (writer, handle) = SnapshotWriter::new(net, ServeConfig::default());
        let pool = QueryPool::new(writer.handle(), 3);
        let snap = handle.current();
        let requests = [
            Request::Station(station.id),
            Request::Nearest {
                at: station.position,
                k: 3,
            },
            Request::Community(station.id),
            Request::PageRank(station.id),
            Request::Degrees { directed: true },
            Request::Degrees { directed: false },
        ];
        for req in requests {
            let got = pool.query(req.clone());
            assert_eq!(got, answer(&snap, &req), "pooled answer for {req:?}");
            assert_eq!(got.epoch, 0);
        }
    }

    #[test]
    fn nearest_returns_the_station_itself_first() {
        let net = network();
        let station = net.stations[0].clone();
        let (writer, _handle) = SnapshotWriter::new(net, ServeConfig::default());
        let pool = QueryPool::new(writer.handle(), 2);
        let got = pool.query(Request::Nearest {
            at: station.position,
            k: 2,
        });
        let Response::Nearest(hits) = got.response else {
            panic!("wrong response variant");
        };
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, station.id);
        assert!(hits[0].1 <= hits[1].1, "sorted by distance");
    }

    #[test]
    fn unknown_ids_answer_none_not_panic() {
        let net = network();
        let (writer, _handle) = SnapshotWriter::new(net, ServeConfig::default());
        let pool = QueryPool::new(writer.handle(), 1);
        let missing = u64::MAX - 7;
        assert_eq!(
            pool.query(Request::Station(missing)).response,
            Response::Station(None)
        );
        assert_eq!(
            pool.query(Request::Community(missing)).response,
            Response::Community(None)
        );
        assert_eq!(
            pool.query(Request::PageRank(missing)).response,
            Response::PageRank(None)
        );
    }

    #[test]
    fn answers_observe_new_epochs_after_publish() {
        let net = network();
        let batch = {
            let mut b = TripBatch::new();
            for k in 0..10.min(net.trips.len()) {
                b.push_keyed(
                    net.trips.station_id(net.trips.src()[k]),
                    net.trips.station_id(net.trips.dst()[k]),
                    net.trips.day()[k],
                    net.trips.hour()[k],
                    1.0,
                );
            }
            b
        };
        let (mut writer, _handle) = SnapshotWriter::new(net, ServeConfig::default());
        let pool = QueryPool::new(writer.handle(), 2);
        assert_eq!(pool.query(Request::Degrees { directed: true }).epoch, 0);
        writer.apply(WriteOp::Ingest(batch)).expect("valid batch");
        assert_eq!(pool.query(Request::Degrees { directed: true }).epoch, 1);
    }
}
