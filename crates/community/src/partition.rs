//! Community assignments.

use moby_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// An assignment of nodes to communities.
///
/// Community labels are plain `usize` values; [`Partition::renumbered`]
/// canonicalises them to `0..k` in order of each community's smallest node
/// id, which keeps reports and tests deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Partition {
    assignment: HashMap<NodeId, usize>,
}

impl Partition {
    /// An empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an explicit assignment.
    pub fn from_assignment(assignment: HashMap<NodeId, usize>) -> Self {
        Self { assignment }
    }

    /// A partition that puts every listed node in its own singleton
    /// community.
    pub fn singletons(nodes: &[NodeId]) -> Self {
        Self {
            assignment: nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
        }
    }

    /// Assign a node to a community.
    pub fn assign(&mut self, node: NodeId, community: usize) {
        self.assignment.insert(node, community);
    }

    /// The community of a node, if assigned.
    pub fn community_of(&self, node: NodeId) -> Option<usize> {
        self.assignment.get(&node).copied()
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether no node is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of distinct communities.
    pub fn community_count(&self) -> usize {
        let mut seen: Vec<usize> = self.assignment.values().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Iterate over `(node, community)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.assignment.iter().map(|(&n, &c)| (n, c))
    }

    /// The members of every community, keyed by community label, each member
    /// list sorted ascending.
    pub fn communities(&self) -> BTreeMap<usize, Vec<NodeId>> {
        let mut out: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for (&n, &c) in &self.assignment {
            out.entry(c).or_default().push(n);
        }
        for members in out.values_mut() {
            members.sort_unstable();
        }
        out
    }

    /// A copy with community labels renumbered to `0..k`, ordered by each
    /// community's smallest member node id.
    pub fn renumbered(&self) -> Partition {
        let communities = self.communities();
        let mut order: Vec<(usize, NodeId)> = communities
            .iter()
            .map(|(&label, members)| (label, members[0]))
            .collect();
        order.sort_by_key(|&(_, min_node)| min_node);
        let relabel: HashMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(new, &(old, _))| (old, new))
            .collect();
        Partition {
            assignment: self
                .assignment
                .iter()
                .map(|(&n, &c)| (n, relabel[&c]))
                .collect(),
        }
    }

    /// The size of each community, keyed by label.
    pub fn sizes(&self) -> BTreeMap<usize, usize> {
        let mut out: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in self.assignment.values() {
            *out.entry(c).or_default() += 1;
        }
        out
    }
}

impl FromIterator<(NodeId, usize)> for Partition {
    fn from_iter<T: IntoIterator<Item = (NodeId, usize)>>(iter: T) -> Self {
        Self {
            assignment: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_assignment() {
        let mut p = Partition::new();
        assert!(p.is_empty());
        p.assign(1, 10);
        p.assign(2, 10);
        p.assign(3, 20);
        assert_eq!(p.len(), 3);
        assert_eq!(p.community_of(1), Some(10));
        assert_eq!(p.community_of(99), None);
        assert_eq!(p.community_count(), 2);
    }

    #[test]
    fn singletons() {
        let p = Partition::singletons(&[5, 6, 7]);
        assert_eq!(p.community_count(), 3);
        assert_ne!(p.community_of(5), p.community_of(6));
    }

    #[test]
    fn communities_are_sorted() {
        let p: Partition = [(3u64, 1usize), (1, 1), (2, 0)].into_iter().collect();
        let c = p.communities();
        assert_eq!(c[&1], vec![1, 3]);
        assert_eq!(c[&0], vec![2]);
    }

    #[test]
    fn renumbering_is_canonical() {
        // Labels 7 and 3; community with node 1 should become label 0.
        let p: Partition = [(1u64, 7usize), (2, 7), (3, 3)].into_iter().collect();
        let r = p.renumbered();
        assert_eq!(r.community_of(1), Some(0));
        assert_eq!(r.community_of(2), Some(0));
        assert_eq!(r.community_of(3), Some(1));
        // Renumbering twice is a fixed point.
        assert_eq!(r.renumbered(), r);
    }

    #[test]
    fn sizes() {
        let p: Partition = [(1u64, 0usize), (2, 0), (3, 1)].into_iter().collect();
        let s = p.sizes();
        assert_eq!(s[&0], 2);
        assert_eq!(s[&1], 1);
    }
}
