//! Per-community trip accounting — the layout of the paper's Tables IV–VI.
//!
//! For each community the paper reports: the number of old (pre-existing)
//! and new (selected) stations, and the number of trips that start and end
//! inside the community (*within*), start inside but end elsewhere (*out*),
//! and start elsewhere but end inside (*in*). The *total* column is
//! `within * 2 + out + in` in the paper's convention? No — the paper's
//! total column is the sum of trips that touch the community counting
//! within-trips once at each end: `Total = Within + Out + In + Within`,
//! which equals the total number of trip-endpoints in the community. We
//! reproduce the exact columns (within / out / in) and a `total` equal to
//! `within + out + in + within` so the rows match the paper's arithmetic
//! (e.g. community 1 of Table IV: 12,012 + 5,238 + 5,255 = 22,505 with
//! within counted once — the paper's total equals within + out + in).

use crate::Partition;
use moby_graph::{CsrGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Trip accounting for one community.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommunityRow {
    /// Community label (canonical, 0-based internally; reports print 1-based).
    pub community: usize,
    /// Number of member stations that are pre-existing (old).
    pub old_stations: usize,
    /// Number of member stations that were newly selected.
    pub new_stations: usize,
    /// Trips starting and ending inside the community.
    pub within: f64,
    /// Trips starting inside the community but ending outside.
    pub out: f64,
    /// Trips starting outside the community but ending inside.
    pub incoming: f64,
}

impl CommunityRow {
    /// Total member stations.
    pub fn total_stations(&self) -> usize {
        self.old_stations + self.new_stations
    }

    /// Total trips touching the community (the paper's "Total" column:
    /// within + out + in).
    pub fn total_trips(&self) -> f64 {
        self.within + self.out + self.incoming
    }

    /// Share of this community's trips that stay inside it.
    pub fn self_containment(&self) -> f64 {
        let denom = self.within + self.out + self.incoming;
        if denom <= 0.0 {
            0.0
        } else {
            self.within / denom
        }
    }
}

/// The full table for one detected partition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommunityTable {
    /// One row per community, ordered by community label.
    pub rows: Vec<CommunityRow>,
    /// Modularity of the partition on the graph it was computed from.
    pub modularity: f64,
}

impl CommunityTable {
    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.rows.len()
    }

    /// Total within-community trips across all communities.
    pub fn total_within(&self) -> f64 {
        self.rows.iter().map(|r| r.within).sum()
    }

    /// Total trips (each trip counted once: within once, cross-community
    /// trips once via their origin's `out`).
    pub fn total_trips(&self) -> f64 {
        self.rows.iter().map(|r| r.within + r.out).sum()
    }

    /// The share of all trips that start and end in the same community —
    /// the paper's headline "~74% of trips are self-contained".
    pub fn self_contained_share(&self) -> f64 {
        let total = self.total_trips();
        if total <= 0.0 {
            0.0
        } else {
            self.total_within() / total
        }
    }
}

/// Build the per-community trip table.
///
/// * `trip_graph` — the **directed** weighted station graph, frozen to CSR
///   (edge weight = number of trips from src to dst, self-loops allowed);
///   freeze the directed trip graph once and share it across the three
///   temporal granularities;
/// * `partition` — the community assignment (typically from Louvain on the
///   undirected projection);
/// * `old_stations` — the ids of pre-existing stations (everything else in
///   the graph is counted as a new station);
/// * `modularity` — the modularity score to record alongside the table.
pub fn community_table(
    trip_graph: &CsrGraph,
    partition: &Partition,
    old_stations: &HashSet<NodeId>,
    modularity: f64,
) -> CommunityTable {
    let mut rows: BTreeMap<usize, CommunityRow> = BTreeMap::new();
    // Station membership counts.
    for (&node, &comm) in partition
        .communities()
        .iter()
        .flat_map(|(c, members)| members.iter().map(move |m| (m, c)))
    {
        let row = rows.entry(comm).or_insert_with(|| CommunityRow {
            community: comm,
            ..Default::default()
        });
        if old_stations.contains(&node) {
            row.old_stations += 1;
        } else {
            row.new_stations += 1;
        }
    }
    // Trip flows.
    for (src, dst, w) in trip_graph.edges() {
        let (Some(cs), Some(cd)) = (partition.community_of(src), partition.community_of(dst))
        else {
            continue;
        };
        if cs == cd {
            rows.entry(cs)
                .or_insert_with(|| CommunityRow {
                    community: cs,
                    ..Default::default()
                })
                .within += w;
        } else {
            rows.entry(cs)
                .or_insert_with(|| CommunityRow {
                    community: cs,
                    ..Default::default()
                })
                .out += w;
            rows.entry(cd)
                .or_insert_with(|| CommunityRow {
                    community: cd,
                    ..Default::default()
                })
                .incoming += w;
        }
    }
    CommunityTable {
        rows: rows.into_values().collect(),
        modularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use moby_graph::WeightedGraph;

    /// Two communities {1,2} and {3,4}; directed trips:
    /// 1->2: 10, 2->1: 5 (within A), 3->4: 8 (within B),
    /// 1->3: 2 (A out / B in), 4->2: 3 (B out / A in), 1->1: 4 (self-loop).
    fn setup() -> (CsrGraph, Partition, HashSet<NodeId>) {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 1, 5.0);
        g.add_edge(3, 4, 8.0);
        g.add_edge(1, 3, 2.0);
        g.add_edge(4, 2, 3.0);
        g.add_edge(1, 1, 4.0);
        let p: Partition = [(1u64, 0usize), (2, 0), (3, 1), (4, 1)]
            .into_iter()
            .collect();
        let old: HashSet<NodeId> = [1, 3].into_iter().collect();
        (g.freeze(), p, old)
    }

    #[test]
    fn rows_have_expected_flows() {
        let (g, p, old) = setup();
        let table = community_table(&g, &p, &old, 0.31);
        assert_eq!(table.community_count(), 2);
        let a = &table.rows[0];
        assert_eq!(a.community, 0);
        assert_eq!(a.old_stations, 1);
        assert_eq!(a.new_stations, 1);
        assert_eq!(a.within, 19.0); // 10 + 5 + 4 (self-loop)
        assert_eq!(a.out, 2.0);
        assert_eq!(a.incoming, 3.0);
        assert_eq!(a.total_trips(), 24.0);
        let b = &table.rows[1];
        assert_eq!(b.within, 8.0);
        assert_eq!(b.out, 3.0);
        assert_eq!(b.incoming, 2.0);
        assert_eq!(table.modularity, 0.31);
    }

    #[test]
    fn totals_and_self_containment() {
        let (g, p, old) = setup();
        let table = community_table(&g, &p, &old, 0.0);
        // Total trips = sum of all edge weights = 32.
        assert_eq!(table.total_trips(), 32.0);
        assert_eq!(table.total_within(), 27.0);
        assert!((table.self_contained_share() - 27.0 / 32.0).abs() < 1e-12);
        let a = &table.rows[0];
        assert!((a.self_containment() - 19.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn unassigned_nodes_are_skipped_from_flows() {
        let (g, _, old) = setup();
        let p: Partition = [(1u64, 0usize), (2, 0)].into_iter().collect();
        let table = community_table(&g, &p, &old, 0.0);
        assert_eq!(table.community_count(), 1);
        // Only trips with both endpoints assigned are counted.
        let a = &table.rows[0];
        assert_eq!(a.within, 19.0);
        assert_eq!(a.out, 0.0);
        assert_eq!(a.incoming, 0.0);
    }

    #[test]
    fn station_counts_respect_old_set() {
        let (g, p, _) = setup();
        let all_old: HashSet<NodeId> = [1, 2, 3, 4].into_iter().collect();
        let table = community_table(&g, &p, &all_old, 0.0);
        assert!(table.rows.iter().all(|r| r.new_stations == 0));
        let none_old: HashSet<NodeId> = HashSet::new();
        let table2 = community_table(&g, &p, &none_old, 0.0);
        assert!(table2.rows.iter().all(|r| r.old_stations == 0));
        assert_eq!(table2.rows[0].total_stations(), 2);
    }

    #[test]
    fn empty_partition_gives_empty_table() {
        let (g, _, old) = setup();
        let table = community_table(&g, &Partition::new(), &old, 0.0);
        assert_eq!(table.community_count(), 0);
        assert_eq!(table.total_trips(), 0.0);
        assert_eq!(table.self_contained_share(), 0.0);
    }
}
