//! The Louvain community-detection algorithm.
//!
//! Louvain (Blondel et al. 2008) is the detector the paper uses, chosen for
//! its "rapid convergence properties, high modularity, hierarchical
//! partitioning and its ability to incorporate weighted edges". The
//! implementation is the standard two-phase loop:
//!
//! 1. **Local moving.** Every node is repeatedly offered to the community of
//!    each of its neighbours; it takes the move with the largest positive
//!    modularity gain. The sweep repeats until no node moves.
//! 2. **Aggregation.** Each community collapses into a single super-node;
//!    intra-community weight becomes a self-loop. The local-moving phase
//!    then runs on the aggregated graph.
//!
//! The loop ends when an aggregation pass no longer improves modularity.
//! Node visiting order is the graph's dense index order by default, or a
//! seeded shuffle when [`LouvainConfig::seed`] is set — either way the
//! result is deterministic for a given input and configuration.

use crate::{modularity, Partition};
use moby_graph::{NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Configuration of the Louvain run.
#[derive(Debug, Clone, PartialEq)]
pub struct LouvainConfig {
    /// Optional shuffle seed for the node visiting order. `None` visits
    /// nodes in dense-index order (fully deterministic, the default).
    pub seed: Option<u64>,
    /// Maximum number of aggregation passes (each pass contains a full local
    /// moving phase). The algorithm almost always converges in < 10.
    pub max_passes: usize,
    /// Minimum modularity improvement for a pass to be considered progress.
    pub min_modularity_gain: f64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            seed: None,
            max_passes: 20,
            min_modularity_gain: 1e-7,
        }
    }
}

/// Internal working representation of the (aggregated) graph for one pass.
struct LocalGraph {
    /// Adjacency: for each node, (neighbour, weight), excluding self-loops.
    adj: Vec<Vec<(usize, f64)>>,
    /// Self-loop weight per node.
    self_loops: Vec<f64>,
    /// Weighted degree per node (self-loops count twice).
    degree: Vec<f64>,
    /// Total edge weight m (undirected edges once, self-loops once).
    m: f64,
}

impl LocalGraph {
    fn from_weighted(graph: &WeightedGraph) -> (Self, Vec<NodeId>) {
        let n = graph.node_count();
        let mut adj = vec![Vec::new(); n];
        let mut self_loops = vec![0.0; n];
        let mut degree = vec![0.0; n];
        for i in 0..n {
            for (j, w) in graph.neighbors(i) {
                if i == j {
                    self_loops[i] = w;
                    degree[i] += 2.0 * w;
                } else {
                    adj[i].push((j, w));
                    degree[i] += w;
                }
            }
            // Deterministic neighbour order.
            adj[i].sort_by(|a, b| a.0.cmp(&b.0));
        }
        let m = graph.total_weight();
        (
            Self {
                adj,
                self_loops,
                degree,
                m,
            },
            graph.node_ids().to_vec(),
        )
    }

    fn node_count(&self) -> usize {
        self.adj.len()
    }
}

/// One local-moving phase. Returns the community assignment (dense labels
/// may have gaps) and whether any node moved.
fn local_moving(graph: &LocalGraph, order: &[usize]) -> (Vec<usize>, bool) {
    let n = graph.node_count();
    let mut community: Vec<usize> = (0..n).collect();
    // Total degree per community.
    let mut comm_degree: Vec<f64> = graph.degree.clone();
    let two_m = 2.0 * graph.m;
    if two_m <= 0.0 {
        return (community, false);
    }

    let mut moved_any = false;
    let mut improved = true;
    // Re-usable scratch map: community -> weight of links from current node.
    let mut links_to_comm: HashMap<usize, f64> = HashMap::new();

    while improved {
        improved = false;
        for &node in order {
            let node_comm = community[node];
            let k_i = graph.degree[node];

            links_to_comm.clear();
            for &(nbr, w) in &graph.adj[node] {
                *links_to_comm.entry(community[nbr]).or_insert(0.0) += w;
            }

            // Remove the node from its community.
            comm_degree[node_comm] -= k_i;
            let k_i_in_own = links_to_comm.get(&node_comm).copied().unwrap_or(0.0);

            // Best target community: the gain of moving node i into community
            // C (after removal) is  k_i_in_C / m  -  Σ_tot_C * k_i / (2 m²);
            // comparing across C we can drop the constant factor 1/m and use
            // k_i_in_C - Σ_tot_C * k_i / (2m).
            let mut best_comm = node_comm;
            let mut best_gain = k_i_in_own - comm_degree[node_comm] * k_i / two_m;
            let mut candidates: Vec<(usize, f64)> =
                links_to_comm.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic tie-breaks
            for (c, k_i_in_c) in candidates {
                if c == node_comm {
                    continue;
                }
                let gain = k_i_in_c - comm_degree[c] * k_i / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_comm = c;
                }
            }

            comm_degree[best_comm] += k_i;
            if best_comm != node_comm {
                community[node] = best_comm;
                improved = true;
                moved_any = true;
            }
        }
    }
    (community, moved_any)
}

/// Aggregate a graph by communities: each community becomes one node whose
/// id is the community label; edge weights are summed.
fn aggregate(graph: &LocalGraph, community: &[usize]) -> WeightedGraph {
    let mut agg = WeightedGraph::new_undirected();
    // Ensure every community node exists even if it has no edges.
    for &c in community {
        agg.add_node(c as NodeId);
    }
    for i in 0..graph.node_count() {
        let ci = community[i] as NodeId;
        if graph.self_loops[i] > 0.0 {
            agg.add_edge(ci, ci, graph.self_loops[i]);
        }
        for &(j, w) in &graph.adj[i] {
            if j > i {
                let cj = community[j] as NodeId;
                agg.add_edge(ci, cj, w);
            }
        }
    }
    agg
}

/// Run the Louvain algorithm over an undirected weighted graph (directed
/// graphs are projected to undirected first) and return the detected
/// partition with canonical community labels `0..k`.
pub fn louvain(graph: &WeightedGraph, config: &LouvainConfig) -> Partition {
    let undirected;
    let g0 = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    if g0.node_count() == 0 {
        return Partition::new();
    }

    // Work on a relabelled copy whose node ids are the dense indices of
    // `g0`, so that membership values always match the current graph's node
    // ids (after each aggregation pass the node ids are community labels).
    let original_ids: Vec<NodeId> = g0.node_ids().to_vec();
    let n = original_ids.len();
    let mut current = WeightedGraph::new_undirected();
    for i in 0..n {
        current.add_node(i as NodeId);
    }
    for (src, dst, w) in g0.edges() {
        let si = g0.index_of(src).expect("edge endpoint exists") as NodeId;
        let di = g0.index_of(dst).expect("edge endpoint exists") as NodeId;
        current.add_edge(si, di, w);
    }
    let mut membership: Vec<usize> = (0..n).collect();
    let mut rng = config.seed.map(StdRng::seed_from_u64);
    let mut last_q = modularity(
        g0,
        &membership_to_partition(&original_ids, &membership),
    );

    for _pass in 0..config.max_passes {
        let (local, current_ids) = LocalGraph::from_weighted(&current);
        let mut order: Vec<usize> = (0..local.node_count()).collect();
        if let Some(rng) = rng.as_mut() {
            order.shuffle(rng);
        }
        let (community, moved) = local_moving(&local, &order);
        if !moved {
            break;
        }
        // Compact community labels to 0..k for the aggregated graph.
        let mut relabel: HashMap<usize, usize> = HashMap::new();
        let mut compact = vec![0usize; community.len()];
        for (i, &c) in community.iter().enumerate() {
            let next = relabel.len();
            let label = *relabel.entry(c).or_insert(next);
            compact[i] = label;
        }
        // current_ids[i] was itself a community label of the previous level
        // (or an original dense index on the first pass); map memberships
        // through this pass's assignment.
        let id_to_index: HashMap<NodeId, usize> = current_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for m in membership.iter_mut() {
            let idx = id_to_index[&(*m as NodeId)];
            *m = compact[idx];
        }

        let aggregated = aggregate(&local, &compact);
        let q = modularity(
            g0,
            &membership_to_partition(&original_ids, &membership),
        );
        if q - last_q < config.min_modularity_gain {
            // Keep the (slightly) better assignment but stop iterating.
            break;
        }
        last_q = q;
        current = aggregated;
    }

    membership_to_partition(&original_ids, &membership).renumbered()
}

fn membership_to_partition(ids: &[NodeId], membership: &[usize]) -> Partition {
    ids.iter()
        .zip(membership)
        .map(|(&id, &c)| (id, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn two_cliques(bridge_weight: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            g.add_edge(a, b, 5.0);
        }
        g.add_edge(3, 4, bridge_weight);
        g
    }

    #[test]
    fn empty_graph_gives_empty_partition() {
        let g = WeightedGraph::new_undirected();
        assert!(louvain(&g, &LouvainConfig::default()).is_empty());
    }

    #[test]
    fn single_node_graph() {
        let mut g = WeightedGraph::new_undirected();
        g.add_node(7);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p.community_count(), 1);
    }

    #[test]
    fn two_cliques_are_split() {
        let p = louvain(&two_cliques(1.0), &LouvainConfig::default());
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.community_of(1), p.community_of(2));
        assert_eq!(p.community_of(1), p.community_of(3));
        assert_eq!(p.community_of(4), p.community_of(5));
        assert_ne!(p.community_of(1), p.community_of(4));
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let g = two_cliques(1.0);
        let a = louvain(&g, &LouvainConfig::default());
        let b = louvain(&g, &LouvainConfig::default());
        assert_eq!(a, b);
        let seeded = LouvainConfig {
            seed: Some(3),
            ..Default::default()
        };
        assert_eq!(louvain(&g, &seeded), louvain(&g, &seeded));
    }

    #[test]
    fn louvain_partition_beats_trivial_partitions() {
        let g = two_cliques(1.0);
        let p = louvain(&g, &LouvainConfig::default());
        let q = modularity(&g, &p);
        let q_single = modularity(&g, &g.node_ids().iter().map(|&n| (n, 0usize)).collect());
        let q_singletons = modularity(&g, &Partition::singletons(g.node_ids()));
        assert!(q >= q_single);
        assert!(q >= q_singletons);
        assert!(q > 0.3);
    }

    #[test]
    fn ring_of_cliques_recovers_cliques() {
        // Four 4-cliques connected in a ring by single edges: the canonical
        // Louvain test case; expected answer is 4 communities.
        let mut g = WeightedGraph::new_undirected();
        let clique_nodes: Vec<Vec<u64>> = (0..4).map(|c| (0..4).map(|i| c * 4 + i + 1).collect()).collect();
        for nodes in &clique_nodes {
            for i in 0..nodes.len() {
                for j in (i + 1)..nodes.len() {
                    g.add_edge(nodes[i], nodes[j], 1.0);
                }
            }
        }
        for c in 0..4usize {
            let from = clique_nodes[c][0];
            let to = clique_nodes[(c + 1) % 4][1];
            g.add_edge(from, to, 1.0);
        }
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.community_count(), 4);
        for nodes in &clique_nodes {
            let c0 = p.community_of(nodes[0]);
            for &n in nodes {
                assert_eq!(p.community_of(n), c0);
            }
        }
    }

    #[test]
    fn weighted_edges_dominate_topology() {
        // A path 1-2-3-4 where 1-2 and 3-4 are heavy and 2-3 light: the cut
        // should fall on the light edge.
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 3, 0.5);
        g.add_edge(3, 4, 10.0);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.community_of(1), p.community_of(2));
        assert_eq!(p.community_of(3), p.community_of(4));
        assert_ne!(p.community_of(2), p.community_of(3));
    }

    #[test]
    fn strong_bridge_merges_cliques() {
        // If the bridge is overwhelmingly heavy, the bridge endpoints are
        // pulled into the same community (possibly splitting off the clique
        // remainders, so up to 3 communities remain).
        let p = louvain(&two_cliques(100.0), &LouvainConfig::default());
        assert!(p.community_count() <= 3);
        // Nodes 3 and 4 (the bridge endpoints) must share a community.
        assert_eq!(p.community_of(3), p.community_of(4));
    }

    #[test]
    fn every_node_is_assigned() {
        let g = two_cliques(1.0);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), g.node_count());
        for &id in g.node_ids() {
            assert!(p.community_of(id).is_some());
        }
    }

    #[test]
    fn random_graph_modularity_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = WeightedGraph::new_undirected();
        // Three planted communities of 20 nodes.
        for c in 0..3u64 {
            for i in 0..20u64 {
                for j in (i + 1)..20 {
                    if rng.gen::<f64>() < 0.4 {
                        g.add_edge(c * 100 + i, c * 100 + j, 1.0);
                    }
                }
            }
        }
        // Sparse noise between communities.
        for _ in 0..30 {
            let a = rng.gen_range(0..3u64) * 100 + rng.gen_range(0..20u64);
            let b = rng.gen_range(0..3u64) * 100 + rng.gen_range(0..20u64);
            if a != b {
                g.add_edge(a, b, 1.0);
            }
        }
        let p = louvain(&g, &LouvainConfig::default());
        let q = modularity(&g, &p);
        assert!(q > 0.4, "expected strong community structure, q = {q}");
        assert!(p.community_count() >= 3);
        assert!(p.community_count() <= 6);
    }

    #[test]
    fn isolated_nodes_form_their_own_communities() {
        let mut g = two_cliques(1.0);
        g.add_node(100);
        g.add_node(101);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), 8);
        assert_ne!(p.community_of(100), p.community_of(101));
        assert_ne!(p.community_of(100), p.community_of(1));
    }
}
