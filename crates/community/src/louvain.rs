//! The Louvain community-detection algorithm.
//!
//! Louvain (Blondel et al. 2008) is the detector the paper uses, chosen for
//! its "rapid convergence properties, high modularity, hierarchical
//! partitioning and its ability to incorporate weighted edges". The
//! implementation is the standard two-phase loop:
//!
//! 1. **Local moving.** Every node is repeatedly offered to the community of
//!    each of its neighbours; it takes the move with the largest positive
//!    modularity gain. The sweep repeats until no node moves.
//! 2. **Aggregation.** Each community collapses into a single super-node;
//!    intra-community weight becomes a self-loop. The local-moving phase
//!    then runs on the aggregated graph.
//!
//! The loop ends when an aggregation pass no longer improves modularity.
//! Node visiting order is dense index order by default, or a seeded shuffle
//! when [`LouvainConfig::seed`] is set — either way the result is
//! deterministic for a given input and configuration.
//!
//! Two implementations share that algorithm:
//!
//! * [`louvain_csr`] — the production path. It consumes a frozen
//!   [`CsrGraph`], keeps every level in flat CSR arrays, replaces the
//!   per-node hash scratch with dense index-addressed buffers, and
//!   relabels memberships through the interned dense index in O(n).
//! * [`louvain_hashmap`] — the legacy path over the mutable
//!   [`WeightedGraph`], retained as the baseline the criterion benches
//!   compare against (and the reference the equivalence tests check the
//!   CSR path's output against). Both paths run identical local-moving
//!   and aggregation arithmetic (neighbour scans, degree sums and merged
//!   edge weights accumulate in the same sorted order), so move decisions
//!   match exactly; only the per-pass modularity *gate* is computed by
//!   different routines whose sums can differ in the last ULP, and every
//!   gain comparison carries an epsilon guard, so the two paths produce
//!   identical partitions in practice (asserted exactly by the
//!   equivalence tests on random graphs and the synthetic dataset).
//!
//! [`louvain`] is the drop-in entry point: it freezes the builder graph
//! once and runs the CSR path.
//!
//! [`louvain_seeded`] is the **incremental** entry point for the windowed
//! lifecycle: the first local-moving phase starts from a previous
//! partition instead of singletons, so after a small evict/ingest delta
//! only nodes whose neighbourhoods changed move. The pass gate starts at
//! the seed's modularity and moves are never losing, so the result's
//! modularity never drops below the seed's; with an empty seed it is the
//! cold start bit-for-bit.
//!
//! ## Parallelism
//!
//! The CSR path runs its move scans and modularity accumulations on the
//! deterministic row-chunk scheduler ([`moby_graph::par`]). Each sweep
//! precomputes every node's best move in parallel against the sweep-start
//! state, then commits moves serially in visiting order, falling back to an
//! on-the-spot recomputation whenever a precomputed decision's inputs
//! changed — so the committed move sequence is exactly the serial one, and
//! the detected partition is **bit-identical at any thread count**
//! ([`LouvainConfig::threads`] / `MOBY_THREADS`). The serial sweep is
//! simply the 1-thread specialisation.

use crate::{modularity_hashmap, Partition};
use moby_graph::{par, CsrGraph, NodeId, PermutedGraph, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Configuration of the Louvain run.
#[derive(Debug, Clone, PartialEq)]
pub struct LouvainConfig {
    /// Optional shuffle seed for the node visiting order. `None` visits
    /// nodes in dense-index order (fully deterministic, the default).
    pub seed: Option<u64>,
    /// Maximum number of aggregation passes (each pass contains a full local
    /// moving phase). The algorithm almost always converges in < 10.
    pub max_passes: usize,
    /// Minimum modularity improvement for a pass to be considered progress.
    pub min_modularity_gain: f64,
    /// Worker-thread override for the CSR path's parallel move scans and
    /// modularity accumulations. `None` resolves `MOBY_THREADS`, then
    /// [`std::thread::available_parallelism`] (see [`par::thread_count`]).
    /// The detected partition is bit-identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            seed: None,
            max_passes: 20,
            min_modularity_gain: 1e-7,
            threads: None,
        }
    }
}

// ---------------------------------------------------------------------------
// CSR path (production)
// ---------------------------------------------------------------------------

/// One level of the aggregation hierarchy in flat CSR form. Self-loops are
/// held out of the adjacency rows (they never affect a move decision) but
/// count twice in `degree`, matching the standard convention.
struct CsrLevel {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    self_loops: Vec<f64>,
    /// Weighted degree per node (self-loops twice).
    degree: Vec<f64>,
    /// Total edge weight m (undirected edges once, self-loops once).
    m: f64,
}

impl CsrLevel {
    fn from_frozen(graph: &CsrGraph) -> CsrLevel {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut self_loops = vec![0.0f64; n];
        let mut degree = vec![0.0f64; n];
        for u in 0..n {
            let (t, w) = graph.row(u);
            for (&v, &w) in t.iter().zip(w) {
                if v as usize == u {
                    self_loops[u] = w;
                } else {
                    targets.push(v);
                    weights.push(w);
                }
            }
            offsets.push(targets.len() as u32);
            degree[u] = graph.weighted_degree(u);
        }
        CsrLevel {
            offsets,
            targets,
            weights,
            self_loops,
            degree,
            m: graph.total_weight(),
        }
    }

    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn row(&self, u: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }
}

/// Per-worker scratch for a move scan: `links_to[c]` = weight from the
/// current node into community `c`; `touched` lists the communities with a
/// non-zero entry.
struct ScanScratch {
    links_to: Vec<f64>,
    touched: Vec<usize>,
}

impl ScanScratch {
    fn new(n: usize) -> ScanScratch {
        ScanScratch {
            links_to: vec![0.0f64; n],
            touched: Vec::new(),
        }
    }
}

/// The move decision for one node against the *current* `community` /
/// `comm_degree` state: the community with the best modularity gain.
///
/// The gain of moving node i into community C (after removing i from its
/// own community) is `k_i_in_C / m - Σ_tot_C * k_i / (2 m²)`; comparing
/// across C the constant factor 1/m drops, leaving
/// `k_i_in_C - Σ_tot_C * k_i / (2m)`. Candidates are scanned in sorted
/// order for deterministic tie-breaks. This is shared verbatim by the
/// serial sweep, the parallel speculative scan and the commit-time
/// recomputation, so a decision is the same bits wherever it is evaluated.
fn scan_move_csr(
    graph: &CsrLevel,
    community: &[usize],
    comm_degree: &[f64],
    two_m: f64,
    scratch: &mut ScanScratch,
    node: usize,
) -> usize {
    let node_comm = community[node];
    let k_i = graph.degree[node];

    for &c in &scratch.touched {
        scratch.links_to[c] = 0.0;
    }
    scratch.touched.clear();
    // Fixed-width gather blocks: read a block of u32 targets and resolve
    // their community labels branch-free into a register-resident block,
    // then scatter the weights. The scatter walks the block in position
    // order, so every per-community sum accumulates in exactly the scalar
    // (and legacy hash-map path) order — batching buys the separation of
    // the label gather from the branchy scatter, not a reassociation.
    const GATHER: usize = 8;
    let (targets, weights) = graph.row(node);
    let mut tc = targets.chunks_exact(GATHER);
    let mut wc = weights.chunks_exact(GATHER);
    let mut comms = [0usize; GATHER];
    for (t, w) in (&mut tc).zip(&mut wc) {
        for (slot, &nbr) in comms.iter_mut().zip(t) {
            *slot = community[nbr as usize];
        }
        for (j, &c) in comms.iter().enumerate() {
            if scratch.links_to[c] == 0.0 {
                scratch.touched.push(c);
            }
            scratch.links_to[c] += w[j];
        }
    }
    for (&nbr, &w) in tc.remainder().iter().zip(wc.remainder()) {
        let c = community[nbr as usize];
        if scratch.links_to[c] == 0.0 {
            scratch.touched.push(c);
        }
        scratch.links_to[c] += w;
    }

    // Degree of the node's community with the node itself removed.
    let residual_own = comm_degree[node_comm] - k_i;
    let k_i_in_own = scratch.links_to[node_comm];
    let mut best_comm = node_comm;
    let mut best_gain = k_i_in_own - residual_own * k_i / two_m;
    scratch.touched.sort_unstable(); // deterministic tie-breaks
    for &c in &scratch.touched {
        if c == node_comm {
            continue;
        }
        let gain = scratch.links_to[c] - comm_degree[c] * k_i / two_m;
        if gain > best_gain + 1e-12 {
            best_gain = gain;
            best_comm = c;
        }
    }
    best_comm
}

/// One local-moving phase over a CSR level. Returns the community
/// assignment (labels are node indices — or seed labels when `init` is
/// given — possibly with gaps) and whether any node moved.
///
/// `init` seeds the starting assignment: each node begins in the given
/// community (labels must be `< n`) instead of its own singleton, and the
/// per-community degree sums are accumulated from that assignment in node
/// index order. `None` is the cold start — identical bits to passing the
/// identity assignment.
///
/// With `threads > 1` each sweep runs in two phases. **Scan:** the row
/// space is split into edge-balanced chunks ([`par::RowChunks`]) and every
/// node's best move is precomputed in parallel against the sweep-start
/// state. **Commit:** nodes are visited serially in `order`, exactly like
/// the serial sweep; a precomputed decision is used only if none of its
/// inputs (a neighbour's community, or the weighted degree of the node's
/// own or any neighbouring community) changed since the scan — otherwise
/// the decision is recomputed on the spot with the same arithmetic. Commits
/// therefore apply the identical move sequence the serial sweep would, and
/// the resulting partition is bit-identical at any thread count; the
/// parallel scan only prepays the scan cost of nodes whose neighbourhood
/// stayed untouched (the common case once the sweep starts converging).
fn local_moving_csr(
    graph: &CsrLevel,
    order: &[usize],
    threads: usize,
    init: Option<&[usize]>,
) -> (Vec<usize>, bool) {
    let n = graph.node_count();
    let mut community: Vec<usize> = match init {
        Some(labels) => {
            assert_eq!(labels.len(), n, "seed assignment must cover every node");
            debug_assert!(labels.iter().all(|&c| c < n));
            labels.to_vec()
        }
        None => (0..n).collect(),
    };
    let mut comm_degree: Vec<f64> = match init {
        Some(_) => {
            let mut cd = vec![0.0f64; n];
            for (u, &c) in community.iter().enumerate() {
                cd[c] += graph.degree[u];
            }
            cd
        }
        None => graph.degree.clone(),
    };
    let two_m = 2.0 * graph.m;
    if two_m <= 0.0 {
        return (community, false);
    }

    let mut moved_any = false;
    let mut improved = true;
    let mut scratch = ScanScratch::new(n);

    let chunks = par::RowChunks::from_offsets(&graph.offsets);
    let speculate = threads > 1 && chunks.len() > 1;
    // Move stamps, used only when speculating: `tick` counts applied moves;
    // a node / community stamped after the sweep-start tick invalidates any
    // precomputed decision that read it.
    let mut tick: u64 = 0;
    let mut node_stamp = vec![0u64; if speculate { n } else { 0 }];
    let mut comm_stamp = vec![0u64; if speculate { n } else { 0 }];
    let mut best = vec![0u32; if speculate { n } else { 0 }];

    while improved {
        improved = false;
        if speculate {
            let community = &community;
            let comm_degree = &comm_degree;
            par::par_fill_with(
                &chunks,
                threads,
                &mut best,
                || ScanScratch::new(n),
                |scratch, _, range, out| {
                    for (j, node) in range.clone().enumerate() {
                        out[j] = scan_move_csr(graph, community, comm_degree, two_m, scratch, node)
                            as u32;
                    }
                },
            );
        }
        let scan_tick = tick;
        for &node in order {
            let node_comm = community[node];
            let fresh = speculate
                && comm_stamp[node_comm] <= scan_tick
                && graph.row(node).0.iter().all(|&nbr| {
                    let nbr = nbr as usize;
                    node_stamp[nbr] <= scan_tick && comm_stamp[community[nbr]] <= scan_tick
                });
            let best_comm = if fresh {
                best[node] as usize
            } else {
                scan_move_csr(graph, &community, &comm_degree, two_m, &mut scratch, node)
            };
            if best_comm != node_comm {
                let k_i = graph.degree[node];
                comm_degree[node_comm] -= k_i;
                comm_degree[best_comm] += k_i;
                community[node] = best_comm;
                if speculate {
                    tick += 1;
                    node_stamp[node] = tick;
                    comm_stamp[node_comm] = tick;
                    comm_stamp[best_comm] = tick;
                }
                improved = true;
                moved_any = true;
            }
        }
    }
    (community, moved_any)
}

/// Active-set variant of [`local_moving_csr`] for **seeded** sweeps.
///
/// The first sweep is whole-graph — it has to be, because modularity
/// gains depend on the global totals (`2m`, `Σ_tot`) and any windowed
/// delta perturbs them for every node, not just the touched rows. From
/// the second sweep on, the only nodes whose decision can differ from
/// the "stay" they already chose are the ones a committed move
/// invalidated: the members of the move's source and target communities
/// (their `Σ_tot` changed) plus every neighbour of those members (their
/// link weights into a changed community). Exact membership lists are
/// maintained across commits so each move marks precisely that dependent
/// set — marks landing *after* the current order position re-examine the
/// node in the same sweep (as the whole-graph sweep would), marks landing
/// before it carry into the next sweep. Skipped nodes are provably
/// no-ops, so the committed move sequence — and the returned assignment —
/// is **bit-identical** to [`local_moving_csr`] with the same seed.
///
/// A per-sweep marking budget (the level's edge count) guards the
/// degenerate case where moves cascade through huge communities: once
/// exceeded, the rest of the sweep and the whole next sweep run
/// whole-graph. Processing a superset is always exact — only the
/// *pruning* needs the dependency argument — so the fallback never
/// changes bits either.
fn local_moving_csr_active(
    graph: &CsrLevel,
    order: &[usize],
    threads: usize,
    init: &[usize],
) -> (Vec<usize>, bool) {
    let n = graph.node_count();
    assert_eq!(init.len(), n, "seed assignment must cover every node");
    debug_assert!(init.iter().all(|&c| c < n));
    let mut community: Vec<usize> = init.to_vec();
    let mut comm_degree = vec![0.0f64; n];
    for (u, &c) in community.iter().enumerate() {
        comm_degree[c] += graph.degree[u];
    }
    let two_m = 2.0 * graph.m;
    if two_m <= 0.0 {
        return (community, false);
    }

    // Exact community membership lists (swap-remove order is irrelevant —
    // they are only ever iterated to mark dependents).
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut member_pos: Vec<u32> = vec![0; n];
    for (u, &c) in community.iter().enumerate() {
        member_pos[u] = members[c].len() as u32;
        members[c].push(u as u32);
    }

    let mut dirty = vec![true; n];
    let mut dirty_count = n;
    let mark_budget = graph.targets.len() + n + 1;

    let mut moved_any = false;
    let mut improved = true;
    let mut scratch = ScanScratch::new(n);

    let chunks = par::RowChunks::from_offsets(&graph.offsets);
    let can_speculate = threads > 1 && chunks.len() > 1;
    let mut tick: u64 = 0;
    let mut node_stamp = vec![0u64; if can_speculate { n } else { 0 }];
    let mut comm_stamp = vec![0u64; if can_speculate { n } else { 0 }];
    let mut best = vec![0u32; if can_speculate { n } else { 0 }];

    while improved {
        improved = false;
        // The speculative whole-row scan only pays off when most nodes
        // will be visited; a thin worklist is cheaper to rescan serially.
        // Either way the committed sequence equals the serial one, so the
        // heuristic cannot affect the result.
        let speculate = can_speculate && dirty_count * 2 >= n;
        if speculate {
            let community = &community;
            let comm_degree = &comm_degree;
            par::par_fill_with(
                &chunks,
                threads,
                &mut best,
                || ScanScratch::new(n),
                |scratch, _, range, out| {
                    for (j, node) in range.clone().enumerate() {
                        out[j] = scan_move_csr(graph, community, comm_degree, two_m, scratch, node)
                            as u32;
                    }
                },
            );
        }
        let scan_tick = tick;
        let mut marked = 0usize;
        let mut flood = false;
        for &node in order {
            if !(flood || dirty[node]) {
                continue;
            }
            dirty[node] = false;
            let node_comm = community[node];
            let fresh = speculate
                && comm_stamp[node_comm] <= scan_tick
                && graph.row(node).0.iter().all(|&nbr| {
                    let nbr = nbr as usize;
                    node_stamp[nbr] <= scan_tick && comm_stamp[community[nbr]] <= scan_tick
                });
            let best_comm = if fresh {
                best[node] as usize
            } else {
                scan_move_csr(graph, &community, &comm_degree, two_m, &mut scratch, node)
            };
            if best_comm != node_comm {
                let k_i = graph.degree[node];
                comm_degree[node_comm] -= k_i;
                comm_degree[best_comm] += k_i;
                community[node] = best_comm;
                if speculate {
                    tick += 1;
                    node_stamp[node] = tick;
                    comm_stamp[node_comm] = tick;
                    comm_stamp[best_comm] = tick;
                }
                // Move the node between membership lists (swap-remove).
                let pos = member_pos[node] as usize;
                let swapped = *members[node_comm]
                    .last()
                    .expect("mover is a member of its community");
                members[node_comm].swap_remove(pos);
                if swapped as usize != node {
                    member_pos[swapped as usize] = pos as u32;
                }
                member_pos[node] = members[best_comm].len() as u32;
                members[best_comm].push(node as u32);
                // Mark the dependent set of this move.
                if !flood {
                    for comm in [node_comm, best_comm] {
                        for i in 0..members[comm].len() {
                            let y = members[comm][i] as usize;
                            dirty[y] = true;
                            let (row_t, _) = graph.row(y);
                            for &nbr in row_t {
                                dirty[nbr as usize] = true;
                            }
                            marked += row_t.len() + 1;
                        }
                    }
                    if marked > mark_budget {
                        flood = true;
                    }
                }
                improved = true;
                moved_any = true;
            }
        }
        if flood {
            dirty.iter_mut().for_each(|d| *d = true);
            dirty_count = n;
        } else {
            dirty_count = dirty.iter().filter(|&&d| d).count();
        }
    }
    (community, moved_any)
}

/// Compact arbitrary labels (< n) to `0..k` in first-appearance order —
/// the O(n) replacement for the old per-level `HashMap<NodeId, usize>`
/// rebuild: labels are already dense node indices, so a vector suffices.
fn compact_labels(community: &[usize]) -> (Vec<usize>, usize) {
    let mut relabel = vec![usize::MAX; community.len()];
    let mut compact = vec![0usize; community.len()];
    let mut next = 0usize;
    for (i, &c) in community.iter().enumerate() {
        if relabel[c] == usize::MAX {
            relabel[c] = next;
            next += 1;
        }
        compact[i] = relabel[c];
    }
    (compact, next)
}

/// Aggregate a level by compacted communities into the next CSR level.
/// The scan order (node index ascending, self-loop before forward edges)
/// matches the legacy builder-based aggregation exactly, so merged weights
/// and the total are bit-identical across the two paths.
fn aggregate_csr(graph: &CsrLevel, compact: &[usize], k: usize) -> CsrLevel {
    let mut pair_weight: HashMap<(u32, u32), f64> = HashMap::new();
    let mut m = 0.0f64;
    for i in 0..graph.node_count() {
        let ci = compact[i] as u32;
        if graph.self_loops[i] > 0.0 {
            *pair_weight.entry((ci, ci)).or_insert(0.0) += graph.self_loops[i];
            m += graph.self_loops[i];
        }
        let (targets, weights) = graph.row(i);
        for (&j, &w) in targets.iter().zip(weights) {
            if (j as usize) > i {
                let cj = compact[j as usize] as u32;
                let key = if ci <= cj { (ci, cj) } else { (cj, ci) };
                *pair_weight.entry(key).or_insert(0.0) += w;
                m += w;
            }
        }
    }

    level_from_pairs(pair_weight, k, m)
}

/// [`aggregate_csr`] for the degree-permuted level 0: walks nodes in
/// **natural** index order through the permuted rows (`inv` locates the
/// row, `perm` translates its targets back), so every merged pair weight
/// and the total accumulate in exactly the natural aggregation order —
/// the aggregated level is bit-identical to the one the natural run
/// builds, and every later pass proceeds unchanged on it.
fn aggregate_csr_permuted(
    level: &CsrLevel,
    perm: &[u32],
    inv: &[u32],
    compact: &[usize],
    k: usize,
) -> CsrLevel {
    let mut pair_weight: HashMap<(u32, u32), f64> = HashMap::new();
    let mut m = 0.0f64;
    for u in 0..level.node_count() {
        let p = inv[u] as usize;
        let ci = compact[u] as u32;
        if level.self_loops[p] > 0.0 {
            *pair_weight.entry((ci, ci)).or_insert(0.0) += level.self_loops[p];
            m += level.self_loops[p];
        }
        let (targets, weights) = level.row(p);
        for (&jp, &w) in targets.iter().zip(weights) {
            let j = perm[jp as usize] as usize;
            if j > u {
                let cj = compact[j] as u32;
                let key = if ci <= cj { (ci, cj) } else { (cj, ci) };
                *pair_weight.entry(key).or_insert(0.0) += w;
                m += w;
            }
        }
    }
    level_from_pairs(pair_weight, k, m)
}

/// Shared tail of the aggregation paths: turn fully-merged pair weights
/// into sorted CSR rows. Hash-map iteration order is immaterial here —
/// each `(row, target)` pair carries one final weight and rows are sorted
/// before packing.
fn level_from_pairs(pair_weight: HashMap<(u32, u32), f64>, k: usize, m: f64) -> CsrLevel {
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
    for (&(a, b), &w) in &pair_weight {
        if a == b {
            rows[a as usize].push((a, w));
        } else {
            rows[a as usize].push((b, w));
            rows[b as usize].push((a, w));
        }
    }

    let mut offsets = Vec::with_capacity(k + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    let mut self_loops = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (c, row) in rows.iter_mut().enumerate() {
        row.sort_unstable_by_key(|&(v, _)| v);
        for &(v, w) in row.iter() {
            if v as usize == c {
                self_loops[c] = w;
                degree[c] += 2.0 * w;
            } else {
                targets.push(v);
                weights.push(w);
                degree[c] += w;
            }
        }
        offsets.push(targets.len() as u32);
    }
    CsrLevel {
        offsets,
        targets,
        weights,
        self_loops,
        degree,
        m,
    }
}

/// Modularity of the current membership against the *original* frozen
/// graph: per-chunk dense accumulators merged in fixed chunk order, so the
/// pass gate is bit-identical at any thread count. Each edge is owned by
/// its lower-endpoint row, so chunks never double-count.
fn membership_modularity(graph: &CsrGraph, membership: &[usize], k: usize, threads: usize) -> f64 {
    let m = graph.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    // Every chunk allocates two k-length accumulators and the merge costs
    // O(k) per chunk, so bound chunks × k (the first pass gate has k = n).
    // The budget depends only on k — never on the thread count — so the
    // determinism contract holds.
    let max_chunks = (4_000_000 / k.max(1)).clamp(1, 16);
    let chunks = par::RowChunks::balanced(graph.offsets(), max_chunks, 2048);
    let partials = par::par_map(&chunks, threads, |_, range| {
        let mut internal = vec![0.0f64; k];
        let mut degree = vec![0.0f64; k];
        for u in range {
            let cu = membership[u];
            let (targets, weights) = graph.row(u);
            for (&v, &w) in targets.iter().zip(weights) {
                let v = v as usize;
                if v == u {
                    internal[cu] += w;
                    degree[cu] += 2.0 * w;
                } else if v > u {
                    let cv = membership[v];
                    if cu == cv {
                        internal[cu] += w;
                    }
                    degree[cu] += w;
                    degree[cv] += w;
                }
            }
        }
        (internal, degree)
    });
    let mut internal = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (pi, pd) in partials {
        for c in 0..k {
            internal[c] += pi[c];
            degree[c] += pd[c];
        }
    }
    let mut q = 0.0;
    for c in 0..k {
        q += internal[c] / m - (degree[c] / (2.0 * m)).powi(2);
    }
    q
}

/// [`membership_modularity`] over a degree-permuted graph, walking the
/// **natural** node order (chunk boundaries come from the natural offsets
/// and each row is fetched through `inv`, its targets translated through
/// `perm`), so every accumulator receives the same terms in the same
/// order as the natural gate — the pass gate is bit-identical between the
/// two layouts, which is what lets [`louvain_permuted`] stop at exactly
/// the same pass.
fn membership_modularity_permuted(
    pg: &PermutedGraph,
    membership: &[usize],
    k: usize,
    threads: usize,
) -> f64 {
    let g = pg.graph();
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let perm = pg.perm();
    let max_chunks = (4_000_000 / k.max(1)).clamp(1, 16);
    let chunks = par::RowChunks::balanced(pg.natural_offsets(), max_chunks, 2048);
    let partials = par::par_map(&chunks, threads, |_, range| {
        let mut internal = vec![0.0f64; k];
        let mut degree = vec![0.0f64; k];
        for u in range {
            let cu = membership[u];
            let (targets, weights) = pg.natural_row(u);
            for (&vp, &w) in targets.iter().zip(weights) {
                let v = perm[vp as usize] as usize;
                if v == u {
                    internal[cu] += w;
                    degree[cu] += 2.0 * w;
                } else if v > u {
                    let cv = membership[v];
                    if cu == cv {
                        internal[cu] += w;
                    }
                    degree[cu] += w;
                    degree[cv] += w;
                }
            }
        }
        (internal, degree)
    });
    let mut internal = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (pi, pd) in partials {
        for c in 0..k {
            internal[c] += pi[c];
            degree[c] += pd[c];
        }
    }
    let mut q = 0.0;
    for c in 0..k {
        q += internal[c] / m - (degree[c] / (2.0 * m)).powi(2);
    }
    q
}

/// The graph a pass gate measures modularity against: the natural frozen
/// graph, or a permuted layout walked in natural order (same bits).
enum GateGraph<'a> {
    Natural(&'a CsrGraph),
    Permuted(&'a PermutedGraph),
}

impl GateGraph<'_> {
    fn modularity(&self, membership: &[usize], k: usize, threads: usize) -> f64 {
        match self {
            GateGraph::Natural(g) => membership_modularity(g, membership, k, threads),
            GateGraph::Permuted(p) => membership_modularity_permuted(p, membership, k, threads),
        }
    }
}

/// Shared Louvain driver: `init` is an optional level-0 seed assignment
/// (compacted labels `< n`, one per dense node index). Cold runs pass
/// `None`; [`louvain_seeded`] passes the previous partition's labels.
///
/// The seed only changes where the *first* local-moving phase starts —
/// every later level begins from the aggregated singletons as usual. The
/// relabel step runs even when no node moved (for a cold start the
/// identity community compacts to the identity, so this is bit-identical
/// to breaking first; for a seeded start it is what carries an
/// already-optimal seed into the result instead of discarding it).
fn louvain_csr_impl(
    graph: &CsrGraph,
    config: &LouvainConfig,
    init: Option<Vec<usize>>,
    active: bool,
) -> Partition {
    let undirected;
    let g = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    let n = g.node_count();
    if n == 0 {
        return Partition::new();
    }

    let threads = par::thread_count(config.threads);
    let mut membership: Vec<usize> = (0..n).collect();
    let mut rng = config.seed.map(StdRng::seed_from_u64);
    let gate = GateGraph::Natural(g);
    // The pass gate starts from the seed's modularity (cold: singletons),
    // so a pass only counts as progress if it beats the state it started
    // from — local moving never commits a losing move, so the final
    // partition's modularity is never below the seed's.
    let last_q = match &init {
        Some(labels) => membership_modularity(g, labels, n, threads),
        None => membership_modularity(g, &membership, n, threads),
    };
    louvain_level_loop(
        &gate,
        CsrLevel::from_frozen(g),
        &mut membership,
        last_q,
        0..config.max_passes,
        &mut rng,
        init,
        active,
        config,
        threads,
    );
    membership_to_partition(g.node_ids(), &membership).renumbered()
}

/// The aggregation-pass loop shared by the natural, seeded and permuted
/// drivers: `level` is the CSR level the first pass of `passes` runs on,
/// `membership` maps original nodes to `level` node indices, and `last_q`
/// is the gate value the first pass must beat. `init` seeds the first
/// executed pass only; `active` routes that seeded pass through
/// [`local_moving_csr_active`].
#[allow(clippy::too_many_arguments)]
fn louvain_level_loop(
    gate: &GateGraph<'_>,
    mut level: CsrLevel,
    membership: &mut [usize],
    mut last_q: f64,
    passes: std::ops::Range<usize>,
    rng: &mut Option<StdRng>,
    mut init: Option<Vec<usize>>,
    active: bool,
    config: &LouvainConfig,
    threads: usize,
) {
    for _pass in passes {
        let mut order: Vec<usize> = (0..level.node_count()).collect();
        if let Some(rng) = rng.as_mut() {
            order.shuffle(rng);
        }
        let level_init = init.take();
        let (community, moved) = match &level_init {
            Some(labels) if active => local_moving_csr_active(&level, &order, threads, labels),
            _ => local_moving_csr(&level, &order, threads, level_init.as_deref()),
        };
        let (compact, k) = compact_labels(&community);
        // Membership values are dense indices of the current level, so the
        // per-level relabel is a direct vector lookup.
        for m in membership.iter_mut() {
            *m = compact[*m];
        }
        if !moved {
            break;
        }

        let aggregated = aggregate_csr(&level, &compact, k);
        let q = gate.modularity(membership, k, threads);
        if q - last_q < config.min_modularity_gain {
            // Keep the (slightly) better assignment but stop iterating.
            break;
        }
        last_q = q;
        level = aggregated;
    }
}

/// Run the Louvain algorithm over a frozen undirected [`CsrGraph`]
/// (directed graphs are projected to undirected first) and return the
/// detected partition with canonical community labels `0..k`.
pub fn louvain_csr(graph: &CsrGraph, config: &LouvainConfig) -> Partition {
    louvain_csr_impl(graph, config, None, false)
}

/// Cold-start Louvain over a degree-sorted [`PermutedGraph`], returning a
/// partition **bit-identical** to [`louvain_csr`] on the natural graph.
///
/// The first (dominant) local-moving pass sweeps the permuted rows — hub
/// rows first, neighbour state clustered at low indices — but commits in
/// natural node order under natural community labels, so the committed
/// move sequence is exactly the natural one. Aggregation and the pass
/// gate then walk natural order through the permuted layout
/// (the internal `aggregate_csr_permuted` / `membership_modularity_permuted`), and
/// every later pass runs on the identical aggregated level. The pipeline
/// uses this for detection-heavy workloads and reports the (unmapped,
/// id-keyed) partition as usual.
///
/// # Panics
///
/// If the permuted graph is directed: permute the undirected projection
/// instead — the permuted rows are unsorted, so projecting after the fact
/// would need the natural graph anyway.
pub fn louvain_permuted(permuted: &PermutedGraph, config: &LouvainConfig) -> Partition {
    let g = permuted.graph();
    assert!(
        !g.is_directed(),
        "louvain_permuted expects the undirected projection to be permuted"
    );
    let n = g.node_count();
    if n == 0 {
        return Partition::new();
    }
    let threads = par::thread_count(config.threads);
    let perm = permuted.perm();
    let inv = permuted.inv();
    let mut membership: Vec<usize> = (0..n).collect();
    let mut rng = config.seed.map(StdRng::seed_from_u64);
    let gate = GateGraph::Permuted(permuted);
    let mut last_q = gate.modularity(&membership, n, threads);

    if config.max_passes > 0 {
        let level0 = CsrLevel::from_frozen(g);
        // Shuffle the *natural* order exactly like the natural run (same
        // rng draws), then translate each step to its storage position.
        let mut order_nat: Vec<usize> = (0..n).collect();
        if let Some(rng) = rng.as_mut() {
            order_nat.shuffle(rng);
        }
        let order: Vec<usize> = order_nat.iter().map(|&u| inv[u] as usize).collect();
        // Seeding position p with label perm[p] reproduces the natural
        // cold start: each node begins in its own *natural-labelled*
        // singleton, so gains, tie-breaks and the commit sequence match
        // the natural run bit for bit.
        let init: Vec<usize> = perm.iter().map(|&u| u as usize).collect();
        let (community, moved) = local_moving_csr(&level0, &order, threads, Some(&init));
        let community_nat: Vec<usize> = (0..n).map(|u| community[inv[u] as usize]).collect();
        let (compact, k) = compact_labels(&community_nat);
        membership.copy_from_slice(&compact);
        if moved {
            let aggregated = aggregate_csr_permuted(&level0, perm, inv, &compact, k);
            let q = gate.modularity(&membership, k, threads);
            if q - last_q >= config.min_modularity_gain {
                last_q = q;
                louvain_level_loop(
                    &gate,
                    aggregated,
                    &mut membership,
                    last_q,
                    1..config.max_passes,
                    &mut rng,
                    None,
                    false,
                    config,
                    threads,
                );
            }
        }
    }
    // `membership` is indexed by *natural* dense node, but the interned id
    // table lives in permuted order — pull each natural node's id through
    // `inv` so ids pair with their own assignment.
    let ids_nat: Vec<_> = inv.iter().map(|&p| g.node_ids()[p as usize]).collect();
    membership_to_partition(&ids_nat, &membership).renumbered()
}

/// Run Louvain **seeded from a previous partition**: the first
/// local-moving phase starts from `seed`'s assignment instead of
/// singletons, so after a small windowed update only the nodes whose
/// neighbourhoods actually changed move — the incremental-refresh path of
/// the windowed lifecycle.
///
/// Nodes missing from `seed` (e.g. stations that entered with the latest
/// batch) start as fresh singletons; seed entries for nodes the graph no
/// longer contains are ignored. The pass gate is initialised to the
/// seed's modularity and local moving never commits a losing move, so the
/// returned partition's modularity is **never below the seed's** on the
/// current graph. Callers wanting the stronger
/// modularity-no-worse-than-reseed gate compare against a cold
/// [`louvain_csr`] run (the windowed bench does exactly that — greedy
/// local moving from different starts can settle in different basins, so
/// strict dominance over the cold run is not a theorem, but the seed
/// floor is). An empty seed degenerates to the cold start bit-for-bit.
pub fn louvain_seeded(graph: &CsrGraph, seed: &Partition, config: &LouvainConfig) -> Partition {
    let n = graph.node_count();
    if n == 0 {
        return Partition::new();
    }
    louvain_csr_impl(graph, config, Some(seed_labels(graph, seed)), false)
}

/// [`louvain_seeded`] with **active-set** local moving: after the first
/// (necessarily whole-graph) sweep of the seeded pass, only the nodes a
/// committed move actually invalidated are re-examined — the members of
/// the move's source and target communities plus their neighbours (the
/// internal `local_moving_csr_active` scan). In a windowed refresh those movers
/// cluster around the rows the delta/evict touched, so later sweeps
/// shrink from O(n) scans to O(touched frontier).
///
/// The returned partition is **bit-identical** to [`louvain_seeded`] for
/// the same inputs — the skipped nodes are provably no-ops — so callers
/// can switch on it purely as a performance policy (the windowed pipeline
/// does, when the delta touched a minority of rows).
pub fn louvain_seeded_active(
    graph: &CsrGraph,
    seed: &Partition,
    config: &LouvainConfig,
) -> Partition {
    let n = graph.node_count();
    if n == 0 {
        return Partition::new();
    }
    louvain_csr_impl(graph, config, Some(seed_labels(graph, seed)), true)
}

/// Compact a seed partition's labels to dense `0..k` in first-appearance
/// (dense node index) order; unseeded nodes get fresh singleton labels
/// from the same counter. Every label stays < `n`, as the level scratch
/// requires.
fn seed_labels(graph: &CsrGraph, seed: &Partition) -> Vec<usize> {
    let n = graph.node_count();
    let mut relabel: HashMap<usize, usize> = HashMap::new();
    let mut labels = Vec::with_capacity(n);
    let mut next = 0usize;
    for &id in graph.node_ids() {
        let label = match seed.community_of(id) {
            Some(c) => *relabel.entry(c).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            }),
            None => {
                let l = next;
                next += 1;
                l
            }
        };
        labels.push(label);
    }
    labels
}

/// Run Louvain over a builder graph: freezes once, then runs the CSR path
/// (which projects directed graphs to undirected itself).
pub fn louvain(graph: &WeightedGraph, config: &LouvainConfig) -> Partition {
    louvain_csr(&graph.freeze(), config)
}

// ---------------------------------------------------------------------------
// Legacy HashMap path (benchmark baseline / equivalence reference)
// ---------------------------------------------------------------------------

/// Internal working representation of the (aggregated) graph for one pass.
struct LocalGraph {
    /// Adjacency: for each node, (neighbour, weight), excluding self-loops.
    adj: Vec<Vec<(usize, f64)>>,
    /// Self-loop weight per node.
    self_loops: Vec<f64>,
    /// Weighted degree per node (self-loops count twice).
    degree: Vec<f64>,
    /// Total edge weight m (undirected edges once, self-loops once).
    m: f64,
}

impl LocalGraph {
    fn from_weighted(graph: &WeightedGraph) -> Self {
        let n = graph.node_count();
        let mut adj = vec![Vec::new(); n];
        let mut self_loops = vec![0.0; n];
        let mut degree = vec![0.0; n];
        let mut row: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            row.clear();
            row.extend(graph.neighbors(i));
            // Deterministic neighbour order — also fixes the accumulation
            // order of `degree`, keeping it bit-identical to the CSR path's
            // cached weighted degrees.
            row.sort_unstable_by_key(|a| a.0);
            for &(j, w) in &row {
                if i == j {
                    self_loops[i] = w;
                    degree[i] += 2.0 * w;
                } else {
                    adj[i].push((j, w));
                    degree[i] += w;
                }
            }
        }
        let m = graph.total_weight();
        Self {
            adj,
            self_loops,
            degree,
            m,
        }
    }

    fn node_count(&self) -> usize {
        self.adj.len()
    }
}

/// One local-moving phase. Returns the community assignment (dense labels
/// may have gaps) and whether any node moved.
fn local_moving(graph: &LocalGraph, order: &[usize]) -> (Vec<usize>, bool) {
    let n = graph.node_count();
    let mut community: Vec<usize> = (0..n).collect();
    // Total degree per community.
    let mut comm_degree: Vec<f64> = graph.degree.clone();
    let two_m = 2.0 * graph.m;
    if two_m <= 0.0 {
        return (community, false);
    }

    let mut moved_any = false;
    let mut improved = true;
    // Re-usable scratch map: community -> weight of links from current node.
    let mut links_to_comm: HashMap<usize, f64> = HashMap::new();

    while improved {
        improved = false;
        for &node in order {
            let node_comm = community[node];
            let k_i = graph.degree[node];

            links_to_comm.clear();
            for &(nbr, w) in &graph.adj[node] {
                *links_to_comm.entry(community[nbr]).or_insert(0.0) += w;
            }

            // Degree of the node's community with the node itself removed —
            // computed without writing back, mirroring the CSR path's
            // `scan_move_csr` arithmetic exactly (the write-back only
            // happens when a move is committed, in both paths).
            let residual_own = comm_degree[node_comm] - k_i;
            let k_i_in_own = links_to_comm.get(&node_comm).copied().unwrap_or(0.0);

            let mut best_comm = node_comm;
            let mut best_gain = k_i_in_own - residual_own * k_i / two_m;
            let mut candidates: Vec<(usize, f64)> =
                links_to_comm.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_by_key(|a| a.0); // deterministic tie-breaks
            for (c, k_i_in_c) in candidates {
                if c == node_comm {
                    continue;
                }
                let gain = k_i_in_c - comm_degree[c] * k_i / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_comm = c;
                }
            }

            if best_comm != node_comm {
                comm_degree[node_comm] -= k_i;
                comm_degree[best_comm] += k_i;
                community[node] = best_comm;
                improved = true;
                moved_any = true;
            }
        }
    }
    (community, moved_any)
}

/// Aggregate a graph by communities: each community becomes one node whose
/// id is the community label; edge weights are summed.
fn aggregate(graph: &LocalGraph, community: &[usize]) -> WeightedGraph {
    let mut agg = WeightedGraph::new_undirected();
    // Ensure every community node exists even if it has no edges.
    for &c in community {
        agg.add_node(c as NodeId);
    }
    for i in 0..graph.node_count() {
        let ci = community[i] as NodeId;
        if graph.self_loops[i] > 0.0 {
            agg.add_edge(ci, ci, graph.self_loops[i]);
        }
        for &(j, w) in &graph.adj[i] {
            if j > i {
                let cj = community[j] as NodeId;
                agg.add_edge(ci, cj, w);
            }
        }
    }
    agg
}

/// The legacy Louvain implementation walking `HashMap` adjacency at every
/// level. Kept (not dead code) as the baseline the criterion benches
/// compare [`louvain_csr`] against, and as the reference implementation the
/// equivalence tests validate the CSR path's output against. Produces
/// partitions matching [`louvain_csr`].
pub fn louvain_hashmap(graph: &WeightedGraph, config: &LouvainConfig) -> Partition {
    let undirected;
    let g0 = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    if g0.node_count() == 0 {
        return Partition::new();
    }

    // Work on a relabelled copy whose node ids are the dense indices of
    // `g0`, so that membership values always match the current graph's node
    // ids (after each aggregation pass the node ids are community labels).
    let original_ids: Vec<NodeId> = g0.node_ids().to_vec();
    let n = original_ids.len();
    let mut current = WeightedGraph::new_undirected();
    for i in 0..n {
        current.add_node(i as NodeId);
    }
    for (src, dst, w) in g0.edges() {
        let si = g0.index_of(src).expect("edge endpoint exists") as NodeId;
        let di = g0.index_of(dst).expect("edge endpoint exists") as NodeId;
        current.add_edge(si, di, w);
    }
    let mut membership: Vec<usize> = (0..n).collect();
    let mut rng = config.seed.map(StdRng::seed_from_u64);
    let mut last_q = modularity_hashmap(g0, &membership_to_partition(&original_ids, &membership));

    for _pass in 0..config.max_passes {
        let local = LocalGraph::from_weighted(&current);
        let mut order: Vec<usize> = (0..local.node_count()).collect();
        if let Some(rng) = rng.as_mut() {
            order.shuffle(rng);
        }
        let (community, moved) = local_moving(&local, &order);
        if !moved {
            break;
        }
        // Compact community labels to 0..k for the aggregated graph. The
        // current graph's node ids are its own dense indices (aggregation
        // labels communities 0..k in first-appearance order), so membership
        // values map through `compact` directly — no per-level
        // `HashMap<NodeId, usize>` rebuild.
        let (compact, _k) = compact_labels(&community);
        for m in membership.iter_mut() {
            *m = compact[*m];
        }

        let aggregated = aggregate(&local, &compact);
        let q = modularity_hashmap(g0, &membership_to_partition(&original_ids, &membership));
        if q - last_q < config.min_modularity_gain {
            // Keep the (slightly) better assignment but stop iterating.
            break;
        }
        last_q = q;
        current = aggregated;
    }

    membership_to_partition(&original_ids, &membership).renumbered()
}

fn membership_to_partition(ids: &[NodeId], membership: &[usize]) -> Partition {
    ids.iter()
        .zip(membership)
        .map(|(&id, &c)| (id, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity;
    use rand::Rng;

    fn two_cliques(bridge_weight: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            g.add_edge(a, b, 5.0);
        }
        g.add_edge(3, 4, bridge_weight);
        g
    }

    #[test]
    fn empty_graph_gives_empty_partition() {
        let g = WeightedGraph::new_undirected();
        assert!(louvain(&g, &LouvainConfig::default()).is_empty());
        assert!(louvain_hashmap(&g, &LouvainConfig::default()).is_empty());
    }

    #[test]
    fn single_node_graph() {
        let mut g = WeightedGraph::new_undirected();
        g.add_node(7);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), 1);
        assert_eq!(p.community_count(), 1);
    }

    #[test]
    fn two_cliques_are_split() {
        let p = louvain(&two_cliques(1.0), &LouvainConfig::default());
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.community_of(1), p.community_of(2));
        assert_eq!(p.community_of(1), p.community_of(3));
        assert_eq!(p.community_of(4), p.community_of(5));
        assert_ne!(p.community_of(1), p.community_of(4));
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let g = two_cliques(1.0);
        let a = louvain(&g, &LouvainConfig::default());
        let b = louvain(&g, &LouvainConfig::default());
        assert_eq!(a, b);
        let seeded = LouvainConfig {
            seed: Some(3),
            ..Default::default()
        };
        assert_eq!(louvain(&g, &seeded), louvain(&g, &seeded));
    }

    #[test]
    fn louvain_partition_beats_trivial_partitions() {
        let g = two_cliques(1.0);
        let p = louvain(&g, &LouvainConfig::default());
        let q = modularity(&g, &p);
        let q_single = modularity(&g, &g.node_ids().iter().map(|&n| (n, 0usize)).collect());
        let q_singletons = modularity(&g, &Partition::singletons(g.node_ids()));
        assert!(q >= q_single);
        assert!(q >= q_singletons);
        assert!(q > 0.3);
    }

    #[test]
    fn ring_of_cliques_recovers_cliques() {
        // Four 4-cliques connected in a ring by single edges: the canonical
        // Louvain test case; expected answer is 4 communities.
        let mut g = WeightedGraph::new_undirected();
        let clique_nodes: Vec<Vec<u64>> = (0..4)
            .map(|c| (0..4).map(|i| c * 4 + i + 1).collect())
            .collect();
        for nodes in &clique_nodes {
            for i in 0..nodes.len() {
                for j in (i + 1)..nodes.len() {
                    g.add_edge(nodes[i], nodes[j], 1.0);
                }
            }
        }
        for c in 0..4usize {
            let from = clique_nodes[c][0];
            let to = clique_nodes[(c + 1) % 4][1];
            g.add_edge(from, to, 1.0);
        }
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.community_count(), 4);
        for nodes in &clique_nodes {
            let c0 = p.community_of(nodes[0]);
            for &n in nodes {
                assert_eq!(p.community_of(n), c0);
            }
        }
    }

    #[test]
    fn weighted_edges_dominate_topology() {
        // A path 1-2-3-4 where 1-2 and 3-4 are heavy and 2-3 light: the cut
        // should fall on the light edge.
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 3, 0.5);
        g.add_edge(3, 4, 10.0);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.community_of(1), p.community_of(2));
        assert_eq!(p.community_of(3), p.community_of(4));
        assert_ne!(p.community_of(2), p.community_of(3));
    }

    #[test]
    fn strong_bridge_merges_cliques() {
        // If the bridge is overwhelmingly heavy, the bridge endpoints are
        // pulled into the same community (possibly splitting off the clique
        // remainders, so up to 3 communities remain).
        let p = louvain(&two_cliques(100.0), &LouvainConfig::default());
        assert!(p.community_count() <= 3);
        // Nodes 3 and 4 (the bridge endpoints) must share a community.
        assert_eq!(p.community_of(3), p.community_of(4));
    }

    #[test]
    fn every_node_is_assigned() {
        let g = two_cliques(1.0);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), g.node_count());
        for &id in g.node_ids() {
            assert!(p.community_of(id).is_some());
        }
    }

    #[test]
    fn random_graph_modularity_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = WeightedGraph::new_undirected();
        // Three planted communities of 20 nodes.
        for c in 0..3u64 {
            for i in 0..20u64 {
                for j in (i + 1)..20 {
                    if rng.gen::<f64>() < 0.4 {
                        g.add_edge(c * 100 + i, c * 100 + j, 1.0);
                    }
                }
            }
        }
        // Sparse noise between communities.
        for _ in 0..30 {
            let a = rng.gen_range(0..3u64) * 100 + rng.gen_range(0..20u64);
            let b = rng.gen_range(0..3u64) * 100 + rng.gen_range(0..20u64);
            if a != b {
                g.add_edge(a, b, 1.0);
            }
        }
        let p = louvain(&g, &LouvainConfig::default());
        let q = modularity(&g, &p);
        assert!(q > 0.4, "expected strong community structure, q = {q}");
        assert!(p.community_count() >= 3);
        assert!(p.community_count() <= 6);
    }

    #[test]
    fn isolated_nodes_form_their_own_communities() {
        let mut g = two_cliques(1.0);
        g.add_node(100);
        g.add_node(101);
        let p = louvain(&g, &LouvainConfig::default());
        assert_eq!(p.len(), 8);
        assert_ne!(p.community_of(100), p.community_of(101));
        assert_ne!(p.community_of(100), p.community_of(1));
    }

    /// Random graph shared by the equivalence tests below.
    fn random_graph(seed: u64, directed: bool) -> WeightedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = if directed {
            WeightedGraph::new_directed()
        } else {
            WeightedGraph::new_undirected()
        };
        for _ in 0..rng.gen_range(30..200) {
            let a = rng.gen_range(0..40u64);
            let b = rng.gen_range(0..40u64);
            g.add_edge(a, b, rng.gen_range(1.0..6.0));
        }
        g
    }

    #[test]
    fn csr_and_hashmap_paths_agree_exactly() {
        for seed in 0..12u64 {
            let g = random_graph(seed, seed % 3 == 0);
            let cfg = LouvainConfig::default();
            let p_csr = louvain(&g, &cfg);
            let p_hash = louvain_hashmap(&g, &cfg);
            assert_eq!(p_csr, p_hash, "partitions diverged for seed {seed}");
        }
    }

    #[test]
    fn csr_and_hashmap_paths_agree_with_seeded_shuffle() {
        for seed in 0..6u64 {
            let g = random_graph(100 + seed, false);
            let cfg = LouvainConfig {
                seed: Some(seed),
                ..Default::default()
            };
            assert_eq!(louvain(&g, &cfg), louvain_hashmap(&g, &cfg));
        }
    }

    #[test]
    fn parallel_thread_counts_produce_identical_partitions() {
        // Big enough that the level's row space splits into several chunks
        // and the speculative scan path actually runs.
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = WeightedGraph::new_undirected();
        for c in 0..6u64 {
            for _ in 0..180 {
                let a = c * 1_000 + rng.gen_range(0..30u64);
                let b = c * 1_000 + rng.gen_range(0..30u64);
                g.add_edge(a, b, rng.gen_range(1.0..4.0));
            }
        }
        for _ in 0..60 {
            let a = rng.gen_range(0..6u64) * 1_000 + rng.gen_range(0..30u64);
            let b = rng.gen_range(0..6u64) * 1_000 + rng.gen_range(0..30u64);
            g.add_edge(a, b, 1.0);
        }
        let frozen = g.freeze();
        for seed in [None, Some(7u64)] {
            let serial = louvain_csr(
                &frozen,
                &LouvainConfig {
                    seed,
                    threads: Some(1),
                    ..Default::default()
                },
            );
            assert_eq!(
                serial,
                louvain_hashmap(
                    &g,
                    &LouvainConfig {
                        seed,
                        ..Default::default()
                    }
                ),
                "serial CSR vs hashmap (seed {seed:?})"
            );
            for t in [2usize, 4, 8] {
                let parallel = louvain_csr(
                    &frozen,
                    &LouvainConfig {
                        seed,
                        threads: Some(t),
                        ..Default::default()
                    },
                );
                assert_eq!(serial, parallel, "{t} threads diverged (seed {seed:?})");
            }
        }
    }

    #[test]
    fn louvain_csr_runs_on_prefrozen_graph() {
        let g = two_cliques(1.0);
        let frozen = g.freeze();
        let p = louvain_csr(&frozen, &LouvainConfig::default());
        assert_eq!(p, louvain(&g, &LouvainConfig::default()));
    }

    #[test]
    fn seeded_with_empty_partition_is_the_cold_start() {
        for seed in 0..6u64 {
            let frozen = random_graph(200 + seed, seed % 2 == 0).freeze();
            let cfg = LouvainConfig::default();
            assert_eq!(
                louvain_seeded(&frozen, &Partition::new(), &cfg),
                louvain_csr(&frozen, &cfg),
                "empty seed must degenerate to the cold start (seed {seed})"
            );
        }
    }

    #[test]
    fn seeded_from_own_partition_is_a_fixed_point_when_node_optimal() {
        // On the two-clique graph the cold partition is optimal under
        // single-node moves, so reseeding from it moves nothing — the
        // relabel must carry the seed through to the result instead of
        // discarding it for singletons.
        for g in [two_cliques(1.0), two_cliques(0.25)] {
            let frozen = g.freeze();
            let cfg = LouvainConfig::default();
            let cold = louvain_csr(&frozen, &cfg);
            assert_eq!(louvain_seeded(&frozen, &cold, &cfg), cold);
        }
    }

    #[test]
    fn reseeding_from_own_partition_never_loses_modularity() {
        // A flattened multi-level partition is not always optimal under
        // *node-level* moves, so reseeding may legitimately keep improving
        // — but it must never come back worse.
        use crate::modularity_csr;
        for seed in 0..6u64 {
            let frozen = random_graph(300 + seed, false).freeze();
            let cfg = LouvainConfig::default();
            let cold = louvain_csr(&frozen, &cfg);
            let reseeded = louvain_seeded(&frozen, &cold, &cfg);
            assert!(
                modularity_csr(&frozen, &reseeded) >= modularity_csr(&frozen, &cold) - 1e-12,
                "reseed lost modularity (seed {seed})"
            );
        }
    }

    #[test]
    fn seeded_modularity_never_below_seed() {
        use crate::modularity_csr;
        for seed in 0..8u64 {
            let frozen = random_graph(400 + seed, false).freeze();
            let cfg = LouvainConfig::default();
            // Seed from a *different* (shuffled) run so the seed is a real
            // partition but not necessarily this run's optimum.
            let shuffled = LouvainConfig {
                seed: Some(seed),
                ..Default::default()
            };
            let prior = louvain_csr(&frozen, &shuffled);
            let refreshed = louvain_seeded(&frozen, &prior, &cfg);
            let q_seed = modularity_csr(&frozen, &prior);
            let q_refreshed = modularity_csr(&frozen, &refreshed);
            assert!(
                q_refreshed >= q_seed - 1e-12,
                "seeded run lost modularity: {q_refreshed} < {q_seed} (seed {seed})"
            );
        }
    }

    #[test]
    fn seeded_handles_partial_and_stale_seeds() {
        // The seed covers some nodes of a grown graph, plus entries for
        // nodes the graph no longer has: extras are ignored, newcomers
        // start as singletons, and the two-clique structure is recovered.
        let g = two_cliques(1.0);
        let frozen = g.freeze();
        let mut seed = Partition::new();
        seed.assign(1, 0);
        seed.assign(2, 0);
        seed.assign(4, 1);
        seed.assign(999, 7); // not in the graph
        let p = louvain_seeded(&frozen, &seed, &LouvainConfig::default());
        assert_eq!(p.len(), 6);
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.community_of(1), p.community_of(3));
        assert_eq!(p.community_of(4), p.community_of(6));
        assert_ne!(p.community_of(1), p.community_of(4));
    }

    #[test]
    fn seeded_thread_counts_produce_identical_partitions() {
        let frozen = random_graph(512, false).freeze();
        let prior = louvain_csr(&frozen, &LouvainConfig::default());
        let runs: Vec<Partition> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                louvain_seeded(
                    &frozen,
                    &prior,
                    &LouvainConfig {
                        threads: Some(t),
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn permuted_cold_run_is_bit_identical_to_natural() {
        for graph_seed in 0..6u64 {
            let frozen = random_graph(600 + graph_seed, false).freeze();
            let pg = frozen.permute_by_degree(1);
            for shuffle in [None, Some(graph_seed)] {
                for t in [1usize, 2, 4] {
                    let cfg = LouvainConfig {
                        seed: shuffle,
                        threads: Some(t),
                        ..Default::default()
                    };
                    assert_eq!(
                        louvain_permuted(&pg, &cfg),
                        louvain_csr(&frozen, &cfg),
                        "permuted diverged (graph {graph_seed}, shuffle {shuffle:?}, {t} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn permuted_run_on_projected_directed_graph_matches() {
        // The natural path projects directed input itself; the permuted
        // path requires the caller to permute the projection.
        for graph_seed in 0..4u64 {
            let d = random_graph(700 + graph_seed, true);
            let frozen = d.freeze();
            let pg = frozen.to_undirected().permute_by_degree(1);
            let cfg = LouvainConfig::default();
            assert_eq!(
                louvain_permuted(&pg, &cfg),
                louvain_csr(&frozen, &cfg),
                "projected permuted diverged (graph {graph_seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "undirected projection")]
    fn permuted_rejects_directed_graphs() {
        let pg = random_graph(710, true).freeze().permute_by_degree(1);
        louvain_permuted(&pg, &LouvainConfig::default());
    }

    #[test]
    fn active_seeded_matches_seeded_exactly() {
        for graph_seed in 0..8u64 {
            let frozen = random_graph(800 + graph_seed, false).freeze();
            // Seed from a shuffled run so the seed is a real partition the
            // refresh still has work to do on.
            let prior = louvain_csr(
                &frozen,
                &LouvainConfig {
                    seed: Some(graph_seed),
                    ..Default::default()
                },
            );
            for t in [1usize, 2, 4] {
                let cfg = LouvainConfig {
                    threads: Some(t),
                    ..Default::default()
                };
                assert_eq!(
                    louvain_seeded_active(&frozen, &prior, &cfg),
                    louvain_seeded(&frozen, &prior, &cfg),
                    "active-set refresh diverged (graph {graph_seed}, {t} threads)"
                );
            }
        }
    }

    #[test]
    fn active_seeded_with_empty_seed_is_the_cold_start() {
        for graph_seed in 0..4u64 {
            let frozen = random_graph(900 + graph_seed, false).freeze();
            let cfg = LouvainConfig::default();
            assert_eq!(
                louvain_seeded_active(&frozen, &Partition::new(), &cfg),
                louvain_csr(&frozen, &cfg),
                "empty active seed must degenerate to the cold start (graph {graph_seed})"
            );
        }
    }

    #[test]
    fn active_seeded_matches_on_community_structured_graph() {
        // Big enough that the speculative scan, chunking, and the
        // mark-budget flood paths all engage; the seed is the cold answer
        // perturbed by reassigning a band of nodes to singletons.
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = WeightedGraph::new_undirected();
        for c in 0..6u64 {
            for _ in 0..180 {
                let a = c * 1_000 + rng.gen_range(0..30u64);
                let b = c * 1_000 + rng.gen_range(0..30u64);
                g.add_edge(a, b, rng.gen_range(1.0..4.0));
            }
        }
        for _ in 0..60 {
            let a = rng.gen_range(0..6u64) * 1_000 + rng.gen_range(0..30u64);
            let b = rng.gen_range(0..6u64) * 1_000 + rng.gen_range(0..30u64);
            g.add_edge(a, b, 1.0);
        }
        let frozen = g.freeze();
        let cold = louvain_csr(&frozen, &LouvainConfig::default());
        let mut perturbed = cold.clone();
        let base = perturbed.community_count() + 100;
        for (k, &id) in frozen.node_ids().iter().step_by(7).enumerate() {
            perturbed.assign(id, base + k);
        }
        for t in [1usize, 2, 4] {
            let cfg = LouvainConfig {
                threads: Some(t),
                ..Default::default()
            };
            assert_eq!(
                louvain_seeded_active(&frozen, &perturbed, &cfg),
                louvain_seeded(&frozen, &perturbed, &cfg),
                "active-set refresh diverged on structured graph ({t} threads)"
            );
        }
    }

    #[test]
    fn permuted_level_pipeline_matches_natural_stage_by_stage() {
        // Guards each internal stage of the permuted cold run — level
        // construction, pass-0 local moving, aggregation and the pass gate
        // — so a future regression points at the stage that broke rather
        // than just the end-to-end partition.
        let frozen = random_graph(600, false).freeze();
        let pg = frozen.permute_by_degree(1);
        let n = frozen.node_count();
        let level_nat = CsrLevel::from_frozen(&frozen);
        let level_perm = CsrLevel::from_frozen(pg.graph());
        let perm = pg.perm();
        let inv = pg.inv();
        for u in 0..n {
            let p = inv[u] as usize;
            assert_eq!(
                level_nat.degree[u].to_bits(),
                level_perm.degree[p].to_bits()
            );
            assert_eq!(
                level_nat.self_loops[u].to_bits(),
                level_perm.self_loops[p].to_bits()
            );
            let (tn, wn) = level_nat.row(u);
            let (tp, wp) = level_perm.row(p);
            let tp_mapped: Vec<u32> = tp.iter().map(|&x| perm[x as usize]).collect();
            assert_eq!(tn, tp_mapped.as_slice(), "row targets mismatch at {u}");
            assert_eq!(wn, wp, "row weights mismatch at {u}");
        }
        assert_eq!(level_nat.m.to_bits(), level_perm.m.to_bits());

        let order_nat: Vec<usize> = (0..n).collect();
        let order: Vec<usize> = order_nat.iter().map(|&u| inv[u] as usize).collect();
        let init: Vec<usize> = perm.iter().map(|&u| u as usize).collect();
        let (c_nat, moved_nat) = local_moving_csr(&level_nat, &order_nat, 1, None);
        let (c_perm, moved_perm) = local_moving_csr(&level_perm, &order, 1, Some(&init));
        assert_eq!(moved_nat, moved_perm);
        let c_perm_nat: Vec<usize> = (0..n).map(|u| c_perm[inv[u] as usize]).collect();
        assert_eq!(c_nat, c_perm_nat, "pass-0 communities diverged");

        let (compact, k) = compact_labels(&c_nat);
        let agg_nat = aggregate_csr(&level_nat, &compact, k);
        let agg_perm = aggregate_csr_permuted(&level_perm, perm, inv, &compact, k);
        assert_eq!(agg_nat.offsets, agg_perm.offsets);
        assert_eq!(agg_nat.targets, agg_perm.targets);
        assert_eq!(agg_nat.weights, agg_perm.weights);
        assert_eq!(agg_nat.self_loops, agg_perm.self_loops);
        assert_eq!(agg_nat.degree, agg_perm.degree);
        assert_eq!(agg_nat.m.to_bits(), agg_perm.m.to_bits());

        let singletons: Vec<usize> = (0..n).collect();
        for (memb, comms) in [(&compact, k), (&singletons, n)] {
            let q_nat = membership_modularity(&frozen, memb, comms, 1);
            let q_perm = membership_modularity_permuted(&pg, memb, comms, 1);
            assert_eq!(q_nat.to_bits(), q_perm.to_bits(), "gate q diverged");
        }
    }
}
