//! # moby-community
//!
//! Community detection and partition-quality metrics.
//!
//! The paper validates its expanded station network by running the
//! **Louvain** algorithm on three weighted station graphs (`GBasic`,
//! `GDay`, `GHour`) and inspecting the modularity and the self-containment
//! of the detected communities. This crate provides:
//!
//! * [`Partition`] — an assignment of graph nodes to communities;
//! * [`modularity`] — weighted Newman modularity (paper eq. 2);
//! * [`louvain`] — the Louvain algorithm (greedy modularity optimisation
//!   with graph aggregation), deterministic for a fixed seed;
//! * [`label_propagation`] — the Label Propagation algorithm the paper
//!   names as future work, used here for the detector ablation;
//!
//! Every detector runs on the **frozen CSR representation**
//! ([`moby_graph::CsrGraph`]): the `*_csr` entry points consume an
//! already-frozen graph, the builder-graph entry points freeze once and
//! delegate, and the `*_hashmap` functions retain the legacy hash-map
//! walks as benchmark baselines and equivalence references;
//!
//! * [`stats`] — per-community trip accounting (within / out / in), the
//!   layout of the paper's Tables IV–VI;
//! * [`compare`] — partition similarity (NMI, ARI, purity) used to verify
//!   that new stations join communities that behave like existing ones.
//!
//! ## Example
//!
//! ```
//! use moby_graph::WeightedGraph;
//! use moby_community::{louvain, modularity, LouvainConfig};
//!
//! // Two triangles joined by a single light edge.
//! let mut g = WeightedGraph::new_undirected();
//! for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
//!     g.add_edge(a, b, 5.0);
//! }
//! g.add_edge(3, 4, 1.0);
//! let partition = louvain(&g, &LouvainConfig::default());
//! assert_eq!(partition.community_count(), 2);
//! assert!(modularity(&g, &partition) > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
mod labelprop;
mod louvain;
mod modularity;
mod partition;
pub mod stats;

pub use labelprop::{
    label_propagation, label_propagation_csr, labelprop_permuted, LabelPropagationConfig,
};
pub use louvain::{
    louvain, louvain_csr, louvain_hashmap, louvain_permuted, louvain_seeded, louvain_seeded_active,
    LouvainConfig,
};
pub use modularity::{
    modularity, modularity_csr, modularity_csr_threads, modularity_hashmap, modularity_permuted,
};
pub use partition::Partition;
