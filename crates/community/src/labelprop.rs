//! Label propagation community detection.
//!
//! The paper lists the Label Propagation algorithm as future work ("Future
//! studies should compare the results of a range of community detection
//! algorithms, such as the Infomap algorithm and the Label Propagation
//! algorithm"). It is implemented here so the detector-ablation benchmark
//! can make that comparison.
//!
//! The algorithm: every node starts in its own community; nodes are visited
//! in (seeded) random order and adopt the label carrying the largest total
//! incident edge weight, ties broken by the smallest label. Iterate until no
//! label changes or the iteration cap is hit.

use crate::Partition;
use moby_graph::{par, CsrGraph, PermutedGraph, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`label_propagation`].
#[derive(Debug, Clone, PartialEq)]
pub struct LabelPropagationConfig {
    /// Seed for the node visiting order (label propagation is order
    /// sensitive; a fixed seed keeps runs reproducible).
    pub seed: u64,
    /// Maximum number of full sweeps.
    pub max_iterations: usize,
    /// Worker-thread override for the parallel label scans. `None`
    /// resolves `MOBY_THREADS`, then
    /// [`std::thread::available_parallelism`] (see [`par::thread_count`]).
    /// The detected partition is bit-identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            max_iterations: 100,
            threads: None,
        }
    }
}

/// Run (weighted, synchronous-free) label propagation on the undirected
/// projection of `graph` and return the detected partition with canonical
/// labels. Freezes the builder once and runs [`label_propagation_csr`]
/// (which projects directed graphs to undirected itself).
pub fn label_propagation(graph: &WeightedGraph, config: &LabelPropagationConfig) -> Partition {
    label_propagation_csr(&graph.freeze(), config)
}

/// Per-worker scratch for a label tally: `weight_to[l]` = incident weight
/// carrying label `l`; `touched` lists the labels with a non-zero entry.
struct TallyScratch {
    weight_to: Vec<f64>,
    touched: Vec<usize>,
}

impl TallyScratch {
    fn new(n: usize) -> TallyScratch {
        TallyScratch {
            weight_to: vec![0.0f64; n],
            touched: Vec::new(),
        }
    }
}

/// The label decision for one node against the current `labels`: the
/// neighbour label carrying the highest total weight, ties to the smallest
/// label; the node's own label when it has no neighbours. Shared by the
/// serial sweep, the parallel speculative scan and the commit-time
/// recomputation, so a decision is the same bits wherever it is evaluated.
fn tally_label(
    graph: &CsrGraph,
    labels: &[usize],
    scratch: &mut TallyScratch,
    node: usize,
) -> usize {
    for &l in &scratch.touched {
        scratch.weight_to[l] = 0.0;
    }
    scratch.touched.clear();
    // Fixed-width gather blocks, as in the Louvain move scan: resolve a
    // block of neighbour labels branch-free, then scatter the weights in
    // position order — per-label sums accumulate in exactly the scalar
    // order, so batching never reassociates the tally.
    const GATHER: usize = 8;
    let (targets, weights) = graph.row(node);
    let mut tc = targets.chunks_exact(GATHER);
    let mut wc = weights.chunks_exact(GATHER);
    let mut lbls = [0usize; GATHER];
    for (t, w) in (&mut tc).zip(&mut wc) {
        for (slot, &nbr) in lbls.iter_mut().zip(t) {
            *slot = labels[nbr as usize];
        }
        for (j, &l) in lbls.iter().enumerate() {
            if t[j] as usize != node {
                if scratch.weight_to[l] == 0.0 {
                    scratch.touched.push(l);
                }
                scratch.weight_to[l] += w[j];
            }
        }
    }
    for (&nbr, &w) in tc.remainder().iter().zip(wc.remainder()) {
        let nbr = nbr as usize;
        if nbr != node {
            let l = labels[nbr];
            if scratch.weight_to[l] == 0.0 {
                scratch.touched.push(l);
            }
            scratch.weight_to[l] += w;
        }
    }
    if scratch.touched.is_empty() {
        return labels[node]; // isolated node keeps its own label
    }
    // Highest total weight, ties to the smallest label.
    let mut best_label = labels[node];
    let mut best_weight = f64::NEG_INFINITY;
    scratch.touched.sort_unstable();
    for &label in &scratch.touched {
        if scratch.weight_to[label] > best_weight + 1e-12 {
            best_weight = scratch.weight_to[label];
            best_label = label;
        }
    }
    best_label
}

/// Label propagation over a frozen [`CsrGraph`] (directed graphs are
/// projected to undirected first). The per-node tally uses a dense
/// index-addressed scratch buffer over CSR rows — no hashing in the sweep.
///
/// Parallelism follows the same scan/commit scheme as the Louvain
/// local-moving phase: every node's label decision is precomputed in
/// parallel against the sweep-start labels, then nodes are visited serially
/// in the shuffled order; the precomputed decision is used only when no
/// neighbour's label changed since the scan, and recomputed otherwise. The
/// partition is therefore bit-identical to the serial sweep at any thread
/// count.
pub fn label_propagation_csr(graph: &CsrGraph, config: &LabelPropagationConfig) -> Partition {
    let undirected;
    let g = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    let n = g.node_count();
    if n == 0 {
        return Partition::new();
    }
    let mut labels: Vec<usize> = (0..n).collect();
    labelprop_sweeps(g, config, &mut labels, None);
    finish_labels(g, &labels)
}

/// Label propagation over a degree-sorted [`PermutedGraph`], returning a
/// partition **bit-identical** to [`label_propagation_csr`] on the
/// natural graph — the label-propagation counterpart of
/// [`louvain_permuted`](crate::louvain_permuted).
///
/// The sweeps run over the permuted storage — hub rows first, neighbour
/// state clustered at low indices — but every decision is the natural
/// one: position `p` starts with its node's **natural** singleton label
/// `perm[p]` (so gains and tie-breaks compare natural label values), the
/// permuted rows preserve the natural per-row fold order (see
/// [`PermutedGraph`]), and each sweep shuffles the *natural* visit order
/// with the same rng draws before translating it through `inv` — the
/// committed label sequence is exactly the natural run's. Unmapping at
/// the end pairs each interned id with its own label, and
/// [`Partition::renumbered`] canonicalises identically either way.
///
/// # Panics
///
/// If the permuted graph is directed: permute the undirected projection
/// instead — the permuted rows are unsorted, so projecting after the
/// fact would need the natural graph anyway.
pub fn labelprop_permuted(permuted: &PermutedGraph, config: &LabelPropagationConfig) -> Partition {
    let g = permuted.graph();
    assert!(
        !g.is_directed(),
        "labelprop_permuted expects the undirected projection to be permuted"
    );
    let n = g.node_count();
    if n == 0 {
        return Partition::new();
    }
    // Natural singleton labels stored at permuted positions.
    let mut labels: Vec<usize> = permuted.perm().iter().map(|&u| u as usize).collect();
    labelprop_sweeps(g, config, &mut labels, Some(permuted.inv()));
    finish_labels(g, &labels)
}

/// The shared sweep loop: iterate seeded-shuffled sweeps over `g`'s rows
/// until no label changes or the cap is hit, mutating `labels` in place.
/// `inv = Some(..)` runs the permuted layout: `labels` is indexed by
/// storage position (carrying natural label values) and each sweep's
/// shuffled **natural** order is translated through `inv` to visit
/// positions — same rng draws, same committed sequence as the natural
/// run (`inv = None`).
fn labelprop_sweeps(
    g: &CsrGraph,
    config: &LabelPropagationConfig,
    labels: &mut [usize],
    inv: Option<&[u32]>,
) {
    let n = g.node_count();
    let threads = par::thread_count(config.threads);
    let chunks = par::RowChunks::from_offsets(g.offsets());
    let speculate = threads > 1 && chunks.len() > 1;

    let mut order_nat: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::new(); // translation buffer, permuted runs only
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scratch = TallyScratch::new(n);
    // Label-change stamps, used only when speculating (see the Louvain
    // local-moving phase for the scheme).
    let mut tick: u64 = 0;
    let mut node_stamp = vec![0u64; if speculate { n } else { 0 }];
    let mut best = vec![0u32; if speculate { n } else { 0 }];

    for _ in 0..config.max_iterations {
        order_nat.shuffle(&mut rng);
        let visit: &[usize] = match inv {
            None => &order_nat,
            Some(inv) => {
                order.clear();
                order.extend(order_nat.iter().map(|&u| inv[u] as usize));
                &order
            }
        };
        if speculate {
            let labels: &[usize] = labels;
            par::par_fill_with(
                &chunks,
                threads,
                &mut best,
                || TallyScratch::new(n),
                |scratch, _, range, out| {
                    for (j, node) in range.clone().enumerate() {
                        out[j] = tally_label(g, labels, scratch, node) as u32;
                    }
                },
            );
        }
        let scan_tick = tick;
        let mut changed = false;
        for &node in visit {
            let fresh = speculate
                && g.row(node)
                    .0
                    .iter()
                    .all(|&nbr| node_stamp[nbr as usize] <= scan_tick);
            let best_label = if fresh {
                best[node] as usize
            } else {
                tally_label(g, labels, &mut scratch, node)
            };
            if best_label != labels[node] {
                labels[node] = best_label;
                if speculate {
                    tick += 1;
                    node_stamp[node] = tick;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Pair each interned id with its position's label and canonicalise —
/// shared by the natural and permuted runs (the permuted node table is
/// position-indexed too, so the same tail unmaps both).
fn finish_labels(g: &CsrGraph, labels: &[usize]) -> Partition {
    let partition: Partition = g
        .node_ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, labels[i]))
        .collect();
    partition.renumbered()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity;

    fn two_cliques() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            g.add_edge(a, b, 5.0);
        }
        g.add_edge(3, 4, 1.0);
        g
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new_undirected();
        assert!(label_propagation(&g, &LabelPropagationConfig::default()).is_empty());
    }

    #[test]
    fn splits_two_cliques() {
        let g = two_cliques();
        let p = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(p.len(), 6);
        // Both cliques should be internally consistent.
        assert_eq!(p.community_of(1), p.community_of(2));
        assert_eq!(p.community_of(1), p.community_of(3));
        assert_eq!(p.community_of(4), p.community_of(5));
        assert_eq!(p.community_of(4), p.community_of(6));
        // And the partition should carry positive modularity.
        assert!(modularity(&g, &p) > 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_cliques();
        let cfg = LabelPropagationConfig::default();
        assert_eq!(label_propagation(&g, &cfg), label_propagation(&g, &cfg));
    }

    #[test]
    fn isolated_nodes_keep_their_own_community() {
        let mut g = two_cliques();
        g.add_node(42);
        let p = label_propagation(&g, &LabelPropagationConfig::default());
        let c42 = p.community_of(42);
        assert!(c42.is_some());
        for id in 1..=6u64 {
            assert_ne!(p.community_of(id), c42);
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = two_cliques();
        let cfg = LabelPropagationConfig {
            max_iterations: 1,
            ..Default::default()
        };
        // One sweep still produces a full assignment.
        let p = label_propagation(&g, &cfg);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn parallel_thread_counts_produce_identical_partitions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Big enough that the row space splits into several chunks and the
        // speculative scan path actually runs.
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = WeightedGraph::new_undirected();
        for c in 0..5u64 {
            for _ in 0..200 {
                let a = c * 1_000 + rng.gen_range(0..25u64);
                let b = c * 1_000 + rng.gen_range(0..25u64);
                g.add_edge(a, b, rng.gen_range(1.0..4.0));
            }
        }
        g.add_node(999_999);
        let frozen = g.freeze();
        let serial = label_propagation_csr(
            &frozen,
            &LabelPropagationConfig {
                threads: Some(1),
                ..Default::default()
            },
        );
        for t in [2usize, 4, 8] {
            let parallel = label_propagation_csr(
                &frozen,
                &LabelPropagationConfig {
                    threads: Some(t),
                    ..Default::default()
                },
            );
            assert_eq!(serial, parallel, "{t} threads diverged");
        }
    }

    #[test]
    fn permuted_labelprop_is_bit_identical_to_natural() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Same shape as the thread-independence graph: several clusters
        // plus an isolated node, big enough for the speculative path.
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = WeightedGraph::new_undirected();
        for c in 0..5u64 {
            for _ in 0..200 {
                let a = c * 1_000 + rng.gen_range(0..25u64);
                let b = c * 1_000 + rng.gen_range(0..25u64);
                g.add_edge(a, b, rng.gen_range(1.0..4.0));
            }
        }
        g.add_node(999_999);
        let frozen = g.freeze();
        for t in [1usize, 2, 4] {
            let cfg = LabelPropagationConfig {
                threads: Some(t),
                ..Default::default()
            };
            let natural = label_propagation_csr(&frozen, &cfg);
            let pg = frozen.permute_by_degree(t);
            let permuted = labelprop_permuted(&pg, &cfg);
            assert_eq!(natural, permuted, "{t} threads diverged");
        }
    }

    #[test]
    fn permuted_labelprop_empty_graph() {
        let g = WeightedGraph::new_undirected().freeze();
        let pg = g.permute_by_degree(1);
        let p = labelprop_permuted(&pg, &LabelPropagationConfig::default());
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "undirected projection")]
    fn permuted_labelprop_rejects_directed_graphs() {
        let mut g = WeightedGraph::new_directed();
        g.add_edge(1, 2, 1.0);
        let pg = g.freeze().permute_by_degree(1);
        labelprop_permuted(&pg, &LabelPropagationConfig::default());
    }

    #[test]
    fn weighted_ties_favor_heavier_edges() {
        // Node 3 is pulled to {1,2} by heavy edges and to {4} by a light one.
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 2, 5.0);
        g.add_edge(1, 3, 5.0);
        g.add_edge(2, 3, 5.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(4, 5, 5.0);
        let p = label_propagation(&g, &LabelPropagationConfig::default());
        assert_eq!(p.community_of(3), p.community_of(1));
        assert_ne!(p.community_of(3), p.community_of(4));
    }
}
