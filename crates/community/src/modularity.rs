//! Weighted Newman modularity (paper eq. 2).

use crate::Partition;
use moby_graph::{par, CsrGraph, PermutedGraph, WeightedGraph};
use std::collections::HashMap;

/// Weighted modularity of a partition over an undirected weighted graph.
///
/// Follows the standard Newman formulation also used by Neo4j GDS and
/// NetworkX:
///
/// ```text
/// Q = Σ_c [ L_c / m  -  ( k_c / (2m) )² ]
/// ```
///
/// where `m` is the total edge weight (each undirected edge counted once,
/// self-loops once), `L_c` the total weight of edges with both endpoints in
/// community `c`, and `k_c` the total weighted degree of `c`'s nodes
/// (self-loops contribute twice to the degree, per convention).
///
/// Directed graphs are converted to their undirected projection first (the
/// paper runs Louvain on "bidirectional" graphs). Nodes missing from the
/// partition are treated as singleton communities. Returns 0 for graphs with
/// no edge weight.
///
/// This entry point freezes the builder graph and scores it with
/// [`modularity_csr`]; callers that already hold a frozen [`CsrGraph`]
/// should call [`modularity_csr`] directly and skip the freeze.
pub fn modularity(graph: &WeightedGraph, partition: &Partition) -> f64 {
    modularity_csr(&graph.freeze(), partition)
}

/// Weighted Newman modularity over a frozen [`CsrGraph`] (see
/// [`modularity`] for the formulation), with the worker-thread count
/// resolved from `MOBY_THREADS` / the machine (see [`par::thread_count`]).
/// Equivalent to [`modularity_csr_threads`] with `None`.
pub fn modularity_csr(graph: &CsrGraph, partition: &Partition) -> f64 {
    modularity_csr_threads(graph, partition, None)
}

/// [`modularity_csr`] with an explicit worker-thread override.
///
/// The accumulation walks CSR rows in dense index order, split into
/// edge-balanced chunks on the deterministic scheduler: each chunk owns the
/// edges of its rows (an edge belongs to its lower-endpoint row) and tallies
/// per-community internal weight and degree locally; the per-chunk tallies
/// merge in fixed chunk order, so the score is bit-identical at any thread
/// count.
pub fn modularity_csr_threads(
    graph: &CsrGraph,
    partition: &Partition,
    threads: Option<usize>,
) -> f64 {
    let undirected;
    let g = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }

    // Effective community per dense node: the partition's label, or a
    // unique synthetic label for unassigned nodes.
    let mut next_free = usize::MAX;
    let node_comm: Vec<usize> = g
        .node_ids()
        .iter()
        .map(|&id| {
            partition.community_of(id).unwrap_or_else(|| {
                next_free -= 1;
                next_free
            })
        })
        .collect();

    // Partition labels are arbitrary (and synthetic labels live near
    // usize::MAX), so the per-chunk tallies are hash maps rather than dense
    // arrays. Each community's entry is merged once per chunk, in chunk
    // order, so the reduction order is fixed.
    let threads = par::thread_count(threads);
    let chunks = par::RowChunks::balanced(g.offsets(), 16, 2048);
    let node_comm = &node_comm;
    let partials = par::par_map(&chunks, threads, |_, range| {
        let mut internal: HashMap<usize, f64> = HashMap::new();
        let mut degree: HashMap<usize, f64> = HashMap::new();
        for u in range {
            let cu = node_comm[u];
            let (targets, weights) = g.row(u);
            for (&v, &w) in targets.iter().zip(weights) {
                let v = v as usize;
                if v == u {
                    // Self-loop: counts once towards internal, twice to degree.
                    *internal.entry(cu).or_insert(0.0) += w;
                    *degree.entry(cu).or_insert(0.0) += 2.0 * w;
                } else if v > u {
                    let cv = node_comm[v];
                    if cu == cv {
                        *internal.entry(cu).or_insert(0.0) += w;
                    }
                    *degree.entry(cu).or_insert(0.0) += w;
                    *degree.entry(cv).or_insert(0.0) += w;
                }
            }
        }
        (internal, degree)
    });
    merge_and_score(partials, node_comm, m)
}

/// Merge per-chunk `(internal, degree)` tallies in chunk order and fold the
/// per-community terms of eq. 2 in ascending community-label order. Shared
/// by the natural and permuted modularity paths so both reduce with the
/// exact same operation sequence.
fn merge_and_score(
    partials: Vec<(HashMap<usize, f64>, HashMap<usize, f64>)>,
    node_comm: &[usize],
    m: f64,
) -> f64 {
    let mut internal: HashMap<usize, f64> = HashMap::new();
    let mut degree: HashMap<usize, f64> = HashMap::new();
    for (pi, pd) in partials {
        for (c, w) in pi {
            *internal.entry(c).or_insert(0.0) += w;
        }
        for (c, w) in pd {
            *degree.entry(c).or_insert(0.0) += w;
        }
    }

    let mut q = 0.0;
    let all_communities: std::collections::BTreeSet<usize> = node_comm.iter().copied().collect();
    for c in all_communities {
        let l_c = internal.get(&c).copied().unwrap_or(0.0);
        let k_c = degree.get(&c).copied().unwrap_or(0.0);
        q += l_c / m - (k_c / (2.0 * m)).powi(2);
    }
    q
}

/// [`modularity_csr_threads`] evaluated through a degree-permuted layout
/// ([`moby_graph::CsrGraph::permute_by_degree`]), bit-identical to scoring
/// the natural graph.
///
/// The tally walks **natural** node order through the permuted rows:
/// chunk boundaries come from [`PermutedGraph::natural_offsets`] (so they
/// match the natural run exactly), each natural node's row is fetched via
/// [`PermutedGraph::natural_row`] (source position order preserved), and
/// targets are translated back through `perm` for the `v > u` edge
/// ownership test. Synthetic labels for unassigned nodes are handed out in
/// natural node order, exactly as the natural path does.
///
/// Panics if the permuted graph is directed: permute the undirected
/// projection instead (the natural path's internal projection would not
/// survive the permutation maps).
pub fn modularity_permuted(
    pg: &PermutedGraph,
    partition: &Partition,
    threads: Option<usize>,
) -> f64 {
    let g = pg.graph();
    assert!(
        !g.is_directed(),
        "modularity_permuted expects the undirected projection to be permuted"
    );
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }

    let perm = pg.perm();
    // Effective community per *natural* dense node: natural node `u`'s id
    // lives at permuted slot `inv[u]` of the interned id table.
    let mut next_free = usize::MAX;
    let node_comm: Vec<usize> = pg
        .inv()
        .iter()
        .map(|&p| {
            let id = g.node_ids()[p as usize];
            partition.community_of(id).unwrap_or_else(|| {
                next_free -= 1;
                next_free
            })
        })
        .collect();

    let threads = par::thread_count(threads);
    let chunks = par::RowChunks::balanced(pg.natural_offsets(), 16, 2048);
    let node_comm = &node_comm;
    let partials = par::par_map(&chunks, threads, |_, range| {
        let mut internal: HashMap<usize, f64> = HashMap::new();
        let mut degree: HashMap<usize, f64> = HashMap::new();
        for u in range {
            let cu = node_comm[u];
            let (targets, weights) = pg.natural_row(u);
            for (&vp, &w) in targets.iter().zip(weights) {
                let v = perm[vp as usize] as usize;
                if v == u {
                    // Self-loop: counts once towards internal, twice to degree.
                    *internal.entry(cu).or_insert(0.0) += w;
                    *degree.entry(cu).or_insert(0.0) += 2.0 * w;
                } else if v > u {
                    let cv = node_comm[v];
                    if cu == cv {
                        *internal.entry(cu).or_insert(0.0) += w;
                    }
                    *degree.entry(cu).or_insert(0.0) += w;
                    *degree.entry(cv).or_insert(0.0) += w;
                }
            }
        }
        (internal, degree)
    });
    merge_and_score(partials, node_comm, m)
}

/// The legacy modularity implementation over the builder graph's hash-map
/// adjacency (materialise + sort all edges, then accumulate). Kept as the
/// baseline the criterion benches compare [`modularity_csr`] against and
/// as the reference for the CSR/builder agreement property tests.
pub fn modularity_hashmap(graph: &WeightedGraph, partition: &Partition) -> f64 {
    let undirected;
    let g = if graph.is_directed() {
        undirected = graph.to_undirected();
        &undirected
    } else {
        graph
    };

    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }

    // Effective community of each node: the partition's label, or a unique
    // synthetic label for unassigned nodes.
    let mut next_free = usize::MAX;
    let community = |node: u64, next_free: &mut usize| -> usize {
        partition.community_of(node).unwrap_or_else(|| {
            *next_free -= 1;
            *next_free
        })
    };

    let mut internal: HashMap<usize, f64> = HashMap::new();
    let mut degree: HashMap<usize, f64> = HashMap::new();

    // Cache node -> community to keep synthetic labels stable per node.
    let mut node_comm: HashMap<u64, usize> = HashMap::new();
    for &id in g.node_ids() {
        let c = community(id, &mut next_free);
        node_comm.insert(id, c);
    }

    // Sort edges so floating-point accumulation order (and therefore the
    // last-ULP value of Q) is identical across runs.
    let mut edges = g.edges();
    edges.sort_by_key(|a| (a.0, a.1));
    for (src, dst, w) in edges {
        let cs = node_comm[&src];
        let cd = node_comm[&dst];
        if src == dst {
            // Self-loop: weight counts once towards internal, twice to degree.
            *internal.entry(cs).or_insert(0.0) += w;
            *degree.entry(cs).or_insert(0.0) += 2.0 * w;
        } else {
            if cs == cd {
                *internal.entry(cs).or_insert(0.0) += w;
            }
            *degree.entry(cs).or_insert(0.0) += w;
            *degree.entry(cd).or_insert(0.0) += w;
        }
    }

    let mut q = 0.0;
    let all_communities: std::collections::BTreeSet<usize> = node_comm.values().copied().collect();
    for c in all_communities {
        let l_c = internal.get(&c).copied().unwrap_or(0.0);
        let k_c = degree.get(&c).copied().unwrap_or(0.0);
        q += l_c / m - (k_c / (2.0 * m)).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> WeightedGraph {
        let mut g = WeightedGraph::new_undirected();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            g.add_edge(a, b, 1.0);
        }
        g.add_edge(3, 4, 1.0); // bridge
        g
    }

    fn good_partition() -> Partition {
        [(1u64, 0usize), (2, 0), (3, 0), (4, 1), (5, 1), (6, 1)]
            .into_iter()
            .collect()
    }

    #[test]
    fn two_cliques_well_separated() {
        // Known value: m = 7, each community L_c = 3, k_c = 7.
        // Q = 2 * (3/7 - (7/14)^2) = 6/7 - 0.5 = 0.357142...
        let q = modularity(&two_cliques(), &good_partition());
        assert!((q - (6.0 / 7.0 - 0.5)).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn all_in_one_community_is_zero() {
        let g = two_cliques();
        let p: Partition = g.node_ids().iter().map(|&n| (n, 0usize)).collect();
        let q = modularity(&g, &p);
        assert!(q.abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn singletons_score_negative() {
        let g = two_cliques();
        let p = Partition::singletons(g.node_ids());
        assert!(modularity(&g, &p) < 0.0);
    }

    #[test]
    fn bad_partition_scores_lower_than_good() {
        let g = two_cliques();
        let bad: Partition = [(1u64, 0usize), (2, 1), (3, 0), (4, 1), (5, 0), (6, 1)]
            .into_iter()
            .collect();
        assert!(modularity(&g, &bad) < modularity(&g, &good_partition()));
    }

    #[test]
    fn modularity_is_bounded() {
        let g = two_cliques();
        for p in [
            good_partition(),
            Partition::singletons(g.node_ids()),
            g.node_ids().iter().map(|&n| (n, 0usize)).collect(),
        ] {
            let q = modularity(&g, &p);
            assert!((-1.0..=1.0).contains(&q), "q = {q}");
        }
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = WeightedGraph::new_undirected();
        assert_eq!(modularity(&g, &Partition::new()), 0.0);
    }

    #[test]
    fn unassigned_nodes_are_singletons() {
        let g = two_cliques();
        // Only assign the first clique; the second behaves as singletons.
        let p: Partition = [(1u64, 0usize), (2, 0), (3, 0)].into_iter().collect();
        let q_partial = modularity(&g, &p);
        let q_explicit: Partition = [(1u64, 0usize), (2, 0), (3, 0), (4, 10), (5, 11), (6, 12)]
            .into_iter()
            .collect();
        assert!((q_partial - modularity(&g, &q_explicit)).abs() < 1e-12);
    }

    #[test]
    fn self_loops_affect_degree_convention() {
        // A single node with a self-loop and an isolated edge elsewhere.
        let mut g = WeightedGraph::new_undirected();
        g.add_edge(1, 1, 2.0);
        g.add_edge(2, 3, 1.0);
        let p: Partition = [(1u64, 0usize), (2, 1), (3, 1)].into_iter().collect();
        // m = 3, L_0 = 2, k_0 = 4, L_1 = 1, k_1 = 2.
        // Q = (2/3 - (4/6)^2) + (1/3 - (2/6)^2) = 2/3 - 4/9 + 1/3 - 1/9 = 4/9.
        let q = modularity(&g, &p);
        assert!((q - 4.0 / 9.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn directed_graph_uses_undirected_projection() {
        let mut d = WeightedGraph::new_directed();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)] {
            d.add_edge(a, b, 1.0);
        }
        d.add_edge(3, 4, 1.0);
        let q_dir = modularity(&d, &good_partition());
        let q_undir = modularity(&two_cliques(), &good_partition());
        assert!((q_dir - q_undir).abs() < 1e-12);
    }

    #[test]
    fn csr_and_hashmap_agree_on_fixtures() {
        let g = two_cliques();
        let frozen = g.freeze();
        for p in [
            good_partition(),
            Partition::singletons(g.node_ids()),
            g.node_ids().iter().map(|&n| (n, 0usize)).collect(),
            [(1u64, 0usize), (2, 0), (3, 0)].into_iter().collect(), // partial
        ] {
            let q_csr = modularity_csr(&frozen, &p);
            let q_hash = modularity_hashmap(&g, &p);
            assert!(
                (q_csr - q_hash).abs() < 1e-12,
                "csr {q_csr} vs hashmap {q_hash}"
            );
        }
    }

    #[test]
    fn parallel_thread_counts_are_bit_identical() {
        // Big enough to split into several chunks.
        let mut g = WeightedGraph::new_undirected();
        for i in 0..400u64 {
            g.add_edge(i, (i * 13 + 7) % 400, 1.0 + (i % 5) as f64);
            g.add_edge(i, (i * 29 + 3) % 400, 0.5);
        }
        let frozen = g.freeze();
        let p: Partition = g
            .node_ids()
            .iter()
            .map(|&n| (n, (n % 8) as usize))
            .collect();
        let serial = modularity_csr_threads(&frozen, &p, Some(1));
        for t in [2usize, 4, 8] {
            let parallel = modularity_csr_threads(&frozen, &p, Some(t));
            assert_eq!(serial.to_bits(), parallel.to_bits(), "{t} threads diverged");
        }
        // And the chunked score still agrees with the legacy reference.
        assert!((serial - modularity_hashmap(&g, &p)).abs() < 1e-9);
    }

    #[test]
    fn permuted_layout_is_bit_identical() {
        let mut g = WeightedGraph::new_undirected();
        for i in 0..400u64 {
            g.add_edge(i, (i * 13 + 7) % 400, 1.0 + (i % 5) as f64);
            g.add_edge(i, (i * 29 + 3) % 400, 0.5);
        }
        g.add_edge(7, 7, 2.5); // self-loop exercises the v == u arm
        let frozen = g.freeze();
        let pg = frozen.permute_by_degree(1);
        // A full partition and a partial one (synthetic labels in play).
        let full: Partition = g
            .node_ids()
            .iter()
            .map(|&n| (n, (n % 8) as usize))
            .collect();
        let partial: Partition = g
            .node_ids()
            .iter()
            .filter(|&&n| n % 3 != 0)
            .map(|&n| (n, (n % 8) as usize))
            .collect();
        for p in [&full, &partial] {
            for t in [1usize, 2, 4] {
                let natural = modularity_csr_threads(&frozen, p, Some(t));
                let permuted = modularity_permuted(&pg, p, Some(t));
                assert_eq!(
                    natural.to_bits(),
                    permuted.to_bits(),
                    "threads {t}: natural {natural} vs permuted {permuted}"
                );
            }
        }
    }

    #[test]
    fn csr_handles_directed_input() {
        let mut d = WeightedGraph::new_directed();
        d.add_edge(1, 2, 3.0);
        d.add_edge(2, 1, 2.0);
        d.add_edge(2, 3, 1.0);
        d.add_edge(3, 3, 4.0);
        let p: Partition = [(1u64, 0usize), (2, 0), (3, 1)].into_iter().collect();
        let q_csr = modularity_csr(&d.freeze(), &p);
        let q_hash = modularity_hashmap(&d, &p);
        assert!((q_csr - q_hash).abs() < 1e-12);
    }
}
