//! Partition-similarity measures.
//!
//! Used by the validation layer to check that the communities found on the
//! expanded network resemble those found on the original network, and by the
//! detector ablation (Louvain vs label propagation).

use crate::Partition;
use moby_graph::NodeId;
use std::collections::{HashMap, HashSet};

/// The contingency table of two partitions restricted to their common nodes.
fn contingency(a: &Partition, b: &Partition) -> (HashMap<(usize, usize), usize>, usize) {
    let nodes_a: HashSet<NodeId> = a.iter().map(|(n, _)| n).collect();
    let mut table: HashMap<(usize, usize), usize> = HashMap::new();
    let mut n = 0usize;
    for (node, cb) in b.iter() {
        if !nodes_a.contains(&node) {
            continue;
        }
        let ca = a.community_of(node).expect("checked membership");
        *table.entry((ca, cb)).or_insert(0) += 1;
        n += 1;
    }
    (table, n)
}

/// Normalised Mutual Information between two partitions (arithmetic-mean
/// normalisation), computed over the nodes both partitions assign.
///
/// Returns 1.0 for identical partitions, 0.0 when the partitions are
/// independent or when fewer than two common nodes exist. When both
/// partitions are single-community (zero entropy) they are identical by
/// construction and score 1.0.
pub fn normalized_mutual_information(a: &Partition, b: &Partition) -> f64 {
    let (table, n) = contingency(a, b);
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mut row: HashMap<usize, usize> = HashMap::new();
    let mut col: HashMap<usize, usize> = HashMap::new();
    for (&(ca, cb), &count) in &table {
        *row.entry(ca).or_insert(0) += count;
        *col.entry(cb).or_insert(0) += count;
    }
    let entropy = |counts: &HashMap<usize, usize>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let h_a = entropy(&row);
    let h_b = entropy(&col);
    let mut mi = 0.0;
    for (&(ca, cb), &count) in &table {
        let p_ab = count as f64 / nf;
        let p_a = row[&ca] as f64 / nf;
        let p_b = col[&cb] as f64 / nf;
        mi += p_ab * (p_ab / (p_a * p_b)).ln();
    }
    let denom = 0.5 * (h_a + h_b);
    if denom <= 0.0 {
        // Both partitions are single-cluster over the common nodes: identical.
        1.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand Index between two partitions over their common nodes.
///
/// 1.0 for identical partitions, ~0.0 for random agreement, negative for
/// worse-than-random agreement. Returns 0.0 when fewer than two common nodes
/// exist.
pub fn adjusted_rand_index(a: &Partition, b: &Partition) -> f64 {
    let (table, n) = contingency(a, b);
    if n < 2 {
        return 0.0;
    }
    let choose2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let mut row: HashMap<usize, usize> = HashMap::new();
    let mut col: HashMap<usize, usize> = HashMap::new();
    let mut sum_cells = 0.0;
    for (&(ca, cb), &count) in &table {
        *row.entry(ca).or_insert(0) += count;
        *col.entry(cb).or_insert(0) += count;
        sum_cells += choose2(count);
    }
    let sum_rows: f64 = row.values().map(|&c| choose2(c)).sum();
    let sum_cols: f64 = col.values().map(|&c| choose2(c)).sum();
    let total_pairs = choose2(n);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial; identical -> 1, else 0.
        if sum_cells == max_index {
            1.0
        } else {
            0.0
        }
    } else {
        (sum_cells - expected) / (max_index - expected)
    }
}

/// Purity of partition `a` with respect to reference `b`: the share of
/// common nodes that fall in the majority reference community of their `a`
/// community. 1.0 means every `a` community is a subset of a `b` community.
pub fn purity(a: &Partition, b: &Partition) -> f64 {
    let (table, n) = contingency(a, b);
    if n == 0 {
        return 0.0;
    }
    let mut best_per_a: HashMap<usize, usize> = HashMap::new();
    for (&(ca, _), &count) in &table {
        let e = best_per_a.entry(ca).or_insert(0);
        if count > *e {
            *e = count;
        }
    }
    best_per_a.values().sum::<usize>() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition(pairs: &[(u64, usize)]) -> Partition {
        pairs.iter().copied().collect()
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = partition(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let b = partition(&[(1, 5), (2, 5), (3, 9), (4, 9)]); // same shape, different labels
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-9);
        assert!((purity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completely_different_partitions_score_low() {
        // a splits {1,2,3,4} into {1,2},{3,4}; b into {1,3},{2,4}.
        let a = partition(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let b = partition(&[(1, 0), (2, 1), (3, 0), (4, 1)]);
        assert!(normalized_mutual_information(&a, &b) < 0.1);
        assert!(adjusted_rand_index(&a, &b) <= 0.0 + 1e-9);
        assert!((purity(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn refinement_has_perfect_purity_but_lower_ari() {
        // a is a refinement of b: every a-community is inside a b-community.
        let a = partition(&[(1, 0), (2, 1), (3, 2), (4, 2)]);
        let b = partition(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        assert!((purity(&a, &b) - 1.0).abs() < 1e-9);
        assert!(adjusted_rand_index(&a, &b) < 1.0);
        assert!(normalized_mutual_information(&a, &b) < 1.0);
        assert!(normalized_mutual_information(&a, &b) > 0.0);
    }

    #[test]
    fn only_common_nodes_are_compared() {
        let a = partition(&[(1, 0), (2, 0), (3, 1), (4, 1), (99, 7)]);
        let b = partition(&[(1, 2), (2, 2), (3, 3), (4, 3), (100, 9)]);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Partition::new();
        let a = partition(&[(1, 0), (2, 0)]);
        assert_eq!(normalized_mutual_information(&empty, &a), 0.0);
        assert_eq!(adjusted_rand_index(&empty, &a), 0.0);
        assert_eq!(purity(&empty, &a), 0.0);
        // Single common node.
        let single = partition(&[(1, 0)]);
        assert_eq!(adjusted_rand_index(&single, &a), 0.0);
    }

    #[test]
    fn both_trivial_partitions_are_identical() {
        let a = partition(&[(1, 0), (2, 0), (3, 0)]);
        let b = partition(&[(1, 4), (2, 4), (3, 4)]);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_is_symmetric() {
        let a = partition(&[(1, 0), (2, 0), (3, 1), (4, 1), (5, 1)]);
        let b = partition(&[(1, 0), (2, 1), (3, 1), (4, 1), (5, 0)]);
        let ab = normalized_mutual_information(&a, &b);
        let ba = normalized_mutual_information(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        let ri_ab = adjusted_rand_index(&a, &b);
        let ri_ba = adjusted_rand_index(&b, &a);
        assert!((ri_ab - ri_ba).abs() < 1e-12);
    }
}
