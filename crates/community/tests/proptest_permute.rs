//! Property tests for the degree-permuted sweep layout (PR 8): running
//! PageRank, Louvain or modularity through a [`moby_graph::PermutedGraph`]
//! and unmapping the result must be **bit-identical** to the natural run
//! at 1, 2 and 4 worker threads — the permutation is a pure layout change,
//! never a semantic one.

use moby_community::{
    louvain_csr, louvain_permuted, modularity_csr_threads, modularity_permuted, LouvainConfig,
    Partition,
};
use moby_graph::metrics::{pagerank_csr, pagerank_permuted, PageRankConfig};
use moby_graph::WeightedGraph;
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..40, 0u64..40, 0.5f64..6.0), 1..300)
}

fn build(directed: bool, edges: &[(u64, u64, f64)]) -> WeightedGraph {
    let mut g = if directed {
        WeightedGraph::new_directed()
    } else {
        WeightedGraph::new_undirected()
    };
    for &(a, b, w) in edges {
        g.add_edge(a, b, w);
    }
    g
}

/// An arbitrary (possibly partial) partition over the id space.
fn arbitrary_partition() -> impl Strategy<Value = Partition> {
    prop::collection::vec((0u64..40, 0usize..8), 0..40)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn permuted_pagerank_is_bit_identical(
        edges in edge_list(),
        directed in 0u8..2,
    ) {
        let frozen = build(directed == 1, &edges).freeze();
        let pg = frozen.permute_by_degree(1);
        for t in [1usize, 2, 4] {
            let cfg = PageRankConfig { threads: Some(t), ..Default::default() };
            let natural = pagerank_csr(&frozen, &cfg);
            let permuted = pagerank_permuted(&pg, &cfg);
            prop_assert_eq!(natural.len(), permuted.len());
            for (id, r) in &natural {
                let rp = permuted.get(id).copied().unwrap_or(f64::NAN);
                prop_assert_eq!(r.to_bits(), rp.to_bits(),
                    "node {} diverged at {} threads: {} vs {}", id, t, r, rp);
            }
        }
    }

    #[test]
    fn permuted_louvain_is_bit_identical(
        edges in edge_list(),
        shuffle_seed in 0u64..32,
    ) {
        let frozen = build(false, &edges).freeze();
        let pg = frozen.permute_by_degree(1);
        // Even seeds exercise the unshuffled order, odd ones a seeded
        // shuffle.
        let seed = (shuffle_seed % 2 == 1).then_some(shuffle_seed);
        for t in [1usize, 2, 4] {
            let cfg = LouvainConfig {
                seed,
                threads: Some(t),
                ..Default::default()
            };
            prop_assert_eq!(
                louvain_permuted(&pg, &cfg),
                louvain_csr(&frozen, &cfg),
                "{} threads diverged", t
            );
        }
    }

    #[test]
    fn permuted_modularity_is_bit_identical(
        edges in edge_list(),
        partition in arbitrary_partition(),
    ) {
        let frozen = build(false, &edges).freeze();
        let pg = frozen.permute_by_degree(1);
        for t in [1usize, 2, 4] {
            let natural = modularity_csr_threads(&frozen, &partition, Some(t));
            let permuted = modularity_permuted(&pg, &partition, Some(t));
            prop_assert_eq!(natural.to_bits(), permuted.to_bits(),
                "{} threads: {} vs {}", t, natural, permuted);
        }
    }
}
