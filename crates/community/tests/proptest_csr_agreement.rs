//! Property tests: the CSR community-detection path must agree with the
//! legacy hash-map path — modularity of an arbitrary partition to within
//! float-accumulation tolerance, and Louvain partitions exactly — for
//! random directed and undirected graphs including self-loops. The
//! parallel execution layer must additionally be *bit-identical* to the
//! serial CSR path at 1, 2 and 4 worker threads.

use moby_community::{
    label_propagation_csr, louvain_csr, louvain_hashmap, modularity_csr, modularity_csr_threads,
    modularity_hashmap, LabelPropagationConfig, LouvainConfig, Partition,
};
use moby_graph::WeightedGraph;
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..25, 0u64..25, 0.5f64..6.0), 1..180)
}

/// A denser edge list whose CSR row space splits into several scheduler
/// chunks, so the parallel properties exercise the speculative scan path
/// rather than collapsing to the inline single-chunk case.
fn chunky_edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..60, 0u64..60, 0.5f64..6.0), 300..700)
}

fn build(directed: bool, edges: &[(u64, u64, f64)]) -> WeightedGraph {
    let mut g = if directed {
        WeightedGraph::new_directed()
    } else {
        WeightedGraph::new_undirected()
    };
    for &(a, b, w) in edges {
        g.add_edge(a, b, w);
    }
    g
}

/// An arbitrary (possibly partial) partition over the id space.
fn arbitrary_partition() -> impl Strategy<Value = Partition> {
    prop::collection::vec((0u64..25, 0usize..6), 0..25)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn modularity_agrees_on_undirected_graphs(
        edges in edge_list(),
        partition in arbitrary_partition(),
    ) {
        let g = build(false, &edges);
        let q_csr = modularity_csr(&g.freeze(), &partition);
        let q_hash = modularity_hashmap(&g, &partition);
        prop_assert!((q_csr - q_hash).abs() < 1e-9, "csr {q_csr} vs hashmap {q_hash}");
    }

    #[test]
    fn modularity_agrees_on_directed_graphs(
        edges in edge_list(),
        partition in arbitrary_partition(),
    ) {
        let g = build(true, &edges);
        let q_csr = modularity_csr(&g.freeze(), &partition);
        let q_hash = modularity_hashmap(&g, &partition);
        prop_assert!((q_csr - q_hash).abs() < 1e-9, "csr {q_csr} vs hashmap {q_hash}");
    }

    #[test]
    fn louvain_partitions_are_identical_across_paths(edges in edge_list()) {
        let g = build(false, &edges);
        let cfg = LouvainConfig::default();
        let p_csr = louvain_csr(&g.freeze(), &cfg);
        let p_hash = louvain_hashmap(&g, &cfg);
        prop_assert_eq!(p_csr, p_hash);
    }

    #[test]
    fn parallel_louvain_matches_serial_at_any_thread_count(
        edges in chunky_edge_list(),
        directed in 0u8..2,
    ) {
        let g = build(directed == 1, &edges);
        let frozen = g.freeze();
        let serial = louvain_csr(&frozen, &LouvainConfig {
            threads: Some(1),
            ..Default::default()
        });
        for t in [2usize, 4] {
            let parallel = louvain_csr(&frozen, &LouvainConfig {
                threads: Some(t),
                ..Default::default()
            });
            prop_assert_eq!(&serial, &parallel, "{} threads diverged", t);
        }
    }

    #[test]
    fn parallel_modularity_is_bit_identical_at_any_thread_count(
        edges in chunky_edge_list(),
        partition in arbitrary_partition(),
        directed in 0u8..2,
    ) {
        let g = build(directed == 1, &edges);
        let frozen = g.freeze();
        let serial = modularity_csr_threads(&frozen, &partition, Some(1));
        for t in [2usize, 4] {
            let parallel = modularity_csr_threads(&frozen, &partition, Some(t));
            prop_assert_eq!(serial.to_bits(), parallel.to_bits(),
                "{} threads: {} vs {}", t, serial, parallel);
        }
    }

    #[test]
    fn parallel_label_propagation_matches_serial_at_any_thread_count(
        edges in chunky_edge_list(),
        seed in 0u64..20,
    ) {
        let g = build(false, &edges);
        let frozen = g.freeze();
        let serial = label_propagation_csr(&frozen, &LabelPropagationConfig {
            seed,
            threads: Some(1),
            ..Default::default()
        });
        for t in [2usize, 4] {
            let parallel = label_propagation_csr(&frozen, &LabelPropagationConfig {
                seed,
                threads: Some(t),
                ..Default::default()
            });
            prop_assert_eq!(&serial, &parallel, "{} threads diverged", t);
        }
    }
}
