//! Property tests: the CSR community-detection path must agree with the
//! legacy hash-map path — modularity of an arbitrary partition to within
//! float-accumulation tolerance, and Louvain partitions exactly — for
//! random directed and undirected graphs including self-loops.

use moby_community::{
    louvain_csr, louvain_hashmap, modularity_csr, modularity_hashmap, LouvainConfig, Partition,
};
use moby_graph::WeightedGraph;
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..25, 0u64..25, 0.5f64..6.0), 1..180)
}

fn build(directed: bool, edges: &[(u64, u64, f64)]) -> WeightedGraph {
    let mut g = if directed {
        WeightedGraph::new_directed()
    } else {
        WeightedGraph::new_undirected()
    };
    for &(a, b, w) in edges {
        g.add_edge(a, b, w);
    }
    g
}

/// An arbitrary (possibly partial) partition over the id space.
fn arbitrary_partition() -> impl Strategy<Value = Partition> {
    prop::collection::vec((0u64..25, 0usize..6), 0..25)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn modularity_agrees_on_undirected_graphs(
        edges in edge_list(),
        partition in arbitrary_partition(),
    ) {
        let g = build(false, &edges);
        let q_csr = modularity_csr(&g.freeze(), &partition);
        let q_hash = modularity_hashmap(&g, &partition);
        prop_assert!((q_csr - q_hash).abs() < 1e-9, "csr {q_csr} vs hashmap {q_hash}");
    }

    #[test]
    fn modularity_agrees_on_directed_graphs(
        edges in edge_list(),
        partition in arbitrary_partition(),
    ) {
        let g = build(true, &edges);
        let q_csr = modularity_csr(&g.freeze(), &partition);
        let q_hash = modularity_hashmap(&g, &partition);
        prop_assert!((q_csr - q_hash).abs() < 1e-9, "csr {q_csr} vs hashmap {q_hash}");
    }

    #[test]
    fn louvain_partitions_are_identical_across_paths(edges in edge_list()) {
        let g = build(false, &edges);
        let cfg = LouvainConfig::default();
        let p_csr = louvain_csr(&g.freeze(), &cfg);
        let p_hash = louvain_hashmap(&g, &cfg);
        prop_assert_eq!(p_csr, p_hash);
    }
}
