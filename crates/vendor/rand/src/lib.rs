//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal subset of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a small,
//! well-studied, statistically strong PRNG. Streams are deterministic for a
//! given seed but are **not** bit-compatible with upstream `StdRng`
//! (ChaCha12); nothing in this workspace depends on upstream streams, only
//! on determinism and uniformity.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in [0, span) via Lemire's multiply-shift. The residual
/// bias is O(span / 2^64), far below anything observable here.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and sampling on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            use super::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            use super::SampleRange;
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
            let v = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-6.45..-6.08);
            assert!((-6.45..-6.08).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}
